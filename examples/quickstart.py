#!/usr/bin/env python3
"""Quickstart: simulate an irregular NoC under the paper's scheme lineup.

Builds an 8x8 mesh, knocks out 8 random links (faults or power-gating —
the library treats them identically), runs uniform-random traffic at a
moderate load under the spanning-tree baseline, the escape-VC baseline,
Static Bubble, and the adaptive congestion-aware variant, and prints
latency/throughput plus the Static Bubble protocol counters.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    Network,
    SimConfig,
    UniformRandomTraffic,
    inject_link_faults,
    make_scheme,
    mesh,
    run_with_window,
)
from repro.utils.reporting import format_table


def main() -> None:
    topo = inject_link_faults(mesh(8, 8), 8, random.Random(2024))
    print(f"Topology: {topo}")
    config = SimConfig()

    rows = []
    for name in ("spanning-tree", "escape-vc", "static-bubble", "adaptive"):
        traffic = UniformRandomTraffic(topo, rate=0.10, seed=7)
        network = Network(topo, config, make_scheme(name), traffic, seed=7)
        result = run_with_window(network, warmup=500, measure=2000)
        stats = network.stats
        rows.append(
            [
                name,
                result.avg_latency,
                result.throughput_flits_node_cycle,
                stats.probes_sent,
                stats.bubble_activations,
                stats.recoveries_completed,
            ]
        )

    print()
    print(
        format_table(
            [
                "scheme",
                "avg latency (cyc)",
                "thr (flits/node/cyc)",
                "probes",
                "bubble act.",
                "recoveries",
            ],
            rows,
            title="Uniform random @ 0.10 flits/node/cycle, 8 link faults",
        )
    )
    print()
    print(
        "Static Bubble keeps every packet on a minimal route; the spanning\n"
        "tree detours traffic to stay deadlock-free and pays for it in\n"
        "latency.  Raise the rate above ~0.2 to watch deadlocks form and\n"
        "the probe/disable/enable machinery recover them."
    )


if __name__ == "__main__":
    main()
