#!/usr/bin/env python3
"""Anatomy of a deadlock recovery (the paper's Fig. 6 walk-through).

Constructs the canonical ring deadlock — four packets on a 2x2 mesh,
each occupying the buffer the next one needs — and narrates the Static
Bubble recovery cycle by cycle: probe traversal, disable traversal and
sealing, bubble activation, ring drain, check_probe, and the enable
teardown.

Run:  python examples/deadlock_anatomy.py
"""

from repro import Network, Port, SimConfig, StaticBubbleScheme, mesh
from repro.core.fsm import FsmState
from repro.core.messages import MsgType
from repro.sim.deadlock import find_wait_cycle
from repro.sim.packet import Packet


def place(net, node, in_port, pid, src, dst, route):
    router = net.routers[node]
    vc = router.input_vcs[in_port][0]
    packet = Packet(pid, src, dst, 0, 1, route, 0)
    packet.injected_at = 0
    packet.hop = 1
    vc.packet = packet
    vc.ready_at = 0
    router.occupancy += 1
    return packet


def main() -> None:
    E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
    topo = mesh(2, 2)
    config = SimConfig(width=2, height=2, vcs_per_vnet=1, sb_t_dd=8)
    scheme = StaticBubbleScheme()
    net = Network(topo, config, scheme, traffic=None, seed=1)

    print("2x2 mesh; node 3 = (1,1) is the static-bubble router.\n")
    print("Placing the ring deadlock (A->B means A occupies what B needs):")
    place(net, 1, W, 100, 0, 3, (E, N, L))
    place(net, 3, S, 101, 1, 2, (N, W, L))
    place(net, 2, E, 102, 3, 0, (W, S, L))
    place(net, 0, N, 103, 2, 1, (S, E, L))
    print("  pkt 100 @ node1.W wants N | pkt 101 @ node3.S wants W")
    print("  pkt 102 @ node2.E wants S | pkt 103 @ node0.N wants E")
    cycle = find_wait_cycle(net, 0)
    print(f"\nWait-for cycle confirmed by the oracle: {cycle}\n")

    # Narrate special messages as they are sent.
    original_send = net.send_special

    def narrating_send(from_node, out_port, msg):
        ok = original_send(from_node, out_port, msg)
        tag = {
            MsgType.PROBE: "PROBE      ",
            MsgType.DISABLE: "DISABLE    ",
            MsgType.ENABLE: "ENABLE     ",
            MsgType.CHECK_PROBE: "CHECK_PROBE",
        }[msg.mtype]
        print(
            f"  cycle {net.cycle:3d}: {tag} node {from_node} -> "
            f"{Port(out_port).name:5s} (turns carried: {len(msg.turns)})"
        )
        return ok

    net.send_special = narrating_send

    fsm = scheme.states[3].fsm
    last_state = fsm.state
    for _ in range(120):
        net.step()
        if fsm.state != last_state:
            print(f"  cycle {net.cycle:3d}: FSM {last_state.name} -> {fsm.state.name}")
            last_state = fsm.state
        if net.stats.packets_ejected == 4 and fsm.state in (
            FsmState.S_OFF,
            FsmState.S_DD,
        ):
            break

    print(f"\nAll 4 packets delivered by cycle {net.cycle}.")
    print(f"Wait-for cycle now: {find_wait_cycle(net, net.cycle)}")
    s = net.stats
    print(
        f"Protocol totals: probes={s.probes_sent} disables={s.disables_sent} "
        f"activations={s.bubble_activations} check_probes={s.check_probes_sent} "
        f"enables={s.enables_sent} recoveries={s.recoveries_completed}"
    )


if __name__ == "__main__":
    main()
