#!/usr/bin/env python3
"""Static bubble placement maps and counts (Section III / Fig. 4).

Prints the placement map for several mesh sizes, verifies the closed-form
count (Equation 1) against enumeration, and demonstrates the coverage
lemma by exhaustively checking every short cycle of an irregular 8x8
derivative.

Run:  python examples/placement_map.py
"""

import random

from repro import bubble_count, inject_link_faults, mesh, placement_map
from repro.core.placement import placement, uncovered_cycles
from repro.topology.graph import simple_cycles
from repro.utils.reporting import format_table


def main() -> None:
    print("Static bubble placement (B = static-bubble router):\n")
    for n in (4, 8, 16):
        print(f"{n}x{n} mesh — {bubble_count(n, n)} static bubbles")
        print(placement_map(n, n))
        print()

    rows = []
    for n in (4, 8, 12, 16, 24, 32):
        count = bubble_count(n, n)
        rows.append([f"{n}x{n}", n * n, count, f"{100 * count / (n*n):.1f}%"])
    print(
        format_table(
            ["mesh", "routers", "static bubbles", "fraction"],
            rows,
            title="Closed-form bubble counts (Equation 1)",
        )
    )

    # Lemma demonstration: every cycle in a faulty derivation is covered.
    topo = inject_link_faults(mesh(8, 8), 12, random.Random(99))
    cycles = simple_cycles(topo, length_bound=10)
    coords = [[(node % 8, node // 8) for node in cycle] for cycle in cycles]
    bad = uncovered_cycles(coords)
    print(
        f"\nIrregular 8x8 (12 link faults): {len(cycles)} simple cycles "
        f"(length <= 10), {len(bad)} uncovered by a static bubble."
    )
    assert not bad, "placement lemma violated!"
    print("Placement lemma holds: every dependency cycle has a bubble.")


if __name__ == "__main__":
    main()
