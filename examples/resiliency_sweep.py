#!/usr/bin/env python3
"""Lifetime-resiliency scenario: accumulating link failures.

Simulates a chip aging over its lifetime: links fail one batch at a
time, and after every failure the network is reconfigured.  At each
stage we measure low-load latency and saturation throughput for all
three schemes — the in-miniature version of the paper's Figs. 8 and 9.

Run:  python examples/resiliency_sweep.py
"""

import random

from repro import (
    Network,
    SimConfig,
    UniformRandomTraffic,
    make_scheme,
    mesh,
    run_with_window,
)
from repro.experiments.common import saturation_throughput
from repro.utils.reporting import format_table

SCHEMES = ("spanning-tree", "escape-vc", "static-bubble")


def main() -> None:
    config = SimConfig()
    rng = random.Random(11)
    topo = mesh(8, 8)

    rows = []
    failed = 0
    for batch in (0, 4, 8, 12):
        # age the chip: fail `batch` more random links
        candidates = [l for l in topo.all_links() if topo.link_is_active(*tuple(l))]
        for link in rng.sample(candidates, batch):
            topo.deactivate_link(*tuple(link))
        failed += batch

        for name in SCHEMES:
            traffic = UniformRandomTraffic(topo, rate=0.02, seed=failed + 1)
            net = Network(topo, config, make_scheme(name), traffic, seed=failed + 1)
            low = run_with_window(net, warmup=300, measure=900)
            sat = saturation_throughput(
                topo, name, config, rates=[0.1, 0.2, 0.3],
                warmup=300, measure=600, seed=failed + 1,
            )
            rows.append(
                [failed, name, low.avg_latency, sat]
            )

    print(
        format_table(
            ["failed links", "scheme", "low-load latency", "saturation thr"],
            rows,
            title="Lifetime link-failure sweep on an 8x8 mesh",
        )
    )
    print(
        "\nAs failures accumulate, the spanning tree's detours hurt more\n"
        "while the recovery schemes keep minimal routes; Static Bubble\n"
        "needs no tree at all and no reserved escape VC."
    )


if __name__ == "__main__":
    main()
