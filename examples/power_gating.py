#!/usr/bin/env python3
"""Runtime power-gating scenario (the NoC power-gating use case).

Routers are progressively power-gated while the application keeps
running.  After every reconfiguration the network is rebuilt with the
surviving topology (the paper's source-routing reconfiguration model)
and the same closed-loop workload continues.  Compares the spanning-tree
baseline against Static Bubble on both performance and energy.

Run:  python examples/power_gating.py
"""

import random

from repro import Network, SimConfig, make_scheme, mesh
from repro.energy.model import EnergyModel
from repro.sim.engine import run_to_drain
from repro.topology.faults import default_memory_controllers
from repro.topology.graph import largest_component
from repro.traffic.workloads import parsec_closed_loop
from repro.utils.reporting import format_table


def gated_topology(base, num_gated, rng, mcs):
    """Gate random routers, never the memory controllers."""
    topo = base.copy()
    candidates = [n for n in topo.active_nodes() if n not in mcs]
    for node in rng.sample(candidates, num_gated):
        topo.deactivate_node(node)
    return topo


def main() -> None:
    base = mesh(8, 8)
    mcs = default_memory_controllers(8, 8)
    model = EnergyModel()
    rng = random.Random(7)
    config = SimConfig()

    rows = []
    for num_gated in (0, 4, 8, 16):
        topo = gated_topology(base, num_gated, random.Random(7), mcs)
        if not all(mc in largest_component(topo) for mc in mcs):
            print(f"skipping {num_gated} gated (an MC got disconnected)")
            continue
        for scheme_name in ("spanning-tree", "static-bubble"):
            workload = parsec_closed_loop(
                "canneal", topo, mcs, seed=1, transactions_per_core=6
            )
            net = Network(topo, config, make_scheme(scheme_name), workload, seed=1)
            runtime = run_to_drain(net, 80000) or 80000
            energy = model.network_energy(net)
            rows.append(
                [
                    num_gated,
                    scheme_name,
                    runtime,
                    net.stats.avg_latency,
                    energy.total,
                    energy.total * runtime,
                ]
            )

    print(
        format_table(
            [
                "gated routers",
                "scheme",
                "app runtime (cyc)",
                "avg latency",
                "energy (au)",
                "EDP (au*cyc)",
            ],
            rows,
            ndigits=1,
            title="Power-gating sweep: canneal-like closed-loop workload",
        )
    )
    print(
        "\nGated routers stop leaking (energy drops with gating); Static\n"
        "Bubble keeps minimal routes over whatever survives, so runtime\n"
        "and EDP stay below the spanning-tree reconfiguration baseline."
    )


if __name__ == "__main__":
    main()
