"""Reconfiguration lifecycle tests.

The paper's reconfiguration model (Section II-D): on every topology
change the NIs' routing tables are repopulated; we model that by
rebuilding the network object on the surviving topology (cost assumed
zero for every scheme, as in Section V-B).  These tests exercise the
lifecycle: run, drain, degrade the topology, rebuild, keep running.
"""

import random

import pytest

from repro.protocols import make_scheme
from repro.sim.config import SimConfig
from repro.sim.engine import run_to_drain
from repro.sim.network import Network
from repro.topology.graph import largest_component
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic


@pytest.mark.parametrize("scheme_name", ["spanning-tree", "escape-vc", "static-bubble"])
def test_progressive_degradation_lifecycle(scheme_name):
    """Fail links in stages; after each reconfiguration the network must
    keep delivering all traffic generated over the surviving component."""
    topo = mesh(6, 6)
    rng = random.Random(77)
    total_in, total_out = 0, 0
    config = SimConfig(width=6, height=6)
    for stage in range(3):
        # degrade: 4 more random link failures per stage
        candidates = [l for l in topo.all_links() if topo.link_is_active(*tuple(l))]
        for link in rng.sample(candidates, 4):
            topo.deactivate_link(*tuple(link))
        traffic = UniformRandomTraffic(topo, rate=0.04, seed=77 + stage)
        net = Network(topo, config, make_scheme(scheme_name), traffic, seed=77 + stage)
        net.run(500)
        net.traffic = None
        assert run_to_drain(net, 4000) is not None, f"stage {stage} did not drain"
        assert net.stats.packets_ejected == net.stats.packets_injected
        total_in += net.stats.packets_injected
        total_out += net.stats.packets_ejected
    assert total_out == total_in
    assert total_out > 200


def test_router_gating_and_ungating():
    """Power-gating is reversible: gate routers, run, un-gate, run again."""
    topo = mesh(6, 6)
    config = SimConfig(width=6, height=6)
    gated = [7, 14, 21]
    for node in gated:
        topo.deactivate_node(node)
    traffic = UniformRandomTraffic(topo, rate=0.04, seed=5)
    net = Network(topo, config, make_scheme("static-bubble"), traffic, seed=5)
    net.run(400)
    net.traffic = None
    assert run_to_drain(net, 3000) is not None

    for node in gated:
        topo.activate_node(node)
    assert len(largest_component(topo)) == 36
    traffic = UniformRandomTraffic(topo, rate=0.04, seed=6)
    net2 = Network(topo, config, make_scheme("static-bubble"), traffic, seed=6)
    net2.run(400)
    net2.traffic = None
    assert run_to_drain(net2, 3000) is not None
    # With all routers back, the full placement is present again.
    from repro.core.placement import bubble_count

    assert len(net2.scheme.states) == bubble_count(6, 6)


def test_sb_placement_follows_surviving_routers():
    """Gated SB routers simply drop out of the recovery plane; the rest
    still cover every cycle (the placement corollary)."""
    topo = mesh(8, 8)
    from repro.core.placement import placement_node_ids

    sb_nodes = sorted(placement_node_ids(8, 8))
    for node in sb_nodes[:5]:
        topo.deactivate_node(node)
    config = SimConfig()
    net = Network(topo, config, make_scheme("static-bubble"), None, seed=1)
    assert len(net.scheme.states) == 21 - 5
    # No cycle can survive entirely among routers that lost their bubble:
    # gated routers carry no traffic at all, and every cycle over the
    # *surviving* mesh still crosses a surviving SB node.
    from repro.topology.graph import simple_cycles
    from repro.core.placement import covers_cycle

    for cycle in simple_cycles(topo, length_bound=8):
        coords = [(n % 8, n // 8) for n in cycle]
        assert covers_cycle(coords)
