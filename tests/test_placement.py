"""Tests for the static bubble placement algorithm (Section III).

Covers the paper's exact counts (21 in 8x8, 89 in 16x16), the closed
form vs. direct enumeration, and — via exhaustive small-mesh cycle
enumeration and hypothesis-driven random irregular topologies — the
placement lemma: every cycle in every mesh-derived topology passes
through at least one static-bubble node.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import (
    bubble_count,
    covers_cycle,
    has_static_bubble,
    placement,
    placement_map,
    placement_node_ids,
    uncovered_cycles,
)
from repro.topology.faults import inject_link_faults, inject_router_faults
from repro.topology.graph import simple_cycles
from repro.topology.mesh import mesh


class TestPlacementRules:
    def test_no_bubbles_on_first_row_or_column(self):
        for v in range(16):
            assert not has_static_bubble(0, v)
            assert not has_static_bubble(v, 0)

    def test_diagonal_condition(self):
        assert has_static_bubble(1, 1)
        assert has_static_bubble(2, 2)
        assert has_static_bubble(5, 1)  # 5 % 4 == 1 % 4
        assert has_static_bubble(4, 4)

    def test_dotted_diagonal_conditions(self):
        assert has_static_bubble(1, 3)  # condition (2)
        assert has_static_bubble(3, 1)  # condition (3)
        assert has_static_bubble(5, 3)
        assert has_static_bubble(7, 1)

    def test_non_bubble_examples(self):
        # The five bounded forms from the lemma proof (Fig. 4b).
        assert not has_static_bubble(2, 4)   # (4k+2, 4l)
        assert not has_static_bubble(1, 4)   # (4k+1, 4l)
        assert not has_static_bubble(3, 4)   # (4k+3, 4l)
        assert not has_static_bubble(2, 3)   # (4k+2, 4l-1)
        assert not has_static_bubble(2, 5)   # (4k+2, 4l+1)


class TestCounts:
    def test_paper_counts(self):
        """The headline numbers: 21 bubbles in 8x8, 89 in 16x16."""
        assert bubble_count(8, 8) == 21
        assert bubble_count(16, 16) == 89

    def test_formula_matches_enumeration_squares(self):
        for n in range(1, 20):
            assert bubble_count(n, n) == len(placement(n, n))

    @given(
        width=st.integers(min_value=1, max_value=24),
        height=st.integers(min_value=1, max_value=24),
    )
    def test_formula_matches_enumeration(self, width, height):
        assert bubble_count(width, height) == len(placement(width, height))

    def test_scales_roughly_linearly_in_min_dimension(self):
        """The paper: count scales with min(m, n), keeping cost low."""
        wide = bubble_count(64, 8)
        square = bubble_count(64, 64)
        assert wide < square / 3

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            bubble_count(0, 8)
        with pytest.raises(ValueError):
            placement(8, -1)


class TestPlacementNodeIds:
    def test_ids_match_coords(self):
        ids = placement_node_ids(8, 8)
        assert len(ids) == 21
        for node in ids:
            x, y = node % 8, node // 8
            assert has_static_bubble(x, y)

    def test_2x2_has_single_bubble_at_1_1(self):
        assert placement_node_ids(2, 2) == {3}


class TestLemmaExhaustive:
    """Exhaustive cycle coverage on small meshes."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_all_cycles_covered_full_mesh(self, n):
        topo = mesh(n, n)
        cycles = simple_cycles(topo, length_bound=2 * n + 4)
        assert cycles, "mesh should have cycles"
        coords = [[(node % n, node // n) for node in cycle] for cycle in cycles]
        assert uncovered_cycles(coords) == []

    def test_all_short_cycles_covered_8x8(self):
        topo = mesh(8, 8)
        cycles = simple_cycles(topo, length_bound=8)
        coords = [[(node % 8, node // 8) for node in cycle] for cycle in cycles]
        assert uncovered_cycles(coords) == []


class TestLemmaIrregular:
    """Random irregular derivations keep the coverage (the corollary)."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        faults=st.integers(min_value=1, max_value=20),
        kind=st.sampled_from(["link", "router"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_cycles_in_irregular_topologies_covered(self, seed, faults, kind):
        topo = mesh(6, 6)
        rng = random.Random(seed)
        if kind == "link":
            topo = inject_link_faults(topo, min(faults, 20), rng)
        else:
            topo = inject_router_faults(topo, min(faults, 20), rng)
        cycles = simple_cycles(topo, length_bound=12)
        coords = [[(node % 6, node // 6) for node in cycle] for cycle in cycles]
        assert uncovered_cycles(coords) == []

    def test_covers_cycle_empty_is_false(self):
        assert not covers_cycle([])

    def test_covers_cycle_direct(self):
        assert covers_cycle([(0, 0), (1, 1)])
        assert not covers_cycle([(0, 0), (1, 0), (0, 1)])


class TestPlacementMap:
    def test_map_dimensions(self):
        art = placement_map(8, 8)
        lines = art.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 8 for line in lines)
        assert sum(line.count("B") for line in lines) == 21

    def test_bottom_row_has_no_bubbles(self):
        art = placement_map(8, 8)
        assert "B" not in art.splitlines()[-1]  # y == 0 row printed last
