"""Tests for the repro.obs metrics registry: counters/gauges/histograms,
cross-process merging, the ``REPRO_OBS`` switch, and the CLI surfaces."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    MetricsRegistry,
    OBS_ENV_VAR,
    Observer,
    drain_proc_registry,
    obs_enabled,
    proc_registry,
)
from repro.obs.metrics import Counter, Gauge, Histogram, LATENCY_BOUNDS
from repro.parallel import Job, run_jobs
from repro.sim.config import SimConfig
from repro.sim.engine import run_with_window
from repro.sim.network import Network
from repro.experiments.common import run_synthetic
from repro.protocols.none import MinimalUnprotected
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_tracks_extremes(self):
        g = Gauge()
        for v in (5, 2, 9):
            g.set(v)
        assert (g.value, g.min, g.max) == (9, 2, 9)

    def test_histogram_stats(self):
        h = Histogram(bounds=(10, 20, 30))
        for v in (1, 11, 12, 25, 99):
            h.add(v)
        assert h.count == 5
        assert h.min == 1 and h.max == 99
        assert h.mean == pytest.approx((1 + 11 + 12 + 25 + 99) / 5)
        assert h.percentile(0.5) <= h.percentile(0.99)

    def test_latency_histogram_percentiles_monotone(self):
        h = Histogram(LATENCY_BOUNDS)
        for v in range(1, 200):
            h.add(v)
        p50, p90, p99 = h.percentile(0.5), h.percentile(0.9), h.percentile(0.99)
        assert p50 <= p90 <= p99


class TestRegistryMerge:
    def test_merge_sums_counters_and_folds_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("sims").inc(2)
        b.counter("sims").inc(3)
        a.histogram("lat", (10, 20)).add(5)
        b.histogram("lat", (10, 20)).add(15)
        b.gauge("occ").set(7)
        a.merge(b)
        assert a.counters["sims"] == 5
        assert a.histogram("lat", (10, 20)).count == 2
        assert a.gauge("occ").value == 7

    def test_merge_dict_round_trip(self):
        a = MetricsRegistry()
        a.counter("x").inc(4)
        a.histogram("h", (1, 2)).add(1.5)
        snapshot = a.to_dict()
        b = MetricsRegistry()
        b.merge_dict(snapshot)
        b.merge_dict(snapshot)
        assert b.counters["x"] == 8
        assert b.histogram("h", (1, 2)).count == 2

    def test_histogram_bounds_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", (1, 2)).add(1)
        b = MetricsRegistry()
        b.histogram("h", (1, 2, 3)).add(1)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_summary_lines_cover_all_metrics(self):
        a = MetricsRegistry()
        a.counter("c").inc()
        a.gauge("g").set(1)
        a.histogram("h").add(1)
        text = "\n".join(a.summary_lines())
        for name in ("c", "g", "h"):
            assert name in text


class TestProcRegistry:
    def test_drain_resets(self):
        proc_registry().counter("t").inc(3)
        snapshot = drain_proc_registry()
        assert snapshot["counters"]["t"] == 3
        assert proc_registry().is_empty

    def test_obs_enabled_env(self, monkeypatch):
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        assert not obs_enabled()
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        assert obs_enabled()
        monkeypatch.setenv(OBS_ENV_VAR, "0")
        assert not obs_enabled()


class TestEngineIntegration:
    def test_run_with_window_finalizes_observer(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4)
        traffic = UniformRandomTraffic(topo, rate=0.05, seed=2)
        net = Network(topo, config, MinimalUnprotected(), traffic, seed=2)
        obs = Observer(trace=False)
        run_with_window(net, warmup=50, measure=100, obs=obs)
        assert obs.metrics.counters["sims"] == 1
        assert obs.metrics.counters["net.cycles"] == 150
        assert obs.metrics.histogram("packet.latency", LATENCY_BOUNDS).count > 0

    def test_run_synthetic_uses_proc_registry_when_enabled(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        drain_proc_registry()
        run_synthetic(
            mesh(4, 4), "static-bubble", "uniform_random", 0.05,
            SimConfig(width=4, height=4), warmup=20, measure=50, seed=3,
        )
        registry = proc_registry()
        assert registry.counters["sims"] == 1
        assert registry.counters["net.cycles"] == 70
        drain_proc_registry()

    def test_run_synthetic_untouched_when_disabled(self, monkeypatch):
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        drain_proc_registry()
        run_synthetic(
            mesh(4, 4), "static-bubble", "uniform_random", 0.05,
            SimConfig(width=4, height=4), warmup=20, measure=50, seed=3,
        )
        assert proc_registry().is_empty


def _obs_job(seed: int):
    """Module-level (picklable) sweep job used by the pool-merge test."""
    result, _ = run_synthetic(
        mesh(4, 4), "static-bubble", "uniform_random", 0.05,
        SimConfig(width=4, height=4), warmup=20, measure=50, seed=seed,
    )
    return result.packets_ejected


class TestPoolMerge:
    def test_metrics_merge_across_workers(self, monkeypatch):
        """Counters from every pool worker land in the parent registry
        (the serial fallback accumulates in-process — same outcome)."""
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        drain_proc_registry()
        jobs = [Job(_obs_job, (seed,)) for seed in range(4)]
        results = run_jobs(jobs, workers=2)
        assert len(results) == 4
        registry = proc_registry()
        assert registry.counters["sims"] == 4
        assert registry.counters["net.cycles"] == 4 * 70
        drain_proc_registry()

    def test_no_merge_overhead_when_disabled(self, monkeypatch):
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        drain_proc_registry()
        jobs = [Job(_obs_job, (seed,)) for seed in range(2)]
        assert len(run_jobs(jobs, workers=2)) == 2
        assert proc_registry().is_empty


class TestCliSurfaces:
    def test_trace_scenario_fig6(self, capsys, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        code = main(
            [
                "trace", "--scenario", "fig6",
                "--jsonl", str(jsonl), "--chrome", str(chrome),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 recovery transcript(s)" in out
        assert "completed" in out
        assert jsonl.exists() and chrome.exists()
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]

    def test_trace_synthetic_traffic(self, capsys):
        code = main(
            [
                "trace", "--width", "4", "--height", "4",
                "--rate", "0.05", "--cycles", "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events buffered" in out
        assert "metrics:" in out

    def test_experiment_obs_flag(self, capsys, monkeypatch):
        """--obs turns REPRO_OBS on and prints the merged registry."""
        import types

        import repro.cli as cli_mod

        class TinyParams:
            workers = 1

            @classmethod
            def quick(cls):
                return cls()

            @classmethod
            def full(cls):
                return cls()

        tiny = types.SimpleNamespace(
            TinyParams=TinyParams,
            run=lambda params: run_synthetic(
                mesh(4, 4), "static-bubble", "uniform_random", 0.05,
                SimConfig(width=4, height=4), warmup=20, measure=50, seed=1,
            )[0],
            report=lambda result: f"tiny: {result.packets_ejected} ejected",
        )
        monkeypatch.setitem(cli_mod.ALL_EXPERIMENTS, "tiny", tiny)
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        drain_proc_registry()
        code = main(["experiment", "tiny", "--workers", "1", "--obs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tiny:" in out
        assert "observability metrics" in out
        assert "sims" in out
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        drain_proc_registry()
