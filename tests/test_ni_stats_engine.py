"""Tests for the NI, statistics, and run-loop helpers."""

import pytest

from repro.protocols.none import MinimalUnprotected
from repro.sim.config import SimConfig
from repro.sim.engine import run_to_drain, run_with_window
from repro.sim.network import Network
from repro.sim.stats import NetworkStats
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic
from repro.traffic.trace import TraceTraffic
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.reporting import Reporter, format_series, format_table


class TestNi:
    def test_queue_cap_refuses(self):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1, injection_queue_cap=2)
        events = [(0, 0, 1, 0, 5)] * 10
        net = Network(topo, config, MinimalUnprotected(), TraceTraffic(events), seed=1)
        net.step()
        ni = net.nis[0]
        assert ni.packets_refused > 0
        assert len(ni.queue) <= 2

    def test_unbounded_queue(self):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1, injection_queue_cap=0)
        events = [(0, 0, 1, 0, 5)] * 10
        net = Network(topo, config, MinimalUnprotected(), TraceTraffic(events), seed=1)
        net.step()
        assert net.nis[0].packets_refused == 0

    def test_injection_one_per_cycle(self):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        events = [(0, 0, 1, 0, 1)] * 8
        net = Network(topo, config, MinimalUnprotected(), TraceTraffic(events), seed=1)
        net.step()
        assert net.stats.packets_injected == 1

    def test_queueing_latency_recorded(self):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        events = [(0, 0, 1, 0, 5), (0, 0, 1, 0, 5)]
        net = Network(topo, config, MinimalUnprotected(), TraceTraffic(events), seed=1)
        run_to_drain(net, 100)
        assert net.stats.total_latency_sum > net.stats.latency_sum


class TestStats:
    def test_zero_division_safety(self):
        stats = NetworkStats()
        assert stats.avg_latency == 0.0
        assert stats.avg_total_latency == 0.0
        assert stats.window_avg_latency() == 0.0
        assert stats.window_throughput(100, 0) == 0.0

    def test_link_utilization_empty(self):
        stats = NetworkStats()
        util = stats.link_utilization_by_class()
        assert util["flit"] == 0.0

    def test_link_utilization_shares_sum_to_one(self):
        stats = NetworkStats()
        stats.link_flit_cycles = 90
        stats.link_special_cycles["probe"] = 10
        util = stats.link_utilization_by_class()
        assert sum(util.values()) == pytest.approx(1.0)
        assert util["flit"] == pytest.approx(0.9)

    def test_window_reset(self):
        stats = NetworkStats()
        stats.window_flits_ejected = 42
        stats.begin_window(100)
        assert stats.window_flits_ejected == 0
        assert stats.window_start_cycle == 100

    def test_summary_keys(self):
        keys = NetworkStats().summary().keys()
        assert "avg_latency" in keys and "deadlocks_observed" in keys


class TestEngine:
    def test_run_with_window_measures_after_warmup(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4)
        traffic = UniformRandomTraffic(topo, rate=0.05, seed=1)
        net = Network(topo, config, MinimalUnprotected(), traffic, seed=1)
        result = run_with_window(net, warmup=100, measure=400)
        assert result.cycles == 500
        assert result.packets_ejected > 0
        assert not result.deadlocked

    def test_run_to_drain_timeout(self):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        # Infinite source never drains.
        traffic = UniformRandomTraffic(topo, rate=0.5, seed=1)
        net = Network(topo, config, MinimalUnprotected(), traffic, seed=1)
        assert run_to_drain(net, 200) is None

    def test_run_to_drain_success(self):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        net = Network(
            topo, config, MinimalUnprotected(), TraceTraffic([(0, 0, 1, 0, 1)]), seed=1
        )
        cycles = run_to_drain(net, 200)
        assert cycles is not None and cycles <= 24


class TestRng:
    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_spawn_rng_reproducible(self):
        a = spawn_rng(7, "x").random()
        b = spawn_rng(7, "x").random()
        assert a == b


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2.34567], [100, 0.1]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.346" in text

    def test_format_series(self):
        text = format_series({"x": 1.23456}, ndigits=2, title="t")
        assert text.splitlines()[0] == "t"
        assert "1.23" in text

    def test_reporter_collects(self):
        rep = Reporter("demo")
        rep.line("hello")
        rep.table(["h"], [[1]])
        out = rep.text()
        assert out.startswith("== demo ==")
        assert "hello" in out and "1" in out
