"""Tests for synthetic traffic generators and traces."""

import pytest

from repro.topology.mesh import mesh
from repro.traffic.base import CompositeTraffic, TrafficGenerator
from repro.traffic.synthetic import (
    BitComplementTraffic,
    HotspotTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
    make_pattern,
)
from repro.traffic.trace import TraceTraffic


class TestUniformRandom:
    def test_rate_expectation(self):
        """Mean injected flits per node per cycle tracks the rate."""
        topo = mesh(8, 8)
        traffic = UniformRandomTraffic(topo, rate=0.1, seed=1)
        flits = 0
        cycles = 4000
        for t in range(cycles):
            for _, _, _, size in traffic.packets_at(t):
                flits += size
        measured = flits / (cycles * topo.num_nodes)
        assert measured == pytest.approx(0.1, rel=0.1)

    def test_never_self_destined(self):
        topo = mesh(4, 4)
        traffic = UniformRandomTraffic(topo, rate=0.5, seed=2)
        for t in range(200):
            for src, dst, _, _ in traffic.packets_at(t):
                assert src != dst

    def test_zero_rate_silent(self):
        topo = mesh(4, 4)
        traffic = UniformRandomTraffic(topo, rate=0.0, seed=1)
        assert list(traffic.packets_at(0)) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic(mesh(4, 4), rate=-0.1)

    def test_packet_size_mix(self):
        topo = mesh(4, 4)
        traffic = UniformRandomTraffic(
            topo, rate=0.3, seed=3, data_flits=5, ctrl_flits=1, data_fraction=0.5
        )
        sizes = []
        for t in range(500):
            sizes.extend(size for *_, size in traffic.packets_at(t))
        assert set(sizes) == {1, 5}
        data_frac = sum(1 for s in sizes if s == 5) / len(sizes)
        assert data_frac == pytest.approx(0.5, abs=0.1)

    def test_sources_restricted_to_active_nodes(self):
        topo = mesh(4, 4)
        topo.deactivate_node(5)
        traffic = UniformRandomTraffic(topo, rate=0.5, seed=1)
        for t in range(100):
            for src, _, _, _ in traffic.packets_at(t):
                assert src != 5


class TestPatterns:
    def test_bit_complement_mapping(self):
        topo = mesh(8, 8)
        traffic = BitComplementTraffic(topo, rate=1.0, seed=1)
        assert traffic.destination(topo.node_id(0, 0)) == topo.node_id(7, 7)
        assert traffic.destination(topo.node_id(2, 5)) == topo.node_id(5, 2)

    def test_transpose_mapping(self):
        topo = mesh(8, 8)
        traffic = TransposeTraffic(topo, rate=1.0, seed=1)
        assert traffic.destination(topo.node_id(2, 5)) == topo.node_id(5, 2)
        assert traffic.destination(topo.node_id(3, 3)) is None

    def test_transpose_requires_square(self):
        topo = mesh(4, 2)
        traffic = TransposeTraffic(topo, rate=1.0, seed=1)
        with pytest.raises(ValueError):
            traffic.destination(0)

    def test_hotspot_bias(self):
        topo = mesh(8, 8)
        traffic = HotspotTraffic(
            topo, rate=1.0, hotspots=[0], hot_fraction=0.9, seed=4
        )
        hits = sum(
            1 for _ in range(500) if traffic.destination(topo.node_id(5, 5)) == 0
        )
        assert hits > 350

    def test_hotspot_requires_hotspots(self):
        with pytest.raises(ValueError):
            HotspotTraffic(mesh(4, 4), rate=0.1, hotspots=[])

    def test_factory(self):
        topo = mesh(4, 4)
        assert isinstance(
            make_pattern("uniform_random", topo, 0.1), UniformRandomTraffic
        )
        with pytest.raises(ValueError):
            make_pattern("nope", topo, 0.1)


class TestTrace:
    def test_replay_in_order(self):
        trace = TraceTraffic([(5, 0, 1, 0, 1), (2, 1, 2, 0, 5), (2, 2, 3, 0, 1)])
        assert list(trace.packets_at(0)) == []
        assert len(list(trace.packets_at(2))) == 2
        assert not trace.exhausted(2)
        assert len(list(trace.packets_at(5))) == 1
        assert trace.exhausted(5)

    def test_late_poll_catches_up(self):
        trace = TraceTraffic([(2, 1, 2, 0, 5)])
        assert len(list(trace.packets_at(10))) == 1

    def test_totals(self):
        trace = TraceTraffic([(0, 0, 1, 0, 5), (1, 1, 2, 0, 1)])
        assert trace.total_flits() == 6
        assert trace.last_cycle() == 1
        assert len(trace) == 2

    def test_reset(self):
        trace = TraceTraffic([(0, 0, 1, 0, 5)])
        list(trace.packets_at(0))
        assert trace.exhausted(0)
        trace.reset()
        assert not trace.exhausted(0)


class TestComposite:
    def test_union(self):
        a = TraceTraffic([(0, 0, 1, 0, 1)])
        b = TraceTraffic([(0, 2, 3, 0, 5)])
        both = CompositeTraffic([a, b])
        assert len(list(both.packets_at(0))) == 2
        assert both.exhausted(0)

    def test_base_generator_is_silent(self):
        gen = TrafficGenerator()
        assert list(gen.packets_at(0)) == []
        assert not gen.exhausted(0)
