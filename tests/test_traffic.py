"""Tests for synthetic traffic generators and traces."""

import pytest

from repro.topology.mesh import mesh
from repro.traffic.base import CompositeTraffic, TrafficGenerator
from repro.traffic.synthetic import (
    BitComplementTraffic,
    HotspotTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
    make_pattern,
)
from repro.traffic.trace import (
    TRACE_FORMAT_VERSION,
    TraceTraffic,
    load_trace,
    save_trace,
)
from repro.traffic.workloads import PARSEC_SPECS, build_workload_trace


class TestUniformRandom:
    def test_rate_expectation(self):
        """Mean injected flits per node per cycle tracks the rate."""
        topo = mesh(8, 8)
        traffic = UniformRandomTraffic(topo, rate=0.1, seed=1)
        flits = 0
        cycles = 4000
        for t in range(cycles):
            for _, _, _, size in traffic.packets_at(t):
                flits += size
        measured = flits / (cycles * topo.num_nodes)
        assert measured == pytest.approx(0.1, rel=0.1)

    def test_never_self_destined(self):
        topo = mesh(4, 4)
        traffic = UniformRandomTraffic(topo, rate=0.5, seed=2)
        for t in range(200):
            for src, dst, _, _ in traffic.packets_at(t):
                assert src != dst

    def test_zero_rate_silent(self):
        topo = mesh(4, 4)
        traffic = UniformRandomTraffic(topo, rate=0.0, seed=1)
        assert list(traffic.packets_at(0)) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic(mesh(4, 4), rate=-0.1)

    def test_packet_size_mix(self):
        topo = mesh(4, 4)
        traffic = UniformRandomTraffic(
            topo, rate=0.3, seed=3, data_flits=5, ctrl_flits=1, data_fraction=0.5
        )
        sizes = []
        for t in range(500):
            sizes.extend(size for *_, size in traffic.packets_at(t))
        assert set(sizes) == {1, 5}
        data_frac = sum(1 for s in sizes if s == 5) / len(sizes)
        assert data_frac == pytest.approx(0.5, abs=0.1)

    def test_sources_restricted_to_active_nodes(self):
        topo = mesh(4, 4)
        topo.deactivate_node(5)
        traffic = UniformRandomTraffic(topo, rate=0.5, seed=1)
        for t in range(100):
            for src, _, _, _ in traffic.packets_at(t):
                assert src != 5


class TestPatterns:
    def test_bit_complement_mapping(self):
        topo = mesh(8, 8)
        traffic = BitComplementTraffic(topo, rate=1.0, seed=1)
        assert traffic.destination(topo.node_id(0, 0)) == topo.node_id(7, 7)
        assert traffic.destination(topo.node_id(2, 5)) == topo.node_id(5, 2)

    def test_transpose_mapping(self):
        topo = mesh(8, 8)
        traffic = TransposeTraffic(topo, rate=1.0, seed=1)
        assert traffic.destination(topo.node_id(2, 5)) == topo.node_id(5, 2)
        assert traffic.destination(topo.node_id(3, 3)) is None

    def test_transpose_requires_square(self):
        topo = mesh(4, 2)
        traffic = TransposeTraffic(topo, rate=1.0, seed=1)
        with pytest.raises(ValueError):
            traffic.destination(0)

    def test_hotspot_bias(self):
        topo = mesh(8, 8)
        traffic = HotspotTraffic(
            topo, rate=1.0, hotspots=[0], hot_fraction=0.9, seed=4
        )
        hits = sum(
            1 for _ in range(500) if traffic.destination(topo.node_id(5, 5)) == 0
        )
        assert hits > 350

    def test_hotspot_requires_hotspots(self):
        with pytest.raises(ValueError):
            HotspotTraffic(mesh(4, 4), rate=0.1, hotspots=[])

    def test_factory(self):
        topo = mesh(4, 4)
        assert isinstance(
            make_pattern("uniform_random", topo, 0.1), UniformRandomTraffic
        )
        with pytest.raises(ValueError):
            make_pattern("nope", topo, 0.1)


class TestTrace:
    def test_replay_in_order(self):
        trace = TraceTraffic([(5, 0, 1, 0, 1), (2, 1, 2, 0, 5), (2, 2, 3, 0, 1)])
        assert list(trace.packets_at(0)) == []
        assert len(list(trace.packets_at(2))) == 2
        assert not trace.exhausted(2)
        assert len(list(trace.packets_at(5))) == 1
        assert trace.exhausted(5)

    def test_late_poll_catches_up(self):
        trace = TraceTraffic([(2, 1, 2, 0, 5)])
        assert len(list(trace.packets_at(10))) == 1

    def test_totals(self):
        trace = TraceTraffic([(0, 0, 1, 0, 5), (1, 1, 2, 0, 1)])
        assert trace.total_flits() == 6
        assert trace.last_cycle() == 1
        assert len(trace) == 2

    def test_reset(self):
        trace = TraceTraffic([(0, 0, 1, 0, 5)])
        list(trace.packets_at(0))
        assert trace.exhausted(0)
        trace.reset()
        assert not trace.exhausted(0)


class TestTracePersistence:
    def _replay(self, trace):
        """Full injection schedule: (cycle, spec) for every emitted packet."""
        trace.reset()
        schedule = []
        last = trace.last_cycle()
        for now in range(last + 1):
            for spec in trace.packets_at(now):
                schedule.append((now, spec))
        assert trace.exhausted(last)
        return schedule

    def test_save_load_round_trip(self, tmp_path):
        trace = TraceTraffic([(5, 0, 1, 0, 1), (2, 1, 2, 1, 5), (2, 2, 3, 0, 1)])
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.events == trace.events
        assert all(isinstance(e, tuple) for e in loaded.events)
        assert len(loaded) == len(trace)
        assert loaded.total_flits() == trace.total_flits()

    def test_replay_bit_identical(self, tmp_path):
        """A reloaded workload trace injects the identical schedule —
        same cycles, same src/dst/vnet/size — as the original."""
        topo = mesh(4, 4)
        trace = build_workload_trace(
            PARSEC_SPECS["canneal"], topo, memory_controllers=[0, 3], duration=200, seed=9
        )
        path = tmp_path / "canneal.json"
        trace.save(path)
        loaded = TraceTraffic.load(path)
        assert self._replay(loaded) == self._replay(trace)

    def test_methods_mirror_functions(self, tmp_path):
        trace = TraceTraffic([(0, 0, 1, 0, 2)])
        path = tmp_path / "t.json"
        trace.save(path)
        assert load_trace(path).events == TraceTraffic.load(path).events

    def test_atomic_write_no_temp_leftovers(self, tmp_path):
        save_trace(TraceTraffic([(0, 0, 1, 0, 1)]), tmp_path / "t.json")
        assert [p.name for p in tmp_path.iterdir()] == ["t.json"]

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "events": []}')
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_malformed_event_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"version": %d, "events": [[1, 2, 3]]}' % TRACE_FORMAT_VERSION
        )
        with pytest.raises(ValueError, match="malformed"):
            load_trace(path)


class TestComposite:
    def test_union(self):
        a = TraceTraffic([(0, 0, 1, 0, 1)])
        b = TraceTraffic([(0, 2, 3, 0, 5)])
        both = CompositeTraffic([a, b])
        assert len(list(both.packets_at(0))) == 2
        assert both.exhausted(0)

    def test_base_generator_is_silent(self):
        gen = TrafficGenerator()
        assert list(gen.packets_at(0)) == []
        assert not gen.exhausted(0)
