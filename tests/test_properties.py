"""Hypothesis property tests on the core invariants.

* The counter FSM never crashes or reaches an inconsistent state under
  arbitrary event sequences.
* Packet conservation holds at every cycle for every scheme under random
  topology/load combinations.
* Static Bubble's recovery machinery never corrupts a packet: whatever
  is eventually delivered is delivered to its own destination.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsm import CounterFsm, FsmState
from repro.core.turns import Port, Turn
from repro.protocols import make_scheme
from repro.sim.config import SimConfig
from repro.sim.network import Network
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic

# -- FSM event fuzzing --------------------------------------------------------

_EVENTS = st.sampled_from(
    [
        "tick",
        "first_flit",
        "progress_active",
        "progress_idle",
        "probe_returned",
        "disable_returned",
        "bubble_reclaimed",
        "check_probe_returned",
        "enable_returned_active",
        "enable_returned_idle",
        "foreign_disable",
        "foreign_enable",
    ]
)


@given(events=st.lists(_EVENTS, min_size=1, max_size=120))
@settings(max_examples=120, deadline=None)
def test_fsm_never_inconsistent(events):
    """Any event sequence leaves the FSM in a well-defined state with a
    coherent turn buffer (non-empty exactly while a path is latched)."""
    fsm = CounterFsm(node=9, t_dd=3, max_enable_retries=2)
    for event in events:
        if event == "tick":
            fsm.tick()
        elif event == "first_flit":
            fsm.on_first_flit()
        elif event == "progress_active":
            fsm.on_watched_vc_progress(True)
        elif event == "progress_idle":
            fsm.on_watched_vc_progress(False)
        elif event == "probe_returned":
            fsm.on_probe_returned((Turn.LEFT, Turn.LEFT), Port.SOUTH, Port.NORTH)
        elif event == "disable_returned":
            fsm.on_disable_returned()
        elif event == "bubble_reclaimed":
            fsm.on_bubble_reclaimed()
        elif event == "check_probe_returned":
            fsm.on_check_probe_returned()
        elif event == "enable_returned_active":
            fsm.on_enable_returned(True)
        elif event == "enable_returned_idle":
            fsm.on_enable_returned(False)
        elif event == "foreign_disable":
            fsm.on_foreign_disable()
        elif event == "foreign_enable":
            fsm.on_foreign_enable(True)
        # invariants after every event:
        assert isinstance(fsm.state, FsmState)
        assert 0 <= fsm.count <= max(fsm.threshold, fsm.t_dd)
        if fsm.in_recovery():
            assert fsm.probe_out_port is not None
        if fsm.state in (FsmState.S_OFF, FsmState.S_DD):
            assert fsm.turn_buffer == ()


# -- network conservation under fuzzed settings ------------------------------

@given(
    seed=st.integers(min_value=0, max_value=50_000),
    faults=st.integers(min_value=0, max_value=8),
    rate=st.floats(min_value=0.02, max_value=0.35),
    scheme=st.sampled_from(["spanning-tree", "escape-vc", "static-bubble"]),
)
@settings(max_examples=12, deadline=None)
def test_conservation_every_cycle(seed, faults, rate, scheme):
    topo = inject_link_faults(mesh(5, 5), faults, random.Random(seed))
    config = SimConfig(width=5, height=5, vcs_per_vnet=2)
    traffic = UniformRandomTraffic(topo, rate=rate, seed=seed)
    net = Network(topo, config, make_scheme(scheme), traffic, seed=seed)
    for _ in range(30):
        net.run(10)
        assert (
            net.stats.packets_injected
            == net.stats.packets_ejected + net.total_occupancy()
        )


@given(seed=st.integers(min_value=0, max_value=50_000))
@settings(max_examples=8, deadline=None)
def test_recovery_never_misdelivers(seed):
    """Under deadlock churn, every delivered packet reaches its own dst."""
    topo = inject_link_faults(mesh(5, 5), 4, random.Random(seed))
    config = SimConfig(width=5, height=5, vcs_per_vnet=1, sb_t_dd=8)
    traffic = UniformRandomTraffic(topo, rate=0.4, seed=seed)
    net = Network(topo, config, make_scheme("static-bubble"), traffic, seed=seed)

    delivered = []
    for ni in net.nis.values():
        original = ni.eject

        def checked(packet, now, _ni=ni, _orig=original):
            assert packet.dst == _ni.node, "packet ejected at wrong node"
            delivered.append(packet.pid)
            _orig(packet, now)

        ni.eject = checked
    net.run(1200)
    assert len(delivered) == len(set(delivered)), "duplicate delivery"
    assert delivered, "network made no progress"
