"""Tests for the canonical serializer (repro.utils.serialize).

The serializer backs three load-bearing surfaces — the CLI ``--json``
flags, the content-addressed result store, and the ``fan_out`` sweep
cache — so the properties under test are exactness of the round trip
and byte-stability of the canonical form.
"""

import math
import random

import pytest

from repro.sim.config import SimConfig
from repro.sim.engine import WindowResult
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh
from repro.utils.serialize import (
    SerializationError,
    canonical_json,
    fingerprint,
    from_jsonable,
    to_jsonable,
)


def roundtrip(obj):
    return from_jsonable(to_jsonable(obj))


class TestRoundTrip:
    def test_scalars(self):
        for value in (None, True, False, 0, -7, 3.25, "x", ""):
            assert roundtrip(value) == value
            assert type(roundtrip(value)) is type(value)

    def test_nonfinite_floats(self):
        assert roundtrip(math.inf) == math.inf
        assert math.isnan(roundtrip(math.nan))

    def test_tuples_stay_tuples(self):
        value = (1, (2.5, "a"), [3, (4,)])
        back = roundtrip(value)
        assert back == value
        assert isinstance(back, tuple)
        assert isinstance(back[1], tuple)
        assert isinstance(back[2], list)
        assert isinstance(back[2][1], tuple)

    def test_sets(self):
        assert roundtrip({3, 1, 2}) == {1, 2, 3}
        back = roundtrip(frozenset(("a", "b")))
        assert back == frozenset(("a", "b"))
        assert isinstance(back, frozenset)

    def test_tuple_keyed_dict(self):
        value = {("fig8", 4, "static-bubble"): 12.5, ("fig8", 8, "escape-vc"): 13.0}
        back = roundtrip(value)
        assert back == value
        assert all(isinstance(k, tuple) for k in back)

    def test_dataclasses(self):
        config = SimConfig(width=4, height=4, vcs_per_vnet=2)
        back = roundtrip(config)
        assert back == config
        assert isinstance(back, SimConfig)
        result = WindowResult(12.0, 0.05, 100, False, 2000)
        assert roundtrip(result) == result

    def test_nested_dataclass_in_dict(self):
        value = {"a": [WindowResult(1.0, 0.1, 5, True, 10), (1, 2)]}
        back = roundtrip(value)
        assert back == value
        assert isinstance(back["a"][0], WindowResult)

    def test_topology(self):
        topo = inject_link_faults(mesh(4, 4), 3, random.Random(7))
        topo.deactivate_node(5)
        back = roundtrip(topo)
        assert back.to_spec() == topo.to_spec()
        assert back.active_links() == topo.active_links()
        assert back.active_nodes() == topo.active_nodes()

    def test_unknown_type_rejected(self):
        with pytest.raises(SerializationError):
            to_jsonable(object())

    def test_dataclass_import_restricted(self):
        tagged = {
            "__repro__": "dataclass",
            "type": "os:stat_result",
            "fields": {},
        }
        with pytest.raises(SerializationError):
            from_jsonable(tagged)


class TestCanonicalForm:
    def test_key_order_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_fingerprint_stability(self):
        spec = {"width": 8, "rate": 0.05, "counts": (1, 2, 3)}
        assert fingerprint(spec) == fingerprint(dict(reversed(list(spec.items()))))

    def test_fingerprint_sensitivity(self):
        assert fingerprint({"seed": 1}) != fingerprint({"seed": 2})
        assert fingerprint({"a": 1}) != fingerprint({"a": 1}, salt="v2")

    def test_list_vs_tuple_distinct(self):
        """A tuple and a list of the same items are different values."""
        assert fingerprint((1, 2)) != fingerprint([1, 2])

    def test_topology_canonical_across_fault_order(self):
        a = mesh(4, 4)
        a.deactivate_link(0, 1)
        a.deactivate_link(5, 6)
        b = mesh(4, 4)
        b.deactivate_link(5, 6)
        b.deactivate_link(0, 1)
        assert canonical_json(a) == canonical_json(b)
