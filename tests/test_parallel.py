"""Tests for ``repro.parallel`` and the active-router-set fast path.

Two families:

* pool semantics — ordering, worker resolution, progress callbacks,
  serial fallbacks, and (the load-bearing property) bit-identical
  results between serial and multi-process runs of the same job list;
* hot-path equivalence — the active-router set and VC caches must leave
  simulation outcomes exactly unchanged versus the full per-cycle scan.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import fig8_latency
from repro.experiments.common import run_synthetic
from repro.parallel import (
    Job,
    JobError,
    WORKERS_ENV_VAR,
    default_workers,
    job_seed,
    resolve_workers,
    run_jobs,
    run_jobs_batched,
)
from repro.protocols import MinimalUnprotected, StaticBubbleScheme
from repro.sim.config import SimConfig
from repro.sim.deadlock import DeadlockMonitor, find_wait_cycle
from repro.sim.engine import deadlocks_within
from repro.sim.network import Network
from repro.topology.faults import sample_topologies
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic

from tests.conftest import build_2x2_ring_deadlock


def _square(x: int) -> int:
    return x * x


def _simulate_point(rate: float, seed: int):
    """Small measured run returning its WindowResult (picklable)."""
    topo = mesh(4, 4)
    config = SimConfig(width=4, height=4)
    result, _ = run_synthetic(
        topo, "static-bubble", "uniform_random", rate, config, 50, 150, seed
    )
    return result


# -- pool semantics -----------------------------------------------------


class TestRunJobs:
    def test_results_in_submission_order(self):
        jobs = [Job(_square, (i,)) for i in range(20)]
        assert run_jobs(jobs, workers=4) == [i * i for i in range(20)]

    def test_serial_path_matches_parallel(self):
        jobs = [Job(_square, (i,)) for i in range(10)]
        assert run_jobs(jobs, workers=1) == run_jobs(jobs, workers=3)

    def test_empty_job_list(self):
        assert run_jobs([], workers=4) == []

    def test_single_job_runs_serially(self):
        # One job never justifies a pool; exercised via the n<=1 branch.
        assert run_jobs([Job(_square, (7,))], workers=8) == [49]

    def test_kwargs(self):
        assert run_jobs([Job(pow, (2,), {"exp": 10})], workers=1) == [1024]

    def test_progress_callback_serial(self):
        seen = []
        run_jobs(
            [Job(_square, (i,)) for i in range(5)],
            workers=1,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(i, 5) for i in range(1, 6)]

    def test_progress_callback_parallel(self):
        seen = []
        run_jobs(
            [Job(_square, (i,)) for i in range(8)],
            workers=2,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(i, 8) for i in range(1, 9)]

    def test_unpicklable_jobs_fall_back_to_serial(self):
        # Lambdas cannot cross a process boundary; results must still come
        # back correct (and in order) via the in-process fallback.
        jobs = [Job(lambda i=i: i * 10) for i in range(6)]
        assert run_jobs(jobs, workers=4) == [i * 10 for i in range(6)]

    def test_window_result_identity_through_pool(self):
        direct = _simulate_point(0.05, 7)
        (pooled,) = run_jobs([Job(_simulate_point, (0.05, 7))] * 1, workers=1)
        (pooled2, extra) = run_jobs(
            [Job(_simulate_point, (0.05, 7)), Job(_simulate_point, (0.10, 8))],
            workers=2,
        )
        assert pooled == direct
        assert pooled2 == direct
        assert extra != direct  # different rate/seed really ran


class TestRunJobsBatched:
    def test_matches_run_jobs(self):
        jobs = [Job(_square, (i,)) for i in range(23)]
        assert run_jobs_batched(jobs, workers=4) == run_jobs(jobs, workers=4)

    def test_explicit_batch_size(self):
        jobs = [Job(_square, (i,)) for i in range(10)]
        assert run_jobs_batched(jobs, workers=3, batch_size=4) == [
            i * i for i in range(10)
        ]

    def test_serial_fallback(self):
        jobs = [Job(_square, (i,)) for i in range(6)]
        assert run_jobs_batched(jobs, workers=1) == [i * i for i in range(6)]

    def test_empty(self):
        assert run_jobs_batched([], workers=4) == []

    def test_progress_counts_cells_not_batches(self):
        seen = []
        run_jobs_batched(
            [Job(_square, (i,)) for i in range(10)],
            workers=2,
            batch_size=4,
            progress=lambda done, total: seen.append((done, total)),
        )
        # Three batches of 4/4/2 cells; cumulative cell counts, total=10.
        assert seen == [(4, 10), (8, 10), (10, 10)]

    def test_failing_cell_names_itself(self):
        jobs = [Job(_square, (1,)), Job(_explode, (9,)), Job(_square, (2,))]
        with pytest.raises(JobError) as exc_info:
            run_jobs_batched(jobs, workers=2, batch_size=3)
        assert "_explode" in str(exc_info.value)
        assert "9" in str(exc_info.value)

    def test_simulation_cells_identical_to_unbatched(self):
        jobs = [
            Job(_simulate_point, (0.05, 7)),
            Job(_simulate_point, (0.10, 8)),
            Job(_simulate_point, (0.05, 9)),
        ]
        assert run_jobs_batched(jobs, workers=2, batch_size=2) == run_jobs(
            jobs, workers=1
        )


def _explode(x: int, *, why: str = "bad input") -> int:
    raise ValueError(f"{why}: {x}")


class TestJobError:
    def test_describe_names_func_args_kwargs(self):
        job = Job(_explode, (3,), {"why": "nope"})
        text = job.describe()
        assert "_explode" in text
        assert "3" in text and "why='nope'" in text

    def test_describe_trims_long_args(self):
        job = Job(_square, ("x" * 5000,))
        text = job.describe(limit=400)
        assert text.endswith("...))")
        assert len(text) < 500  # limit + function name + framing

    def test_serial_failure_identifies_job(self):
        jobs = [Job(_square, (1,)), Job(_explode, (9,))]
        with pytest.raises(JobError, match=r"_explode.*9"):
            run_jobs(jobs, workers=1)

    def test_serial_failure_chains_cause(self):
        with pytest.raises(JobError) as exc_info:
            run_jobs([Job(_explode, (1,))], workers=1)
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_pool_failure_identifies_job(self):
        # The original traceback cannot cross the process boundary, but
        # the job identity and exception repr must.
        jobs = [Job(_square, (i,)) for i in range(3)] + [Job(_explode, (7,))]
        with pytest.raises(JobError, match=r"_explode\(7\).*ValueError"):
            run_jobs(jobs, workers=2)


class TestWorkerResolution:
    def test_explicit_wins(self):
        assert resolve_workers(3) == 3

    def test_explicit_clamped_to_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-5) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "6")
        assert resolve_workers(None) == 6
        assert default_workers() == 6

    def test_env_var_invalid_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        assert default_workers() == max(1, (os.cpu_count() or 2) - 1)

    def test_default_is_cpu_minus_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert default_workers() == max(1, (os.cpu_count() or 2) - 1)


class TestJobSeed:
    def test_deterministic(self):
        assert job_seed(42, "fig8", 3, "static-bubble") == job_seed(
            42, "fig8", 3, "static-bubble"
        )

    def test_distinct_labels_distinct_seeds(self):
        seeds = {
            job_seed(42, "fig8", i, scheme)
            for i in range(4)
            for scheme in ("spanning-tree", "escape-vc", "static-bubble")
        }
        assert len(seeds) == 12


# -- experiment-level determinism ---------------------------------------


def _mini_fig8_params(workers):
    return fig8_latency.Fig8Params(
        width=4,
        height=4,
        link_fault_counts=[2],
        router_fault_counts=[1],
        patterns=["uniform_random"],
        samples=2,
        warmup=60,
        measure=150,
        workers=workers,
    )


def test_fig8_parallel_bit_identical_to_serial():
    serial = fig8_latency.run(_mini_fig8_params(workers=1))
    parallel = fig8_latency.run(_mini_fig8_params(workers=4))
    assert serial.latency == parallel.latency


# -- active-router-set equivalence --------------------------------------


def _faulty_net(seed: int, rate: float, full_scan: bool) -> Network:
    topo = list(
        sample_topologies(4, 4, "link", 3, 1, seed)
    )[0]
    config = SimConfig(width=4, height=4, vcs_per_vnet=2)
    traffic = UniformRandomTraffic(topo, rate=rate, seed=seed)
    net = Network(topo, config, MinimalUnprotected(), traffic, seed=seed)
    net.full_scan = full_scan
    return net


@pytest.mark.parametrize("seed,rate", [(3, 0.6), (11, 0.4), (21, 0.15)])
def test_active_set_matches_full_scan(seed, rate):
    fast = _faulty_net(seed, rate, full_scan=False)
    slow = _faulty_net(seed, rate, full_scan=True)
    fast_dl = deadlocks_within(fast, 600, DeadlockMonitor(interval=16))
    slow_dl = deadlocks_within(slow, 600, DeadlockMonitor(interval=16))
    assert fast_dl == slow_dl
    assert fast.stats.packets_injected == slow.stats.packets_injected
    assert fast.stats.packets_ejected == slow.stats.packets_ejected
    assert fast.stats.crossbar_flits == slow.stats.crossbar_flits
    assert fast.total_occupancy() == slow.total_occupancy()


def test_active_set_static_bubble_recovery_unchanged():
    """The constructed ring deadlock must still recover, in the same
    number of cycles, with the active-set sweep as with the full scan."""
    results = []
    for full_scan in (False, True):
        net, _ = build_2x2_ring_deadlock()
        net.full_scan = full_scan
        recovered_at = None
        for _ in range(400):
            net.step()
            if net.stats.recoveries_completed and find_wait_cycle(
                net, net.cycle
            ) is None:
                recovered_at = net.cycle
                break
        assert recovered_at is not None, "recovery did not complete"
        results.append((recovered_at, net.stats.recoveries_completed))
    assert results[0] == results[1]


def test_hand_placed_packets_wake_router():
    # conftest.place_packet mutates router.occupancy directly; the wake
    # hook must still register the router in the active set.
    net, _ = build_2x2_ring_deadlock()
    assert set(net._active_nodes) == {0, 1, 2, 3}


def test_vc_cache_consistent_after_recovery():
    net, _ = build_2x2_ring_deadlock()
    for _ in range(400):
        net.step()
        if net.stats.recoveries_completed:
            break
    for router in net.active_routers():
        for port in range(5):
            assert router.cached_port_vcs(port) == tuple(router.port_vcs(port))


def test_full_scan_flag_defaults_off():
    net = Network(
        mesh(2, 2), SimConfig(width=2, height=2), MinimalUnprotected(), seed=1
    )
    assert net.full_scan is False


# -- DeadlockMonitor pre-check ------------------------------------------


def test_monitor_skips_while_moving_then_backstops():
    net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
    monitor = DeadlockMonitor(interval=4, max_skips=2)
    # First due check has no movement baseline: must build and detect the
    # constructed (static) deadlock immediately.
    for _ in range(4):
        net.step()
    assert monitor.check(net, net.cycle)


def test_monitor_backstop_detects_despite_movement():
    # Fake continuous movement by bumping crossbar_flits between checks;
    # the backstop must still run the full detector within
    # (max_skips + 1) intervals.
    net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
    monitor = DeadlockMonitor(interval=2, max_skips=2)
    detected_at = None
    for _ in range(20):
        net.step()
        net.stats.crossbar_flits += 1  # traffic elsewhere keeps moving
        if monitor.check(net, net.cycle):
            detected_at = net.cycle
            break
    assert detected_at is not None
    assert detected_at <= 2 * (monitor.max_skips + 2)
