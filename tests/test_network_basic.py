"""Network-level behaviour: delivery, latency, conservation, restrictions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.turns import Port
from repro.protocols.none import MinimalUnprotected
from repro.protocols.spanning_tree import SpanningTreeAvoidance
from repro.sim.config import SimConfig
from repro.sim.engine import run_to_drain, run_with_window
from repro.sim.network import Network
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh
from repro.traffic.trace import TraceTraffic
from repro.traffic.synthetic import UniformRandomTraffic


def single_packet_net(src, dst, size=1, width=4, height=4):
    topo = mesh(width, height)
    config = SimConfig(width=width, height=height)
    trace = TraceTraffic([(0, src, dst, 0, size)])
    return Network(topo, config, MinimalUnprotected(), trace, seed=1)


class TestSinglePacketDelivery:
    def test_neighbor_delivery(self):
        net = single_packet_net(0, 1)
        cycles = run_to_drain(net, 100)
        assert cycles is not None
        assert net.stats.packets_ejected == 1
        assert net.stats.packets_injected == 1

    def test_zero_load_latency_formula(self):
        """Head latency: ~2 cycles/hop (router+link) + serialization."""
        for hops, size in [(1, 1), (3, 1), (6, 5)]:
            dst = hops  # walk east along the bottom row of an 8x8
            net = single_packet_net(0, dst, size=size, width=8, height=8)
            run_to_drain(net, 200)
            pkt_latency = net.stats.latency_sum
            # injection(1) + hops * (1 router + 1 link) + tail serialization
            expected = 1 + 2 * hops + size
            assert abs(pkt_latency - expected) <= 2

    def test_cross_chip_delivery(self):
        net = single_packet_net(0, 15, size=5)
        assert run_to_drain(net, 200) is not None

    def test_unreachable_is_dropped(self):
        topo = mesh(2, 2)
        topo.deactivate_link(0, 1)
        topo.deactivate_link(0, 2)
        config = SimConfig(width=2, height=2)
        trace = TraceTraffic([(0, 0, 3, 0, 1)])
        net = Network(topo, config, MinimalUnprotected(), trace, seed=1)
        run_to_drain(net, 50)
        assert net.stats.packets_dropped_unreachable == 1
        assert net.stats.packets_injected == 0


class TestConservation:
    @pytest.mark.parametrize("scheme_cls", [MinimalUnprotected, SpanningTreeAvoidance])
    def test_all_injected_packets_delivered_at_low_load(self, scheme_cls):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4)
        traffic = UniformRandomTraffic(topo, rate=0.03, seed=5)
        net = Network(topo, config, scheme_cls(), traffic, seed=5)
        net.run(800)
        net.traffic = None  # stop injecting; drain
        drained = run_to_drain(net, 2000)
        assert drained is not None
        assert net.stats.packets_ejected == net.stats.packets_injected
        assert net.stats.flits_ejected == net.stats.flits_injected

    def test_occupancy_counter_consistency(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4)
        traffic = UniformRandomTraffic(topo, rate=0.1, seed=5)
        net = Network(topo, config, MinimalUnprotected(), traffic, seed=5)
        for _ in range(50):
            net.run(10)
            for router in net.active_routers():
                actual = sum(
                    1 for vc in router.all_vcs() if vc.packet is not None
                )
                assert actual == router.occupancy


class TestVctInvariants:
    def test_no_vc_ever_holds_two_packets(self):
        """VCT with packet-deep VCs: reservation must never double-book."""
        topo = inject_link_faults(mesh(4, 4), 3, random.Random(2))
        config = SimConfig(width=4, height=4, vcs_per_vnet=2)
        traffic = UniformRandomTraffic(topo, rate=0.3, seed=2)
        net = Network(topo, config, MinimalUnprotected(), traffic, seed=2)
        seen_double = False
        for _ in range(300):
            net.step()
            pids = []
            for router in net.active_routers():
                for vc in router.all_vcs():
                    if vc.packet is not None:
                        pids.append(vc.packet.pid)
            seen_double |= len(pids) != len(set(pids))
        assert not seen_double, "a packet appeared in two VCs at once"

    def test_link_serialization_blocks_back_to_back(self):
        """Two 5-flit packets on one link must be >= 5 cycles apart."""
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        trace = TraceTraffic([(0, 0, 1, 0, 5), (0, 0, 1, 0, 5)])
        net = Network(topo, config, MinimalUnprotected(), trace, seed=1)
        drained = run_to_drain(net, 100)
        assert drained is not None
        # 2nd packet's ejection must trail the 1st by >= 5 cycles.
        assert net.stats.packets_ejected == 2


class TestWindowMeasurement:
    def test_throughput_tracks_offered_load_below_saturation(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4)
        traffic = UniformRandomTraffic(topo, rate=0.05, seed=9)
        net = Network(topo, config, MinimalUnprotected(), traffic, seed=9)
        result = run_with_window(net, 300, 900)
        assert result.throughput_flits_node_cycle == pytest.approx(0.05, rel=0.25)

    def test_latency_grows_with_load(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4)
        latencies = []
        for rate in (0.02, 0.25):
            traffic = UniformRandomTraffic(topo, rate=rate, seed=9)
            net = Network(topo, config, MinimalUnprotected(), traffic, seed=9)
            result = run_with_window(net, 300, 900)
            latencies.append(result.avg_latency)
        assert latencies[1] > latencies[0]


class TestConfigValidation:
    def test_dimension_mismatch_rejected(self):
        topo = mesh(4, 4)
        config = SimConfig(width=8, height=8)
        with pytest.raises(ValueError):
            Network(topo, config, MinimalUnprotected(), None, seed=1)

    def test_bad_config_rejected(self):
        config = SimConfig(width=4, height=4, vcs_per_vnet=0)
        with pytest.raises(ValueError):
            Network(mesh(4, 4), config, MinimalUnprotected(), None, seed=1)


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    rate=st.floats(min_value=0.01, max_value=0.08),
    faults=st.integers(min_value=0, max_value=6),
)
@settings(max_examples=10, deadline=None)
def test_property_no_packet_lost_or_duplicated(seed, rate, faults):
    """Property: injected = ejected + in-flight, across random settings."""
    topo = inject_link_faults(mesh(4, 4), faults, random.Random(seed))
    config = SimConfig(width=4, height=4)
    traffic = UniformRandomTraffic(topo, rate=rate, seed=seed)
    net = Network(topo, config, SpanningTreeAvoidance(), traffic, seed=seed)
    net.run(400)
    assert (
        net.stats.packets_injected
        == net.stats.packets_ejected + net.total_occupancy()
    )
