"""Protocol tests for Static Bubble recovery (Section IV).

Uses the constructed 2x2 ring deadlock (the smallest instance of the
paper's Fig. 6 walk-through) plus larger constructed scenarios to check
every phase: probe traversal/forking/drop rules, disable sealing,
bubble activation and drain, check_probe retracing, enable teardown,
and the documented corner cases.
"""

import random

import pytest

from repro.core.fsm import FsmState
from repro.core.messages import MsgType, make_probe
from repro.core.turns import Port, Turn
from repro.protocols.none import MinimalUnprotected
from repro.protocols.static_bubble import StaticBubbleScheme
from repro.sim.config import SimConfig
from repro.sim.deadlock import find_wait_cycle
from repro.sim.engine import deadlocks_within
from repro.sim.network import Network
from repro.topology.faults import inject_link_faults, inject_router_faults
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic

from tests.conftest import build_2x2_ring_deadlock, place_packet


def run_until_delivered(net, expected, limit=600):
    for _ in range(limit):
        net.step()
        if net.stats.packets_ejected >= expected:
            return net.cycle
    return None


class TestMinimalRecovery:
    def test_ring_deadlock_recovered(self):
        net, scheme = build_2x2_ring_deadlock()
        assert find_wait_cycle(net, 0) is not None
        done = run_until_delivered(net, 4)
        assert done is not None, "deadlock was not recovered"
        assert find_wait_cycle(net, net.cycle) is None

    def test_protocol_phases_all_fire(self):
        net, scheme = build_2x2_ring_deadlock()
        run_until_delivered(net, 4)
        net.run(200)  # let the check_probe time out and the enable return
        stats = net.stats
        assert stats.probes_sent >= 1
        assert stats.disables_sent >= 1
        assert stats.bubble_activations >= 1
        assert stats.check_probes_sent >= 1
        assert stats.enables_sent >= 1

    def test_fsm_returns_to_idle_after_recovery(self):
        net, scheme = build_2x2_ring_deadlock()
        run_until_delivered(net, 4)
        net.run(200)
        fsm = scheme.states[3].fsm
        assert fsm.state in (FsmState.S_OFF, FsmState.S_DD)
        assert fsm.turn_buffer == ()
        router = net.routers[3]
        assert not router.is_deadlock
        assert not router.bubble_active

    def test_restrictions_cleared_everywhere(self):
        net, _ = build_2x2_ring_deadlock()
        run_until_delivered(net, 4)
        net.run(400)
        for router in net.active_routers():
            assert not router.is_deadlock

    def test_recovery_counted(self):
        net, scheme = build_2x2_ring_deadlock()
        run_until_delivered(net, 4)
        net.run(400)
        assert net.stats.recoveries_completed >= 1

    def test_recovery_without_check_probe(self):
        """Footnote 7: the scheme still recovers without the optimization."""
        net, _ = build_2x2_ring_deadlock(
            scheme=StaticBubbleScheme(use_check_probe=False)
        )
        assert run_until_delivered(net, 4) is not None
        assert net.stats.check_probes_sent == 0

    def test_recovery_without_forking(self):
        """A single elementary cycle needs no forking."""
        net, _ = build_2x2_ring_deadlock(scheme=StaticBubbleScheme(fork_probes=False))
        assert run_until_delivered(net, 4) is not None


class TestProbeRules:
    def test_probe_dropped_at_port_with_free_vc(self):
        """A free VC at the probed input port means no deadlock there."""
        topo = mesh(2, 2)
        config = SimConfig(width=2, height=2, vcs_per_vnet=2, sb_t_dd=5)
        scheme = StaticBubbleScheme()
        net = Network(topo, config, scheme, None, seed=1)
        E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
        # Only one of two VCs occupied at node 2's E port.
        place_packet(net, 2, E, 102, 3, 0, (W, S, L))
        router = net.routers[2]
        scheme.process_specials(
            net, router, [(Port.EAST, make_probe(3, Port.WEST))], now=0
        )
        assert net._special_arrivals == {}

    def test_probe_forked_to_union_of_requests(self):
        topo = mesh(3, 3)
        config = SimConfig(width=3, height=3, vcs_per_vnet=2, sb_t_dd=5)
        scheme = StaticBubbleScheme()
        net = Network(topo, config, scheme, None, seed=1)
        E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
        center = 4
        # Two packets at the center's West port wanting different outputs.
        place_packet(net, center, W, 201, 3, 5, (E, E, L), vc_index=0)
        place_packet(net, center, W, 202, 3, 7, (E, N, L), vc_index=1)
        probe = make_probe(8, Port.EAST)
        scheme.process_specials(net, net.routers[center], [(W, probe)], now=0)
        arrivals = net._special_arrivals.get(2, [])
        out_nodes = sorted(node for node, _, _ in arrivals)
        assert out_nodes == [5, 7]  # forked East and North

    def test_probe_fork_excludes_ejection(self):
        topo = mesh(3, 3)
        config = SimConfig(width=3, height=3, vcs_per_vnet=1, sb_t_dd=5)
        scheme = StaticBubbleScheme()
        net = Network(topo, config, scheme, None, seed=1)
        E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
        # Packet at node 4's W port wants to eject at node 4.
        pkt = place_packet(net, 4, W, 301, 3, 4, (E, L))
        pkt.hop = 1  # next port is LOCAL
        probe = make_probe(8, Port.EAST)
        scheme.process_specials(net, net.routers[4], [(W, probe)], now=0)
        assert net._special_arrivals == {}

    def test_lower_id_probe_dropped_at_sb_router(self):
        """Section IV-B: an SB node drops probes from lower-id SB nodes."""
        topo = mesh(2, 2)
        config = SimConfig(width=2, height=2, vcs_per_vnet=1, sb_t_dd=5)
        scheme = StaticBubbleScheme(placement_override={0, 3})
        net = Network(topo, config, scheme, None, seed=1)
        E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
        place_packet(net, 3, S, 101, 1, 2, (N, W, L))
        # The drop rule applies while the receiving SB node is itself in
        # detection (S_DD); park its FSM there first.
        scheme.states[3].fsm.on_first_flit()
        probe_from_lower = make_probe(0, Port.NORTH)
        scheme.process_specials(net, net.routers[3], [(S, probe_from_lower)], now=0)
        assert net._special_arrivals == {}
        # ...but a probe from a higher-id sender would be forked onward.
        scheme2 = StaticBubbleScheme(placement_override={3})
        net2 = Network(topo, config, scheme2, None, seed=1)
        place_packet(net2, 3, S, 101, 1, 2, (N, W, L))
        probe_hi = make_probe(99, Port.NORTH)
        scheme2.process_specials(net2, net2.routers[3], [(S, probe_hi)], now=0)
        assert len(net2._special_arrivals.get(2, [])) == 1

    def test_probe_capacity_exhaustion_drops(self):
        net, scheme = build_2x2_ring_deadlock()
        probe = make_probe(99, Port.NORTH)
        for _ in range(59):
            probe = probe.with_turn_appended(Turn.LEFT, probe.travel)
        scheme.process_specials(
            net, net.routers[3], [(Port.SOUTH, probe)], now=0
        )
        assert net._special_arrivals == {}


class TestSealSemantics:
    def test_sealed_router_blocks_other_inputs(self):
        net, scheme = build_2x2_ring_deadlock()
        router = net.routers[0]
        router.set_io_restriction(Port.NORTH, Port.EAST, source=3, now=0)
        assert not router.injection_allowed(Port.LOCAL, Port.EAST)
        assert router.injection_allowed(Port.NORTH, Port.EAST)

    def test_stale_seal_garbage_collected(self):
        topo = mesh(2, 2)
        config = SimConfig(width=2, height=2, sb_seal_timeout=50)
        scheme = StaticBubbleScheme()
        net = Network(topo, config, scheme, None, seed=1)
        router = net.routers[0]  # not an SB router
        router.set_io_restriction(Port.NORTH, Port.EAST, source=3, now=0)
        net.run(120)
        assert not router.is_deadlock


class TestFalsePositives:
    def test_congestion_false_positive_is_harmless(self):
        """Heavy but deadlock-free congestion must not wedge the network."""
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4, sb_t_dd=5)  # hair-trigger t_DD
        traffic = UniformRandomTraffic(topo, rate=0.35, seed=7)
        scheme = StaticBubbleScheme()
        net = Network(topo, config, scheme, traffic, seed=7)
        net.run(1500)
        net.traffic = None
        from repro.sim.engine import run_to_drain

        assert run_to_drain(net, 4000) is not None
        assert net.stats.packets_ejected == net.stats.packets_injected


class TestStressRecovery:
    @pytest.mark.parametrize("seed", [3, 5, 11])
    def test_faulty_mesh_keeps_delivering_under_load(self, seed):
        """Liveness: SB networks keep making progress where unprotected
        networks wedge permanently."""
        topo = inject_link_faults(mesh(6, 6), 6, random.Random(seed))
        config = SimConfig(width=6, height=6, vcs_per_vnet=2)
        traffic = UniformRandomTraffic(topo, rate=0.25, seed=seed)
        net = Network(topo, config, StaticBubbleScheme(), traffic, seed=seed)
        ejected_marks = []
        for _ in range(8):
            net.run(500)
            ejected_marks.append(net.stats.packets_ejected)
        # No permanent wedge: substantial total progress, and still moving
        # near the end of the run (saturated networks may pause while a
        # recovery grinds through a deadlock web).
        assert ejected_marks[-1] > ejected_marks[0] + 100
        assert ejected_marks[-1] > ejected_marks[-3]

    def test_deadlock_actually_occurs_and_is_recovered(self):
        topo = inject_link_faults(mesh(6, 6), 6, random.Random(3))
        config = SimConfig(width=6, height=6, vcs_per_vnet=1)
        traffic = UniformRandomTraffic(topo, rate=0.4, seed=3)
        # First, prove the same setup deadlocks without protection.
        unprotected = Network(topo, config, MinimalUnprotected(), traffic, seed=3)
        assert deadlocks_within(unprotected, 2500)
        # Now with static bubbles: bubbles activate and packets flow.
        traffic2 = UniformRandomTraffic(topo, rate=0.4, seed=3)
        net = Network(topo, config, StaticBubbleScheme(), traffic2, seed=3)
        net.run(4000)
        assert net.stats.bubble_activations >= 1
        assert net.stats.packets_ejected > 100
