"""Tests for the HTTP campaign server, client, and serve/submit CLI.

Servers bind port 0 (ephemeral) and run their real threaded stack; the
simulations are tiny 3x3 meshes so the end-to-end paths stay fast.
"""

import json
import time

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceServer, fingerprint_for
from repro.service.spec import SimSpec, run_sim_spec
from repro.service.store import ResultStore

TINY = dict(width=3, height=3, rate=0.03, warmup=30, measure=80, seed=5)


def slow_runner(spec):
    time.sleep(0.6)
    return {"slow": True, "spec": spec}


@pytest.fixture()
def server(tmp_path):
    store = ResultStore(root=tmp_path / "store", registry=MetricsRegistry())
    with ServiceServer(port=0, store=store, workers=2, quiet=True) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


class TestEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["ok"] is True
        assert "depth" in payload

    def test_submit_then_cached_hit_identical(self, server, client):
        """Acceptance: the second identical POST is an instant cache hit
        with a payload identical to the first run's result."""
        spec = SimSpec(**TINY)
        first = client.run(spec, timeout=60)
        assert first["status"] == "done"
        assert first["cached"] is False
        second = client.submit(spec)
        assert second["status"] == "done"
        assert second["cached"] is True
        assert second["result"] == first["result"]
        assert second["fingerprint"] == fingerprint_for(spec)

    def test_result_endpoint(self, client):
        spec = SimSpec(**TINY)
        done = client.run(spec, timeout=60)
        blob = client.result(done["fingerprint"])
        assert blob == done["result"]
        assert blob["spec"]["width"] == 3

    def test_unknown_job_and_result_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.job("0" * 64)
        assert exc_info.value.status == 404
        with pytest.raises(ServiceError) as exc_info:
            client.result("f" * 64)
        assert exc_info.value.status == 404

    def test_malformed_spec_400(self, client):
        status, payload, _ = client._request(
            "POST", "/jobs", {"width": 3, "definitely_not_a_field": 1}
        )
        assert status == 400
        assert "definitely_not_a_field" in payload["error"]

    def test_invalid_scheme_400(self, client):
        status, payload, _ = client._request(
            "POST", "/jobs", {"scheme": "nope"}
        )
        assert status == 400

    def test_unknown_endpoint_404(self, client):
        status, _, _ = client._request("GET", "/nope")
        assert status == 404

    def test_metrics_exposition(self, client):
        spec = SimSpec(**TINY, pattern="bit_complement")
        client.run(spec, timeout=60)
        text = client.metrics()
        assert "# TYPE repro_service_store_put counter" in text
        assert "repro_service_queue_depth" in text

    def test_priority_field_accepted(self, client):
        status, payload, _ = client._request(
            "POST", "/jobs", {**TINY, "priority": 3}
        )
        assert status in (200, 202)


class TestBackpressure:
    def test_429_past_max_depth(self, tmp_path):
        store = ResultStore(root=tmp_path / "store", registry=MetricsRegistry())
        with ServiceServer(
            port=0, store=store, runner=slow_runner, workers=1, max_depth=1,
            quiet=True,
        ) as srv:
            client = ServiceClient(srv.url)
            first = client.submit(SimSpec(**TINY))
            assert first["status"] in ("pending", "running")
            other = SimSpec(**{**TINY, "seed": 99})
            status, payload, _ = client._request(
                "POST", "/jobs", other.to_dict()
            )
            assert status == 429
            assert payload["retry_after"] >= 1
            # The client-side policy retries 429s with backoff until the
            # queue drains.
            second = client.submit(other, max_backoff_retries=8, backoff=0.3)
            assert second["status"] in ("pending", "running", "done")
            client.wait_job(second["job_id"], timeout=60)

    def test_duplicate_posts_coalesce(self, tmp_path):
        store = ResultStore(root=tmp_path / "store", registry=MetricsRegistry())
        with ServiceServer(
            port=0, store=store, runner=slow_runner, workers=2, quiet=True
        ) as srv:
            client = ServiceClient(srv.url)
            spec = SimSpec(**TINY)
            a = client.submit(spec)
            b = client.submit(spec)
            assert a["job_id"] == b["job_id"]
            client.wait_job(a["job_id"], timeout=60)
            assert store.registry.counters["service.queue.executed"] == 1
            assert store.registry.counters["service.queue.coalesced"] >= 1


class TestCli:
    def test_submit_wait_json_roundtrip(self, server, capsys):
        argv = [
            "submit", "--url", server.url,
            "--width", "3", "--height", "3",
            "--rate", "0.03", "--warmup", "30", "--cycles", "80",
            "--seed", "11", "--wait", "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["status"] == "done"
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cached"] is True
        assert second["result"] == first["result"]

    def test_submit_table_output(self, server, capsys):
        argv = [
            "submit", "--url", server.url,
            "--width", "3", "--height", "3",
            "--rate", "0.03", "--warmup", "30", "--cycles", "80",
            "--seed", "12", "--wait",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "avg latency" in out
        assert "status" in out

    def test_submit_unreachable_server(self, capsys):
        assert main(["submit", "--url", "http://127.0.0.1:9", "--wait"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_simulate_json(self, capsys):
        argv = [
            "simulate", "--width", "3", "--height", "3",
            "--rate", "0.03", "--warmup", "30", "--cycles", "80", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["width"] == 3
        assert payload["result"]["cycles"] == 110
        assert payload["stats"]["packets_ejected"] >= 0
        # The CLI payload matches the service payload for the same spec
        # — one serializer everywhere.
        direct = run_sim_spec(payload["spec"])
        assert direct == payload

    def test_experiment_json(self, capsys):
        assert main(["experiment", "table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table1"
        assert payload["result"]["__repro__"] == "dataclass"
