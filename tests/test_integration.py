"""Cross-module integration tests.

These exercise complete stacks (topology -> routing -> simulation ->
scheme -> stats) in configurations the unit tests don't reach: larger
meshes, mixed fault types, multiple vnets, and scheme-equivalence
checks at loads where no recovery machinery should trigger.
"""

import random

import pytest

from repro.core.placement import bubble_count
from repro.protocols import make_scheme
from repro.sim.config import SimConfig
from repro.sim.engine import run_to_drain, run_with_window
from repro.sim.network import Network
from repro.topology.faults import inject_link_faults, inject_router_faults
from repro.topology.mesh import mesh
from repro.traffic.synthetic import BitComplementTraffic, UniformRandomTraffic


class TestSchemeEquivalenceAtLowLoad:
    """With no deadlocks, SB and escape-VC behave like plain minimal
    routing — their machinery must be performance-invisible."""

    def test_latency_matches_unprotected(self):
        topo = inject_link_faults(mesh(8, 8), 6, random.Random(12))
        config = SimConfig()
        results = {}
        for name in ("minimal-unprotected", "escape-vc", "static-bubble"):
            traffic = UniformRandomTraffic(topo, rate=0.02, seed=12)
            net = Network(topo, config, make_scheme(name), traffic, seed=12)
            results[name] = run_with_window(net, 300, 900).avg_latency
        base = results["minimal-unprotected"]
        assert results["static-bubble"] == pytest.approx(base, rel=0.02)
        assert results["escape-vc"] == pytest.approx(base, rel=0.02)

    def test_no_recovery_machinery_fires(self):
        topo = inject_link_faults(mesh(8, 8), 6, random.Random(12))
        config = SimConfig()
        traffic = UniformRandomTraffic(topo, rate=0.02, seed=12)
        net = Network(topo, config, make_scheme("static-bubble"), traffic, seed=12)
        net.run(1200)
        assert net.stats.bubble_activations == 0
        assert net.stats.disables_sent == 0


class TestLargerMesh:
    def test_16x16_static_bubble_setup(self):
        topo = mesh(16, 16)
        config = SimConfig(width=16, height=16)
        scheme = make_scheme("static-bubble")
        net = Network(topo, config, scheme, None, seed=1)
        assert len(scheme.states) == bubble_count(16, 16) == 89

    def test_16x16_delivery(self):
        topo = inject_link_faults(mesh(16, 16), 10, random.Random(8))
        config = SimConfig(width=16, height=16)
        traffic = UniformRandomTraffic(topo, rate=0.02, seed=8)
        net = Network(topo, config, make_scheme("static-bubble"), traffic, seed=8)
        net.run(400)
        net.traffic = None
        assert run_to_drain(net, 3000) is not None
        assert net.stats.packets_ejected == net.stats.packets_injected


class TestNonSquareMesh:
    def test_4x8_all_schemes_deliver(self):
        topo = inject_link_faults(mesh(4, 8), 3, random.Random(5))
        config = SimConfig(width=4, height=8)
        for name in ("spanning-tree", "escape-vc", "static-bubble"):
            traffic = UniformRandomTraffic(topo, rate=0.03, seed=5)
            net = Network(topo, config, make_scheme(name), traffic, seed=5)
            net.run(600)
            net.traffic = None
            assert run_to_drain(net, 3000) is not None, name
            assert net.stats.packets_ejected == net.stats.packets_injected, name


class TestMixedFaults:
    def test_links_and_routers_failed_together(self):
        topo = mesh(8, 8)
        rng = random.Random(21)
        topo = inject_link_faults(topo, 6, rng)
        topo = inject_router_faults(topo, 4, rng)
        config = SimConfig()
        traffic = UniformRandomTraffic(topo, rate=0.05, seed=21)
        net = Network(topo, config, make_scheme("static-bubble"), traffic, seed=21)
        result = run_with_window(net, 300, 900)
        assert result.packets_ejected > 50
        assert result.avg_latency > 0


class TestMultipleVnets:
    def test_vnets_are_isolated(self):
        """Packets of different vnets never share VCs."""
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4, vnets=3, vcs_per_vnet=2)
        traffic = UniformRandomTraffic(topo, rate=0.1, seed=6, vnets=3)
        net = Network(topo, config, make_scheme("static-bubble"), traffic, seed=6)
        for _ in range(80):
            net.run(5)
            for router in net.active_routers():
                for port in range(5):
                    for vc in router.input_vcs[port]:
                        if vc.packet is not None:
                            assert vc.packet.vnet == vc.vnet

    def test_three_vnet_delivery(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4, vnets=3, vcs_per_vnet=2)
        traffic = UniformRandomTraffic(topo, rate=0.06, seed=6, vnets=3)
        net = Network(topo, config, make_scheme("escape-vc"), traffic, seed=6)
        net.run(500)
        net.traffic = None
        assert run_to_drain(net, 3000) is not None


class TestBitComplementStress:
    def test_sb_beats_tree_on_bit_complement(self):
        """Fig. 8(b)'s pattern at a moderate load on a faulty mesh."""
        topo = inject_link_faults(mesh(8, 8), 8, random.Random(17))
        config = SimConfig()
        lat = {}
        for name in ("spanning-tree", "static-bubble"):
            traffic = BitComplementTraffic(topo, rate=0.05, seed=17)
            net = Network(topo, config, make_scheme(name), traffic, seed=17)
            lat[name] = run_with_window(net, 400, 1200).avg_latency
        assert lat["static-bubble"] <= lat["spanning-tree"] * 1.02


class TestDeterminism:
    def test_identical_seeds_identical_results(self):
        topo = inject_link_faults(mesh(6, 6), 5, random.Random(3))
        config = SimConfig(width=6, height=6)

        def run():
            traffic = UniformRandomTraffic(topo, rate=0.15, seed=33)
            net = Network(topo, config, make_scheme("static-bubble"), traffic, seed=33)
            net.run(800)
            s = net.stats
            return (
                s.packets_injected,
                s.packets_ejected,
                s.latency_sum,
                s.probes_sent,
                s.bubble_activations,
            )

        assert run() == run()
