"""Tests for the repro.obs tracing layer: ring buffer, exporters,
schema fidelity, transcript stitching, and the no-observer guarantee."""

from __future__ import annotations

import json

import pytest

from repro.core.fsm import CounterFsm, FsmState
from repro.obs import (
    EVENT_SCHEMA,
    Event,
    Observer,
    Tracer,
    chrome_trace_events,
    recovery_transcripts,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.events import FSM_TRANSITION, ORACLE_DEADLOCK
from repro.protocols.none import MinimalUnprotected
from repro.sim.config import SimConfig
from repro.sim.deadlock import DeadlockMonitor
from repro.sim.network import Network
from repro.sim.scenarios import build_2x2_ring_deadlock, build_fig6_walkthrough
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic

import random


def _traced_fig6(cycles=400):
    net, scheme = build_fig6_walkthrough()
    obs = Observer()
    net.attach_obs(obs)
    for _ in range(cycles):
        net.step()
    obs.finalize(net)
    return net, scheme, obs


class TestTracer:
    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit(i, "packet.inject", 0, {"pid": i})
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert [e.data["pid"] for e in tracer.events] == [6, 7, 8, 9]

    def test_event_round_trip(self):
        event = Event(7, "packet.eject", 3, {"pid": 1, "latency": 12})
        d = event.to_dict()
        assert d == {
            "cycle": 7, "kind": "packet.eject", "node": 3,
            "pid": 1, "latency": 12,
        }


class TestSchemaFidelity:
    def test_every_emitted_event_matches_schema(self):
        """Every kind is registered and carries exactly its schema keys."""
        _, _, obs = _traced_fig6()
        seen = set()
        for event in obs.events:
            assert event.kind in EVENT_SCHEMA, event
            assert set(event.data) == set(EVENT_SCHEMA[event.kind]), event
            seen.add(event.kind)
        # The walkthrough exercises the full recovery vocabulary.
        for kind in (
            "special.send", "special.deliver", "fsm.transition",
            "seal.install", "bubble.activate", "bubble.drain",
            "recovery.done", "packet.eject", "packet.transfer",
        ):
            assert kind in seen, f"{kind} never emitted"

    def test_random_traffic_events_match_schema(self):
        topo = inject_link_faults(mesh(4, 4), 3, random.Random(7))
        config = SimConfig(width=4, height=4, vcs_per_vnet=2, sb_t_dd=16)
        from repro.protocols.static_bubble import StaticBubbleScheme

        traffic = UniformRandomTraffic(topo, rate=0.4, seed=7)
        net = Network(topo, config, StaticBubbleScheme(), traffic, seed=7)
        obs = Observer(ring_capacity=200_000)
        net.attach_obs(obs)
        for _ in range(600):
            net.step()
        for event in obs.events:
            assert event.kind in EVENT_SCHEMA
            assert set(event.data) == set(EVENT_SCHEMA[event.kind]), event


class TestExporters:
    def test_jsonl_export(self, tmp_path):
        _, _, obs = _traced_fig6()
        path = tmp_path / "trace.jsonl"
        write_jsonl(obs.events, path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(obs.events)
        for line in lines:
            record = json.loads(line)
            assert {"cycle", "kind", "node"} <= set(record)

    def test_chrome_trace_export(self, tmp_path):
        _, _, obs = _traced_fig6()
        path = tmp_path / "trace.json"
        write_chrome_trace(obs.events, path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events
        phases = {e["ph"] for e in events}
        assert "M" in phases  # thread names
        assert "X" in phases  # FSM state slices
        assert "i" in phases  # instants
        for e in events:
            assert {"ph", "pid", "tid"} <= set(e)

    def test_fsm_slices_cover_recovery_states(self):
        _, _, obs = _traced_fig6()
        slices = [e for e in chrome_trace_events(obs.events) if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        assert {"S_DISABLE", "S_SB_ACTIVE"} <= names
        for e in slices:
            assert e["dur"] >= 1


class TestTranscripts:
    def test_fig6_walkthrough_yields_complete_transcript(self):
        """Acceptance: >= 1 complete probe -> disable -> activate ->
        check_probe -> enable lifecycle, stitched with cycle stamps."""
        _, _, obs = _traced_fig6()
        transcripts = obs.transcripts()
        assert len(transcripts) == 1
        t = transcripts[0]
        assert t.node == 5
        assert t.completed and not t.aborted and not t.open
        assert t.is_full_handshake()
        assert t.sent_mtypes()[0] == "PROBE"
        assert t.start_cycle < t.end_cycle
        cycles = [e.cycle for e in t.events]
        assert cycles == sorted(cycles)

    def test_transcripts_survive_jsonl_round_trip(self, tmp_path):
        _, _, obs = _traced_fig6()
        path = tmp_path / "trace.jsonl"
        write_jsonl(obs.events, path)
        events = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            events.append(
                Event(
                    record.pop("cycle"), record.pop("kind"),
                    record.pop("node"), record,
                )
            )
        transcripts = recovery_transcripts(events)
        assert len(transcripts) == 1
        assert transcripts[0].is_full_handshake()

    def test_open_transcript_reported_in_flight(self):
        net, scheme = build_fig6_walkthrough()
        obs = Observer()
        net.attach_obs(obs)
        fsm = scheme.states[5].fsm
        while fsm.state != FsmState.S_SB_ACTIVE:
            net.step()
        transcripts = obs.transcripts()
        assert len(transcripts) == 1
        assert transcripts[0].open and not transcripts[0].completed
        assert "in flight" in transcripts[0].describe()


class TestFsmTraceHook:
    def test_transition_invokes_hook_once_per_change(self):
        calls = []
        fsm = CounterFsm(0, t_dd=4)
        fsm.trace = lambda f, old, new: calls.append((old, new))
        fsm.transition(FsmState.S_DD)
        fsm.transition(FsmState.S_DD)  # no-op: same state
        fsm.transition(FsmState.S_OFF)
        assert calls == [
            (FsmState.S_OFF, FsmState.S_DD),
            (FsmState.S_DD, FsmState.S_OFF),
        ]


class TestOracleEvents:
    def test_monitor_emits_oracle_deadlock(self):
        net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
        obs = Observer()
        net.attach_obs(obs)
        monitor = DeadlockMonitor(interval=2)
        for _ in range(10):
            net.step()
            monitor.check(net, net.cycle)
        hits = [e for e in obs.events if e.kind == ORACLE_DEADLOCK]
        assert len(hits) == 1  # counted once, not per re-check
        assert hits[0].node == -1
        assert sorted(hits[0].data["pids"]) == [100, 101, 102, 103]
        assert sorted(hits[0].data["new"]) == [100, 101, 102, 103]


class TestNoObserverNeutrality:
    def test_run_identical_with_and_without_observer(self):
        """Attaching an observer must not perturb simulation results."""
        plain, _ = build_fig6_walkthrough()
        traced, _ = build_fig6_walkthrough()
        obs = Observer()
        traced.attach_obs(obs)
        for _ in range(400):
            plain.step()
            traced.step()
        assert plain.stats.summary() == traced.stats.summary()

    def test_random_traffic_identical_with_observer(self):
        def build():
            topo = inject_link_faults(mesh(4, 4), 2, random.Random(3))
            config = SimConfig(width=4, height=4, vcs_per_vnet=2)
            from repro.protocols.static_bubble import StaticBubbleScheme

            traffic = UniformRandomTraffic(topo, rate=0.2, seed=3)
            return Network(topo, config, StaticBubbleScheme(), traffic, seed=3)

        plain, traced = build(), build()
        traced.attach_obs(Observer())
        for _ in range(400):
            plain.step()
            traced.step()
        assert plain.stats.summary() == traced.stats.summary()
        assert plain.cycle == traced.cycle
