"""Unit tests for the router model (VCs, links, restrictions, bubble)."""

import pytest

from repro.core.turns import Port
from repro.sim.packet import Packet
from repro.sim.router import (
    OutputLink,
    Router,
    VC_BUBBLE,
    VC_ESCAPE,
    VC_NORMAL,
    VirtualChannel,
)


def make_packet(pid=1, src=0, dst=3, size=5, route=(Port.EAST, Port.LOCAL)):
    return Packet(pid, src, dst, 0, size, route, 0)


class TestVirtualChannel:
    def test_free_initially(self):
        vc = VirtualChannel(Port.EAST, 0, 0)
        assert vc.is_free(0)

    def test_occupied_not_free(self):
        vc = VirtualChannel(Port.EAST, 0, 0)
        vc.packet = make_packet()
        assert not vc.is_free(0)

    def test_drain_window_blocks_reuse(self):
        vc = VirtualChannel(Port.EAST, 0, 0)
        vc.free_at = 10
        assert not vc.is_free(9)
        assert vc.is_free(10)

    def test_switchable_after_ready(self):
        vc = VirtualChannel(Port.EAST, 0, 0)
        vc.packet = make_packet()
        vc.ready_at = 5
        assert not vc.has_switchable_packet(4)
        assert vc.has_switchable_packet(5)


class TestOutputLink:
    def test_free_until_busy(self):
        link = OutputLink(dest_node=1)
        assert link.is_free(0)
        link.busy_until = 5
        assert not link.is_free(4)
        assert link.is_free(5)

    def test_special_block_covers_one_cycle(self):
        link = OutputLink(dest_node=1)
        link.special_blocked_at = 3
        assert not link.is_free(3)
        assert link.is_free(4)


class TestRouterStructure:
    def test_vc_count(self):
        router = Router(0, vnets=2, vcs_per_vnet=3)
        for port in range(5):
            assert len(router.input_vcs[port]) == 6

    def test_escape_reservation_converts(self):
        router = Router(0, vnets=1, vcs_per_vnet=4)
        router.add_escape_vcs(reserve_existing=True)
        for port in range(5):
            kinds = [vc.kind for vc in router.input_vcs[port]]
            assert kinds.count(VC_ESCAPE) == 1
            assert kinds.count(VC_NORMAL) == 3

    def test_escape_append_adds(self):
        router = Router(0, vnets=1, vcs_per_vnet=4)
        router.add_escape_vcs(reserve_existing=False)
        for port in range(5):
            assert len(router.input_vcs[port]) == 5

    def test_escape_reservation_with_multiple_vnets(self):
        router = Router(0, vnets=2, vcs_per_vnet=2)
        router.add_escape_vcs(reserve_existing=True)
        for port in range(5):
            escapes = [vc for vc in router.input_vcs[port] if vc.kind == VC_ESCAPE]
            assert {vc.vnet for vc in escapes} == {0, 1}


class TestFreeVcSelection:
    def test_normal_packet_gets_normal_vc(self):
        router = Router(0, vnets=1, vcs_per_vnet=2)
        pkt = make_packet()
        vc = router.free_vc_for(Port.WEST, pkt, now=0)
        assert vc is not None and vc.kind == VC_NORMAL

    def test_escape_packet_needs_escape_vc(self):
        router = Router(0, vnets=1, vcs_per_vnet=2)
        pkt = make_packet()
        pkt.is_escape = True
        assert router.free_vc_for(Port.WEST, pkt, now=0) is None
        router.add_escape_vcs(reserve_existing=True)
        vc = router.free_vc_for(Port.WEST, pkt, now=0)
        assert vc is not None and vc.kind == VC_ESCAPE

    def test_vnet_isolation(self):
        router = Router(0, vnets=2, vcs_per_vnet=1)
        pkt0 = make_packet(pid=1)
        pkt1 = Packet(2, 0, 3, 1, 5, (Port.EAST, Port.LOCAL), 0)
        vc0 = router.free_vc_for(Port.WEST, pkt0, 0)
        vc0.packet = pkt0
        assert router.free_vc_for(Port.WEST, pkt0, 0) is None
        assert router.free_vc_for(Port.WEST, pkt1, 0) is not None

    def test_bubble_used_as_fallback_when_active(self):
        router = Router(0, vnets=1, vcs_per_vnet=1)
        router.add_static_bubble()
        pkt = make_packet(pid=1)
        router.free_vc_for(Port.WEST, pkt, 0).packet = pkt
        blocked = make_packet(pid=2)
        assert router.free_vc_for(Port.WEST, blocked, 0) is None
        router.activate_bubble(Port.WEST)
        vc = router.free_vc_for(Port.WEST, blocked, 0)
        assert vc is router.bubble

    def test_bubble_port_specific(self):
        router = Router(0, vnets=1, vcs_per_vnet=1)
        router.add_static_bubble()
        router.activate_bubble(Port.WEST)
        pkt = make_packet()
        router.free_vc_for(Port.EAST, pkt, 0).packet = pkt
        assert router.free_vc_for(Port.EAST, make_packet(pid=3), 0) is None

    def test_escape_packet_never_uses_bubble(self):
        router = Router(0, vnets=1, vcs_per_vnet=1)
        router.add_static_bubble()
        router.activate_bubble(Port.WEST)
        pkt = make_packet()
        router.free_vc_for(Port.WEST, pkt, 0).packet = pkt
        esc = make_packet(pid=2)
        esc.is_escape = True
        assert router.free_vc_for(Port.WEST, esc, 0) is None

    def test_activate_without_bubble_raises(self):
        router = Router(0, vnets=1, vcs_per_vnet=1)
        with pytest.raises(RuntimeError):
            router.activate_bubble(Port.WEST)


class TestIoRestriction:
    def test_allows_everything_by_default(self):
        router = Router(0, vnets=1, vcs_per_vnet=1)
        assert router.injection_allowed(Port.LOCAL, Port.EAST)

    def test_locked_output(self):
        router = Router(0, vnets=1, vcs_per_vnet=1)
        router.set_io_restriction(Port.SOUTH, Port.WEST, source=5, now=10)
        assert router.injection_allowed(Port.SOUTH, Port.WEST)
        assert not router.injection_allowed(Port.NORTH, Port.WEST)
        assert not router.injection_allowed(Port.LOCAL, Port.WEST)
        # other outputs unaffected
        assert router.injection_allowed(Port.NORTH, Port.EAST)
        assert router.io_set_at == 10

    def test_clear(self):
        router = Router(0, vnets=1, vcs_per_vnet=1)
        router.set_io_restriction(Port.SOUTH, Port.WEST, source=5, now=0)
        router.clear_io_restriction()
        assert router.injection_allowed(Port.NORTH, Port.WEST)
        assert router.source_id is None


class TestBufferDependencyCheck:
    def test_vc_wants_output(self):
        router = Router(0, vnets=1, vcs_per_vnet=2)
        pkt = make_packet(route=(Port.NORTH, Port.LOCAL))
        pkt.hop = 0
        vc = router.input_vcs[Port.SOUTH][0]
        vc.packet = pkt
        assert router.vc_wants_output(Port.SOUTH, Port.NORTH, now=0)
        assert not router.vc_wants_output(Port.SOUTH, Port.EAST, now=0)
        assert not router.vc_wants_output(Port.WEST, Port.NORTH, now=0)

    def test_in_flight_packet_does_not_count(self):
        router = Router(0, vnets=1, vcs_per_vnet=1)
        pkt = make_packet(route=(Port.NORTH, Port.LOCAL))
        pkt.hop = 0
        vc = router.input_vcs[Port.SOUTH][0]
        vc.packet = pkt
        vc.ready_at = 100
        assert not router.vc_wants_output(Port.SOUTH, Port.NORTH, now=0)
        assert router.vc_wants_output(Port.SOUTH, Port.NORTH, now=100)
