"""Tests for the application workload models (PARSEC/Rodinia substitutes)."""

import random

import pytest

from repro.protocols.none import MinimalUnprotected
from repro.protocols.spanning_tree import SpanningTreeAvoidance
from repro.sim.config import SimConfig
from repro.sim.engine import run_to_drain
from repro.sim.network import Network
from repro.topology.faults import default_memory_controllers, inject_link_faults
from repro.topology.mesh import mesh
from repro.traffic.workloads import (
    PARSEC_CLOSED_SPECS,
    PARSEC_SPECS,
    RODINIA_SPECS,
    ClosedLoopWorkload,
    build_workload_trace,
    parsec_closed_loop,
    parsec_trace,
    rodinia_trace,
)


class TestOpenLoopTraces:
    def test_rodinia_trace_generates_work(self):
        topo = mesh(8, 8)
        mcs = default_memory_controllers(8, 8)
        trace = rodinia_trace("bplus", topo, mcs, duration=500, seed=1)
        assert len(trace) > 0
        assert trace.total_flits() > 0

    def test_hadoop_is_heaviest(self):
        """Hadoop's collective traffic dominates the Rodinia set."""
        topo = mesh(8, 8)
        mcs = default_memory_controllers(8, 8)
        flits = {
            name: rodinia_trace(name, topo, mcs, duration=400, seed=1).total_flits()
            for name in RODINIA_SPECS
        }
        assert flits["hadoop"] == max(flits.values())

    def test_parsec_rates_are_low(self):
        """PARSEC-like traces inject well below deadlock-prone rates."""
        topo = mesh(8, 8)
        mcs = default_memory_controllers(8, 8)
        for name in PARSEC_SPECS:
            trace = parsec_trace(name, topo, mcs, duration=1000, seed=1)
            rate = trace.total_flits() / (1000 * 64)
            assert rate < 0.05

    def test_sources_within_component(self):
        topo = inject_link_faults(mesh(8, 8), 20, random.Random(5))
        mcs = default_memory_controllers(8, 8)
        from repro.topology.graph import largest_component

        component = largest_component(topo)
        trace = rodinia_trace("bfs", topo, mcs, duration=200, seed=1)
        for _, src, dst, _, _ in trace.events:
            assert src in component and dst in component

    def test_unknown_names_rejected(self):
        topo = mesh(4, 4)
        with pytest.raises(ValueError):
            rodinia_trace("doom", topo, [0])
        with pytest.raises(ValueError):
            parsec_trace("doom", topo, [0])

    def test_deterministic(self):
        topo = mesh(8, 8)
        mcs = default_memory_controllers(8, 8)
        a = rodinia_trace("kmeans", topo, mcs, duration=300, seed=9)
        b = rodinia_trace("kmeans", topo, mcs, duration=300, seed=9)
        assert a.events == b.events


class TestClosedLoop:
    def _run(self, scheme, topo, transactions=4, seed=1):
        config = SimConfig(width=topo.width, height=topo.height)
        mcs = default_memory_controllers(topo.width, topo.height)
        wl = parsec_closed_loop(
            "canneal", topo, mcs, seed=seed, transactions_per_core=transactions
        )
        net = Network(topo, config, scheme, wl, seed=seed)
        cycles = run_to_drain(net, 60000)
        return cycles, net, wl

    def test_all_transactions_complete(self):
        topo = mesh(4, 4)
        cycles, net, wl = self._run(MinimalUnprotected(), topo)
        assert cycles is not None
        assert wl.completed == wl.total
        # each transaction = request + reply
        assert net.stats.packets_ejected == 2 * wl.total

    def test_runtime_scales_with_work(self):
        topo = mesh(4, 4)
        short, _, _ = self._run(MinimalUnprotected(), topo, transactions=2)
        long, _, _ = self._run(MinimalUnprotected(), topo, transactions=8)
        assert long > short

    def test_runtime_sensitive_to_routing(self):
        """Non-minimal tree routes must show up as longer runtimes."""
        topo = inject_link_faults(mesh(6, 6), 8, random.Random(4))
        fast, _, _ = self._run(MinimalUnprotected(), topo, transactions=6)
        slow, _, _ = self._run(SpanningTreeAvoidance(), topo, transactions=6)
        assert slow >= fast

    def test_requires_connected_mc(self):
        topo = mesh(2, 2)
        topo.deactivate_link(0, 1)
        topo.deactivate_link(0, 2)
        with pytest.raises(ValueError):
            # MC list = only node 0, which is isolated from the largest
            # component.
            ClosedLoopWorkload(
                PARSEC_CLOSED_SPECS["canneal"], topo, [0], seed=1
            )
