"""Tests for topology graph analysis and fault injection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.faults import (
    default_memory_controllers,
    inject_link_faults,
    inject_router_faults,
    sample_topologies,
)
from repro.topology.graph import (
    connected_components,
    cycle_count_upper_bound,
    has_cycle,
    is_connected,
    largest_component,
    nodes_reachable_from,
    simple_cycles,
    to_networkx,
)
from repro.topology.mesh import mesh


class TestGraphAnalysis:
    def test_full_mesh_connected_and_cyclic(self):
        topo = mesh(4, 4)
        assert is_connected(topo)
        assert has_cycle(topo)

    def test_1xn_mesh_is_a_tree(self):
        topo = mesh(1, 6)
        assert is_connected(topo)
        assert not has_cycle(topo)
        assert cycle_count_upper_bound(topo) == 0

    def test_cycle_space_size_full_mesh(self):
        # (edges - nodes + components) for an n x n mesh = (n-1)^2
        topo = mesh(5, 5)
        assert cycle_count_upper_bound(topo) == 16

    def test_partition_detection(self):
        topo = mesh(2, 2)
        topo.deactivate_link(0, 1)
        topo.deactivate_link(2, 3)
        comps = connected_components(topo)
        assert len(comps) == 2
        assert not is_connected(topo)
        assert not has_cycle(topo)

    def test_largest_component(self):
        topo = mesh(3, 3)
        topo.deactivate_node(1)
        topo.deactivate_node(3)  # isolates node 0
        largest = largest_component(topo)
        assert 0 not in largest
        assert largest == {2, 4, 5, 6, 7, 8}

    def test_reachability(self):
        topo = mesh(3, 3)
        topo.deactivate_node(1)
        topo.deactivate_node(3)
        assert nodes_reachable_from(topo, 0) == {0}
        assert len(nodes_reachable_from(topo, 8)) == 6

    def test_simple_cycles_square(self):
        topo = mesh(2, 2)
        cycles = simple_cycles(topo, length_bound=4)
        assert len(cycles) == 1
        assert sorted(cycles[0]) == [0, 1, 2, 3]

    def test_to_networkx_counts(self):
        topo = mesh(4, 4)
        graph = to_networkx(topo)
        assert graph.number_of_nodes() == 16
        assert graph.number_of_edges() == 24


class TestFaultInjection:
    def test_link_fault_count(self, rng):
        topo = inject_link_faults(mesh(8, 8), 10, rng)
        assert topo.num_faulty_links() == 10

    def test_router_fault_count(self, rng):
        topo = inject_router_faults(mesh(8, 8), 7, rng)
        assert topo.num_faulty_nodes() == 7

    def test_too_many_faults_rejected(self, rng):
        with pytest.raises(ValueError):
            inject_link_faults(mesh(2, 2), 5, rng)
        with pytest.raises(ValueError):
            inject_router_faults(mesh(2, 2), 5, rng)

    def test_original_untouched(self, rng):
        base = mesh(4, 4)
        inject_link_faults(base, 5, rng)
        assert base.num_faulty_links() == 0

    def test_deterministic_given_seed(self):
        a = inject_link_faults(mesh(8, 8), 12, random.Random(99))
        b = inject_link_faults(mesh(8, 8), 12, random.Random(99))
        assert a.active_links() == b.active_links()


class TestSampling:
    def test_sample_count_and_faults(self):
        topos = list(sample_topologies(8, 8, "link", 6, 5, seed=1))
        assert len(topos) == 5
        assert all(t.num_faulty_links() == 6 for t in topos)

    def test_samples_differ(self):
        topos = list(sample_topologies(8, 8, "link", 6, 5, seed=1))
        signatures = {tuple(sorted(map(tuple, t.active_links()))) for t in topos}
        assert len(signatures) > 1

    def test_mc_requirement_respected(self):
        mcs = default_memory_controllers(8, 8)
        topos = list(
            sample_topologies(
                8, 8, "router", 10, 5, seed=2, require_memory_controllers=mcs
            )
        )
        for topo in topos:
            component = largest_component(topo)
            assert all(mc in component for mc in mcs)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            list(sample_topologies(8, 8, "blah", 1, 1, seed=0))

    def test_default_memory_controllers_are_corners(self):
        mcs = default_memory_controllers(8, 8)
        assert sorted(mcs) == [0, 7, 56, 63]

    def test_default_memory_controllers_on_healthy_topo_stay_corners(self):
        mcs = default_memory_controllers(8, 8, mesh(8, 8))
        assert sorted(mcs) == [0, 7, 56, 63]

    def test_default_memory_controllers_relocate_off_dead_corners(self):
        # The bug: MCs used to be corner ids of a fresh healthy mesh,
        # so a corner-faulted topology got an MC on a dead router.
        topo = mesh(8, 8)
        topo.deactivate_node(0)  # corner (0,0)
        topo.deactivate_node(63)  # corner (7,7)
        mcs = default_memory_controllers(8, 8, topo)
        assert len(set(mcs)) == 4
        assert all(topo.node_is_active(n) for n in mcs)
        # (0,0) relocates to the nearest active node, ties to the lower
        # id: (1,0) = 1 beats (0,1) = 8 at Manhattan distance 1.
        assert mcs[0] == 1
        # Healthy corners stay put.
        assert mcs[1] == 7 and mcs[2] == 56
        # (7,7) -> (7,6) = 55 beats (6,7) = 62.
        assert mcs[3] == 55

    def test_default_memory_controllers_never_collide(self):
        # Dead corner whose nearest neighbors are other corners' homes.
        topo = mesh(3, 3)
        topo.deactivate_node(8)  # corner (2,2)
        mcs = default_memory_controllers(3, 3, topo)
        assert len(set(mcs)) == 4
        assert all(topo.node_is_active(n) for n in mcs)
        assert mcs[:3] == [0, 2, 6]
        assert mcs[3] == 5  # (2,1) beats (1,2) = 7 on id tie-break

    def test_default_memory_controllers_require_enough_routers(self):
        topo = mesh(2, 2)
        topo.deactivate_node(3)
        with pytest.raises(ValueError):
            default_memory_controllers(2, 2, topo)


@given(
    seed=st.integers(min_value=0, max_value=1_000_000),
    faults=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=30, deadline=None)
def test_fault_injection_never_creates_links(seed, faults):
    base = mesh(6, 6)
    topo = inject_link_faults(base, faults, random.Random(seed))
    base_links = set(map(frozenset, base.active_links()))
    for link in topo.active_links():
        assert frozenset(link) in base_links
