"""Tests for the escape-VC recovery baseline."""

import random

import pytest

from repro.core.turns import Port
from repro.protocols.escape_vc import EscapeVcRecovery
from repro.protocols.none import MinimalUnprotected
from repro.sim.config import SimConfig
from repro.sim.deadlock import find_wait_cycle
from repro.sim.engine import deadlocks_within, run_to_drain
from repro.sim.network import Network
from repro.sim.router import VC_ESCAPE
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic

from tests.conftest import place_packet


class TestSetup:
    def test_escape_vcs_reserved(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4, vcs_per_vnet=4)
        net = Network(topo, config, EscapeVcRecovery(), None, seed=1)
        for router in net.active_routers():
            for port in range(5):
                kinds = [vc.kind for vc in router.input_vcs[port]]
                assert kinds.count(VC_ESCAPE) == 1

    def test_needs_two_vcs(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4, vcs_per_vnet=1)
        with pytest.raises(ValueError):
            Network(topo, config, EscapeVcRecovery(), None, seed=1)

    def test_append_mode_adds_vcs(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4, vcs_per_vnet=1)
        net = Network(
            topo, config, EscapeVcRecovery(reserve_existing=False), None, seed=1
        )
        router = net.active_routers()[0]
        assert len(router.input_vcs[0]) == 2

    def test_escape_tables_cover_components(self):
        topo = inject_link_faults(mesh(4, 4), 3, random.Random(1))
        config = SimConfig(width=4, height=4)
        scheme = EscapeVcRecovery()
        Network(topo, config, scheme, None, seed=1)
        from repro.topology.graph import connected_components

        for component in connected_components(topo):
            for node in component:
                for dst in component:
                    assert dst in scheme.escape_tables[node]


class TestDiversion:
    def test_deadlocked_ring_diverts_and_drains(self):
        """A ring deadlock in the normal VCs escapes via the tree layer."""
        topo = mesh(2, 2)
        config = SimConfig(width=2, height=2, vcs_per_vnet=2, escape_t_detect=10)
        scheme = EscapeVcRecovery()
        net = Network(topo, config, scheme, None, seed=1)
        E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
        # vcs_per_vnet=2 with reservation leaves exactly 1 normal VC per
        # port: the classic 4-packet ring deadlocks the normal layer.
        place_packet(net, 1, W, 100, 0, 3, (E, N, L), vc_index=0)
        place_packet(net, 3, S, 101, 1, 2, (N, W, L), vc_index=0)
        place_packet(net, 2, E, 102, 3, 0, (W, S, L), vc_index=0)
        place_packet(net, 0, N, 103, 2, 1, (S, E, L), vc_index=0)
        assert find_wait_cycle(net, 0) is not None
        net.run(300)
        assert net.stats.escape_diversions >= 1
        assert net.stats.packets_ejected == 4

    def test_escape_packets_reach_destination(self):
        """Diverted packets still arrive (via the tree)."""
        topo = inject_link_faults(mesh(4, 4), 4, random.Random(9))
        config = SimConfig(width=4, height=4, escape_t_detect=8)
        traffic = UniformRandomTraffic(topo, rate=0.25, seed=9)
        net = Network(topo, config, EscapeVcRecovery(), traffic, seed=9)
        net.run(1200)
        net.traffic = None
        assert run_to_drain(net, 5000) is not None
        assert net.stats.packets_ejected == net.stats.packets_injected
        assert net.stats.escape_diversions > 0


class TestDeadlockFreedom:
    @pytest.mark.parametrize("seed", [3, 7])
    def test_sustained_progress_under_stress(self, seed):
        topo = inject_link_faults(mesh(6, 6), 6, random.Random(seed))
        config = SimConfig(width=6, height=6, vcs_per_vnet=2)
        traffic = UniformRandomTraffic(topo, rate=0.4, seed=seed)
        net = Network(topo, config, EscapeVcRecovery(), traffic, seed=seed)
        marks = []
        for _ in range(6):
            net.run(400)
            marks.append(net.stats.packets_ejected)
        assert marks[-1] > marks[0] + 100
        assert marks[-1] > marks[-2]

    def test_extra_buffer_accounting(self):
        config = SimConfig()
        scheme = EscapeVcRecovery()
        assert scheme.extra_vcs_per_router(0, config) == 5 * config.vnets
