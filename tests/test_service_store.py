"""Tests for the content-addressed result store (repro.service.store)."""

import json
import os
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.spec import SimSpec
from repro.service.store import (
    STORE_ENV_VAR,
    ResultStore,
    default_store_root,
    spec_fingerprint,
)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(root=tmp_path / "store", registry=MetricsRegistry())


class TestFingerprint:
    def test_pure_function_of_spec(self):
        a = SimSpec(width=4, height=4, seed=3)
        b = SimSpec(width=4, height=4, seed=3)
        assert spec_fingerprint(a.to_dict()) == spec_fingerprint(b.to_dict())

    def test_every_field_matters(self):
        base = SimSpec()
        for change in (
            {"width": 6},
            {"scheme": "escape-vc"},
            {"rate": 0.06},
            {"seed": 2},
            {"sb_t_dd": 35},
            {"monitor": True},
        ):
            spec = SimSpec(**{**base.to_dict(), **change})
            assert spec_fingerprint(spec.to_dict()) != spec_fingerprint(
                base.to_dict()
            ), change

    def test_hex_shape(self):
        fp = spec_fingerprint(SimSpec().to_dict())
        assert len(fp) == 64
        assert set(fp) <= set("0123456789abcdef")

    def test_mesh_specs_omit_topology_field(self):
        # Mesh specs predate the ``topology`` field; it must stay out of
        # their dict form so every stored fingerprint remains valid.
        base = SimSpec().to_dict()
        assert "topology" not in base
        spec = SimSpec(topology="circulant:11,2,5")
        assert spec.to_dict()["topology"] == "circulant:11,2,5"
        assert spec_fingerprint(spec.to_dict()) != spec_fingerprint(base)
        # And the dict form round-trips through from_dict validation.
        clone = SimSpec.from_dict(spec.to_dict())
        assert clone.topology == "circulant:11,2,5"
        assert clone.build_topology().describe() == "circulant(n=11,s1=2,s2=5)"

    def test_bad_topology_spec_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SimSpec.from_dict({**SimSpec().to_dict(), "topology": "hypercube:4"})


class TestStoreBasics:
    def test_miss_then_hit(self, store):
        fp = spec_fingerprint({"x": 1})
        assert store.get(fp) is None
        store.put(fp, {"value": 42})
        assert store.get(fp) == {"value": 42}
        assert store.registry.counters["service.store.miss"] == 1
        assert store.registry.counters["service.store.hit"] == 1
        assert store.registry.counters["service.store.put"] == 1

    def test_sharded_layout(self, store):
        fp = spec_fingerprint({"x": 2})
        path = store.put(fp, {"v": 1})
        assert path.parent.name == fp[:2]
        assert path.name == f"{fp}.json"

    def test_len_and_iteration(self, store):
        fps = [spec_fingerprint({"i": i}) for i in range(5)]
        for fp in fps:
            store.put(fp, {"fp": fp})
        assert len(store) == 5
        assert sorted(store.iter_fingerprints()) == sorted(fps)

    def test_rejects_non_fingerprint_keys(self, store):
        with pytest.raises(ValueError):
            store.get("../../etc/passwd")
        with pytest.raises(ValueError):
            store.put("short", {})

    def test_corrupt_blob_is_dropped_as_miss(self, store):
        fp = spec_fingerprint({"x": 3})
        path = store.put(fp, {"v": 1})
        path.write_text("{torn")
        assert store.get(fp) is None
        assert not path.exists()
        assert store.registry.counters["service.store.corrupt"] == 1

    def test_atomic_write_no_temp_leftovers(self, store):
        fp = spec_fingerprint({"x": 4})
        store.put(fp, {"v": 1})
        shard = store.path_for(fp).parent
        assert [p.name for p in shard.iterdir()] == [f"{fp}.json"]

    def test_overwrite_idempotent(self, store):
        fp = spec_fingerprint({"x": 5})
        store.put(fp, {"v": 1})
        store.put(fp, {"v": 1})
        assert store.get(fp) == {"v": 1}
        assert len(store) == 1

    def test_clear(self, store):
        store.put(spec_fingerprint({"x": 6}), {"v": 1})
        assert store.clear() == 1
        assert len(store) == 0


class TestQueryApi:
    def test_iter_entries_round_trips_payloads(self, store):
        blobs = {spec_fingerprint({"i": i}): {"value": i} for i in range(4)}
        for fp, payload in blobs.items():
            store.put(fp, payload)
        assert dict(store.iter_entries()) == blobs

    def test_iter_entries_skips_corrupt_blob(self, store):
        good = spec_fingerprint({"i": "good"})
        bad = spec_fingerprint({"i": "bad"})
        store.put(good, {"v": 1})
        store.put(bad, {"v": 2})
        store.path_for(bad).write_text("{torn")
        assert dict(store.iter_entries()) == {good: {"v": 1}}
        assert store.registry.counters["service.store.corrupt"] == 1

    def test_iter_entries_does_not_touch_cache_metrics(self, store):
        store.put(spec_fingerprint({"i": 0}), {"v": 0})
        before = dict(store.registry.counters)
        list(store.iter_entries())
        after = dict(store.registry.counters)
        assert before.get("service.store.hit", 0) == after.get("service.store.hit", 0)
        assert before.get("service.store.miss", 0) == after.get("service.store.miss", 0)

    def test_query_filters_by_predicate(self, store):
        for i in range(6):
            store.put(spec_fingerprint({"i": i}), {"value": i})
        even = dict(store.query(lambda p: p["value"] % 2 == 0))
        assert sorted(p["value"] for p in even.values()) == [0, 2, 4]

    def test_query_raising_predicate_skips_entry(self, store):
        store.put(spec_fingerprint({"i": "shaped"}), {"value": 1})
        store.put(spec_fingerprint({"i": "manifest"}), {"cells": {}})
        found = dict(store.query(lambda p: p["value"] > 0))  # KeyError on manifest
        assert [p.get("value") for p in found.values()] == [1]


class TestEnvironment:
    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "custom"))
        assert default_store_root() == tmp_path / "custom"
        store = ResultStore(registry=MetricsRegistry())
        assert store.root == tmp_path / "custom"

    def test_max_bytes_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "1234")
        store = ResultStore(root=tmp_path, registry=MetricsRegistry())
        assert store.max_bytes == 1234


class TestLruEviction:
    def test_cap_evicts_least_recently_used(self, tmp_path):
        registry = MetricsRegistry()
        # Each blob serializes to ~209 bytes; the cap fits two, not three.
        store = ResultStore(root=tmp_path, max_bytes=450, registry=registry)
        blob = {"pad": "x" * 200}
        old = spec_fingerprint({"i": "old"})
        hot = spec_fingerprint({"i": "hot"})
        store.put(old, blob)
        store.put(hot, blob)
        # Make `old` stale and `hot` fresh via explicit mtimes (touch on
        # get also bumps mtime, but clock granularity is not test-safe).
        now = time.time()
        os.utime(store.path_for(old), (now - 100, now - 100))
        os.utime(store.path_for(hot), (now, now))
        store.put(spec_fingerprint({"i": "new"}), blob)
        assert not store.contains(old)
        assert registry.counters["service.store.evict"] >= 1

    def test_get_refreshes_recency(self, tmp_path):
        store = ResultStore(root=tmp_path, max_bytes=10**9, registry=MetricsRegistry())
        fp = spec_fingerprint({"i": "touched"})
        store.put(fp, {"v": 1})
        past = time.time() - 1000
        os.utime(store.path_for(fp), (past, past))
        store.get(fp)
        assert store.path_for(fp).stat().st_mtime > past + 500

    def test_under_cap_keeps_everything(self, tmp_path):
        store = ResultStore(root=tmp_path, max_bytes=10**9, registry=MetricsRegistry())
        for i in range(4):
            store.put(spec_fingerprint({"i": i}), {"v": i})
        assert len(store) == 4
