"""Section IV-B corner cases ("The Devil is in the Details"), one by one.

Each question the paper answers gets a direct test against the message
handlers and the FSM, using hand-constructed router states.
"""

import pytest

from repro.core.fsm import FsmState
from repro.core.messages import MsgType, make_path_message, make_probe
from repro.core.turns import Port, Turn
from repro.protocols.static_bubble import StaticBubbleScheme
from repro.sim.config import SimConfig
from repro.sim.network import Network
from repro.topology.mesh import mesh

from tests.conftest import build_2x2_ring_deadlock, place_packet

E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL


def make_3x3_sb_net(placement=None, vcs=1, t_dd=5):
    topo = mesh(3, 3)
    config = SimConfig(width=3, height=3, vcs_per_vnet=vcs, sb_t_dd=t_dd)
    scheme = StaticBubbleScheme(placement_override=placement)
    net = Network(topo, config, scheme, None, seed=1)
    return net, scheme


class TestTwoProbesSameCycle:
    """'What if a node receives two probes in the same cycle?
    Send the one with the higher node-id and drop the other.'"""

    def test_higher_sender_wins_output_collision(self):
        net, scheme = make_3x3_sb_net(placement=set())
        # One packet at the center's W port wanting E: both probes fork E.
        place_packet(net, 4, W, 1, 3, 5, (E, E, L))
        lo = make_probe(2, E)   # travelling E, enters at W
        hi = make_probe(7, E)
        scheme.process_specials(net, net.routers[4], [(W, lo), (W, hi)], now=0)
        arrivals = net._special_arrivals.get(2, [])
        assert len(arrivals) == 1
        assert arrivals[0][2].sender == 7


class TestEnableDisableTie:
    """'If both an enable and disable are received for the same output
    port, then if the is_deadlock bit is set, the enable is sent and the
    disable dropped, else the opposite.'  This is the output-mux (Msg_Sel)
    rule, so it is tested against the arbitration unit directly."""

    def _arbitrate(self, sealed: bool):
        net, scheme = make_3x3_sb_net(placement=set())
        router = net.routers[4]
        if sealed:
            router.set_io_restriction(W, E, source=77, now=0)
        disable = make_path_message(MsgType.DISABLE, 30, (Turn.STRAIGHT,), E)
        enable = make_path_message(MsgType.ENABLE, 77, (Turn.RIGHT,), E)
        winner = scheme._arbitrate_output(router, [disable, enable])
        return winner.mtype

    def test_enable_wins_when_sealed(self):
        assert self._arbitrate(sealed=True) == MsgType.ENABLE

    def test_disable_wins_when_not_sealed(self):
        assert self._arbitrate(sealed=False) == MsgType.DISABLE

    def test_check_probe_beats_both(self):
        net, scheme = make_3x3_sb_net(placement=set())
        router = net.routers[4]
        disable = make_path_message(MsgType.DISABLE, 30, (Turn.STRAIGHT,), E)
        cp = make_path_message(MsgType.CHECK_PROBE, 5, (Turn.STRAIGHT,), E)
        probe = make_probe(99, E)
        winner = scheme._arbitrate_output(router, [probe, disable, cp])
        assert winner.mtype == MsgType.CHECK_PROBE


class TestEnableFromDifferentNode:
    """'What if a node receives an enable from a node that is different
    from the node that sent it the disable? ... the enable is not
    processed and is simply sent out of the port calculated from the
    turn, not dropped.'"""

    def test_mismatched_enable_forwarded_unprocessed(self):
        net, scheme = make_3x3_sb_net(placement=set())
        router = net.routers[4]
        router.set_io_restriction(W, E, source=77, now=0)
        enable = make_path_message(MsgType.ENABLE, 30, (Turn.STRAIGHT,), E)
        scheme.process_specials(net, router, [(W, enable)], now=0)
        # Seal untouched (source mismatch)...
        assert router.is_deadlock
        assert router.source_id == 77
        # ...but the enable went on its way.
        arrivals = net._special_arrivals.get(2, [])
        assert len(arrivals) == 1
        assert arrivals[0][2].mtype == MsgType.ENABLE

    def test_matching_enable_clears_seal(self):
        net, scheme = make_3x3_sb_net(placement=set())
        router = net.routers[4]
        router.set_io_restriction(W, E, source=77, now=0)
        enable = make_path_message(MsgType.ENABLE, 77, (Turn.STRAIGHT,), E)
        scheme.process_specials(net, router, [(W, enable)], now=0)
        assert not router.is_deadlock
        assert len(net._special_arrivals.get(2, [])) == 1


class TestSecondDisable:
    """Already-sealed routers cannot install a second restriction; per our
    documented deviation the disable is forwarded unsealed rather than
    dropped (the paper drops it), so the second chain still recovers."""

    def test_second_disable_forwarded_without_resealing(self):
        net, scheme = make_3x3_sb_net(placement=set())
        router = net.routers[4]
        place_packet(net, 4, W, 1, 3, 5, (E, E, L))
        router.set_io_restriction(S, N, source=77, now=0)
        disable = make_path_message(MsgType.DISABLE, 30, (Turn.STRAIGHT,), E)
        scheme.process_specials(net, router, [(W, disable)], now=0)
        # Original seal intact:
        assert router.source_id == 77
        assert router.io_in_port == S
        # Disable forwarded:
        arrivals = net._special_arrivals.get(2, [])
        assert len(arrivals) == 1

    def test_disable_dropped_when_dependence_gone(self):
        """'If any of the intermediate nodes no longer have the same
        buffer dependence, the disable is dropped.'"""
        net, scheme = make_3x3_sb_net(placement=set())
        router = net.routers[4]
        # No packet at the W port wants E -> dependence check fails.
        disable = make_path_message(MsgType.DISABLE, 30, (Turn.STRAIGHT,), E)
        scheme.process_specials(net, router, [(W, disable)], now=0)
        assert net._special_arrivals == {}
        assert not router.is_deadlock


class TestForeignDisableAtSbNode:
    """'Which state does the FSM of a static bubble node go to, if it
    receives a disable from a higher-id static bubble node? S_OFF.'"""

    def test_fsm_parks_and_seal_installs(self):
        net, scheme = make_3x3_sb_net(placement={4})
        router = net.routers[4]
        place_packet(net, 4, W, 1, 3, 5, (E, E, L))
        scheme.states[4].fsm.on_first_flit()
        assert scheme.states[4].fsm.state == FsmState.S_DD
        disable = make_path_message(MsgType.DISABLE, 99, (Turn.STRAIGHT,), E)
        scheme.process_specials(net, router, [(W, disable)], now=0)
        assert scheme.states[4].fsm.state == FsmState.S_OFF
        assert router.source_id == 99

    def test_fsm_resumes_on_matching_enable(self):
        net, scheme = make_3x3_sb_net(placement={4})
        router = net.routers[4]
        place_packet(net, 4, W, 1, 3, 5, (E, E, L))
        scheme.states[4].fsm.on_first_flit()
        disable = make_path_message(MsgType.DISABLE, 99, (Turn.STRAIGHT,), E)
        scheme.process_specials(net, router, [(W, disable)], now=0)
        enable = make_path_message(MsgType.ENABLE, 99, (Turn.STRAIGHT,), E)
        scheme.process_specials(net, router, [(W, enable)], now=2)
        assert not router.is_deadlock
        assert scheme.states[4].fsm.state == FsmState.S_DD


class TestProbeAfterDisableSent:
    """'What happens if a static bubble node sends a probe, followed by a
    disable, and then receives a copy of its probe back? ... the second
    probe will be dropped.'"""

    def test_late_probe_copy_dropped_during_recovery(self):
        net, scheme = build_2x2_ring_deadlock()
        fsm = scheme.states[3].fsm
        # Drive to S_DISABLE via a synthetic probe return.
        fsm.on_first_flit()
        for _ in range(20):
            fsm.tick()
        fsm.on_probe_returned((Turn.LEFT,) * 3, S, N)
        assert fsm.state == FsmState.S_DISABLE
        # A second copy of the probe arrives: must not disturb recovery.
        copy = make_probe(3, N)
        copy = copy.with_turn_appended(Turn.LEFT, W)
        scheme.process_specials(net, net.routers[3], [(S, copy)], now=0)
        assert fsm.state == FsmState.S_DISABLE
        assert fsm.turn_buffer == (Turn.LEFT,) * 3


class TestCheckProbeRules:
    def test_check_probe_dropped_when_chain_gone(self):
        """Fig. 6(c): the check_probe dies where the dependence ended."""
        net, scheme = make_3x3_sb_net(placement=set())
        router = net.routers[4]
        router.set_io_restriction(W, E, source=30, now=0)
        # No packet at W wants E anymore:
        cp = make_path_message(MsgType.CHECK_PROBE, 30, (Turn.STRAIGHT,), E)
        scheme.process_specials(net, router, [(W, cp)], now=0)
        assert net._special_arrivals == {}

    def test_check_probe_forwarded_while_chain_alive(self):
        net, scheme = make_3x3_sb_net(placement=set())
        router = net.routers[4]
        place_packet(net, 4, W, 1, 3, 5, (E, E, L))
        router.set_io_restriction(W, E, source=30, now=0)
        cp = make_path_message(MsgType.CHECK_PROBE, 30, (Turn.STRAIGHT,), E)
        scheme.process_specials(net, router, [(W, cp)], now=0)
        assert len(net._special_arrivals.get(2, [])) == 1


class TestTwoCyclesOneBubble:
    """'What if there are deadlocks in two cycles that are both sharing
    only one static bubble? The static bubble will successfully resolve
    the deadlocks one after the other.'"""

    def test_double_ring_serial_recovery(self):
        # 3x2 mesh: two unit squares sharing the middle column.  Node 4
        # = (1,1) is the only SB router and sits on both rings.
        topo = mesh(3, 2)
        config = SimConfig(width=3, height=2, vcs_per_vnet=1, sb_t_dd=5)
        scheme = StaticBubbleScheme()
        net = Network(topo, config, scheme, None, seed=1)
        assert set(scheme.states) == {4}
        # Left ring (nodes 0,1,4,3) clockwise.
        place_packet(net, 1, W, 201, 0, 4, (E, N, L))
        place_packet(net, 4, S, 202, 1, 3, (N, W, L))
        place_packet(net, 3, E, 203, 4, 0, (W, S, L))
        place_packet(net, 0, N, 204, 3, 1, (S, E, L))
        # Right ring (nodes 1,2,5,4) clockwise.
        place_packet(net, 2, W, 205, 1, 5, (E, N, L))
        place_packet(net, 5, S, 206, 2, 4, (N, W, L))
        place_packet(net, 4, E, 207, 5, 1, (W, S, L))
        place_packet(net, 1, N, 208, 4, 2, (S, E, L))
        for _ in range(800):
            net.step()
            if net.stats.packets_ejected == 8:
                break
        assert net.stats.packets_ejected == 8, "both rings must drain"
        assert net.stats.bubble_activations >= 2


class TestInfiniteProbeLoop:
    """'Can a probe loop around infinitely due to buffer dependency? No —
    after the turn capacity of the probe is exhausted, it is dropped.'"""

    def test_capacity_bound_enforced_in_flight(self):
        net, scheme = make_3x3_sb_net(placement=set())
        place_packet(net, 4, W, 1, 3, 5, (E, E, L))
        probe = make_probe(8, E)
        for _ in range(59):
            probe = probe.with_turn_appended(Turn.STRAIGHT, E)
        scheme.process_specials(net, net.routers[4], [(W, probe)], now=0)
        assert net._special_arrivals == {}
