"""Unit tests for the 6-state counter FSM (Fig. 5)."""

import pytest

from repro.core.fsm import CounterFsm, FsmAction, FsmState, recovery_threshold
from repro.core.turns import Port, Turn


def make_fsm(t_dd=5, **kwargs):
    return CounterFsm(node=9, t_dd=t_dd, **kwargs)


def tick_until_action(fsm, limit=1000):
    for _ in range(limit):
        action = fsm.tick()
        if action != FsmAction.NONE:
            return action
    raise AssertionError("no action within limit")


class TestDetection:
    def test_starts_off(self):
        fsm = make_fsm()
        assert fsm.state == FsmState.S_OFF
        assert fsm.tick() == FsmAction.NONE

    def test_first_flit_starts_counting(self):
        fsm = make_fsm()
        fsm.on_first_flit()
        assert fsm.state == FsmState.S_DD
        assert fsm.threshold == 5

    def test_timeout_sends_probe(self):
        fsm = make_fsm(t_dd=3)
        fsm.on_first_flit()
        assert tick_until_action(fsm) == FsmAction.SEND_PROBE
        assert fsm.state == FsmState.S_DD
        assert fsm.probes_sent == 1

    def test_probe_resent_on_repeat_timeout(self):
        fsm = make_fsm(t_dd=3)
        fsm.on_first_flit()
        tick_until_action(fsm)
        assert tick_until_action(fsm) == FsmAction.SEND_PROBE
        assert fsm.probes_sent == 2

    def test_progress_resets_counter(self):
        fsm = make_fsm(t_dd=5)
        fsm.on_first_flit()
        fsm.tick()
        fsm.tick()
        fsm.on_watched_vc_progress(True)
        assert fsm.count == 0
        assert fsm.state == FsmState.S_DD

    def test_idle_switches_off(self):
        fsm = make_fsm()
        fsm.on_first_flit()
        fsm.on_watched_vc_progress(False)
        assert fsm.state == FsmState.S_OFF


class TestRecoverySequence:
    def _to_disable(self, fsm):
        fsm.on_first_flit()
        tick_until_action(fsm)  # SEND_PROBE
        action = fsm.on_probe_returned(
            (Turn.LEFT, Turn.LEFT, Turn.LEFT), Port.SOUTH, Port.NORTH
        )
        assert action == FsmAction.SEND_DISABLE
        return fsm

    def test_probe_return_latches_path(self):
        fsm = self._to_disable(make_fsm())
        assert fsm.state == FsmState.S_DISABLE
        assert fsm.turn_buffer == (Turn.LEFT, Turn.LEFT, Turn.LEFT)
        assert fsm.probe_in_port == Port.SOUTH
        assert fsm.probe_out_port == Port.NORTH
        assert fsm.threshold == recovery_threshold(3)

    def test_probe_return_ignored_outside_sdd(self):
        fsm = self._to_disable(make_fsm())
        assert fsm.on_probe_returned((), Port.SOUTH, Port.NORTH) == FsmAction.NONE

    def test_disable_return_activates_bubble(self):
        fsm = self._to_disable(make_fsm())
        assert fsm.on_disable_returned() == FsmAction.ACTIVATE_BUBBLE
        assert fsm.state == FsmState.S_SB_ACTIVE
        assert fsm.tick() == FsmAction.NONE  # counter off

    def test_reclaim_sends_check_probe(self):
        fsm = self._to_disable(make_fsm())
        fsm.on_disable_returned()
        assert fsm.on_bubble_reclaimed() == FsmAction.SEND_CHECK_PROBE
        assert fsm.state == FsmState.S_CHECK_PROBE

    def test_check_probe_return_reactivates(self):
        fsm = self._to_disable(make_fsm())
        fsm.on_disable_returned()
        fsm.on_bubble_reclaimed()
        assert fsm.on_check_probe_returned() == FsmAction.ACTIVATE_BUBBLE
        assert fsm.state == FsmState.S_SB_ACTIVE

    def test_check_probe_timeout_sends_enable(self):
        fsm = self._to_disable(make_fsm())
        fsm.on_disable_returned()
        fsm.on_bubble_reclaimed()
        assert tick_until_action(fsm) == FsmAction.SEND_ENABLE
        assert fsm.state == FsmState.S_ENABLE

    def test_enable_return_completes_recovery(self):
        fsm = self._to_disable(make_fsm())
        fsm.on_disable_returned()
        fsm.on_bubble_reclaimed()
        tick_until_action(fsm)  # -> S_ENABLE
        assert fsm.on_enable_returned(True) == FsmAction.RECOVERY_DONE
        assert fsm.state == FsmState.S_DD
        assert fsm.turn_buffer == ()
        assert fsm.recoveries_completed == 1

    def test_enable_return_to_off_when_idle(self):
        fsm = self._to_disable(make_fsm())
        fsm.on_disable_returned()
        fsm.on_bubble_reclaimed()
        tick_until_action(fsm)
        fsm.on_enable_returned(False)
        assert fsm.state == FsmState.S_OFF


class TestTimeouts:
    def test_disable_timeout_falls_to_enable(self):
        fsm = make_fsm()
        fsm.on_first_flit()
        tick_until_action(fsm)
        fsm.on_probe_returned((Turn.STRAIGHT,), Port.SOUTH, Port.NORTH)
        assert tick_until_action(fsm) == FsmAction.SEND_ENABLE
        assert fsm.state == FsmState.S_ENABLE

    def test_enable_retransmits_then_aborts(self):
        fsm = make_fsm(max_enable_retries=3)
        fsm.on_first_flit()
        tick_until_action(fsm)
        fsm.on_probe_returned((Turn.STRAIGHT,), Port.SOUTH, Port.NORTH)
        tick_until_action(fsm)  # disable timeout -> SEND_ENABLE
        for _ in range(3):
            assert tick_until_action(fsm) == FsmAction.SEND_ENABLE
        assert tick_until_action(fsm) == FsmAction.ABORT_RECOVERY
        fsm.abort_recovery(False)
        assert fsm.state == FsmState.S_OFF
        assert fsm.recoveries_aborted == 1


class TestForeignEvents:
    def test_foreign_disable_parks_fsm(self):
        fsm = make_fsm()
        fsm.on_first_flit()
        fsm.on_foreign_disable()
        assert fsm.state == FsmState.S_OFF

    def test_foreign_enable_resumes(self):
        fsm = make_fsm()
        fsm.on_first_flit()
        fsm.on_foreign_disable()
        fsm.on_foreign_enable(True)
        assert fsm.state == FsmState.S_DD

    def test_foreign_enable_idle_stays_off(self):
        fsm = make_fsm()
        fsm.on_foreign_enable(False)
        assert fsm.state == FsmState.S_OFF

    def test_foreign_disable_does_not_touch_recovery(self):
        fsm = make_fsm()
        fsm.on_first_flit()
        tick_until_action(fsm)
        fsm.on_probe_returned((Turn.STRAIGHT,), Port.SOUTH, Port.NORTH)
        fsm.on_foreign_disable()
        assert fsm.state == FsmState.S_DISABLE


class TestRecoveryThreshold:
    def test_round_trip_bound(self):
        """t_DR covers a loop of path_length + 1 hops at 2 cycles/hop."""
        for length in (1, 5, 20, 58):
            assert recovery_threshold(length) >= 2 * (length + 1)

    def test_monotone(self):
        values = [recovery_threshold(n) for n in range(10)]
        assert values == sorted(values)


def test_in_recovery_states():
    fsm = make_fsm()
    assert not fsm.in_recovery()
    fsm.on_first_flit()
    assert not fsm.in_recovery()
    fsm.tick()
    for _ in range(10):
        fsm.tick()
    fsm.on_probe_returned((Turn.STRAIGHT,), Port.SOUTH, Port.NORTH)
    assert fsm.in_recovery()
