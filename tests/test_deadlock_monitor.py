"""Tests for the ground-truth wait-for-graph deadlock detector."""

import random

from repro.protocols.none import MinimalUnprotected
from repro.sim.config import SimConfig
from repro.sim.deadlock import DeadlockMonitor, find_wait_cycle
from repro.sim.engine import deadlocks_within
from repro.sim.network import Network
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic

from tests.conftest import build_2x2_ring_deadlock


class TestFindWaitCycle:
    def test_empty_network_has_no_cycle(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4)
        net = Network(topo, config, MinimalUnprotected(), None, seed=1)
        assert find_wait_cycle(net, 0) is None

    def test_constructed_ring_is_detected(self):
        net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
        cycle = find_wait_cycle(net, 0)
        assert cycle is not None
        assert sorted(cycle) == [100, 101, 102, 103]

    def test_partial_ring_is_not_a_deadlock(self):
        """Three of the four packets: the chain has a free VC to drain into."""
        from repro.core.turns import Port
        from tests.conftest import place_packet

        E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
        topo = mesh(2, 2)
        config = SimConfig(width=2, height=2, vcs_per_vnet=1)
        net = Network(topo, config, MinimalUnprotected(), None, seed=1)
        place_packet(net, 1, W, 100, 0, 3, (E, N, L))
        place_packet(net, 3, S, 101, 1, 2, (N, W, L))
        place_packet(net, 2, E, 102, 3, 0, (W, S, L))
        assert find_wait_cycle(net, 0) is None

    def test_ejection_wait_is_not_deadlock(self):
        """A packet waiting on a busy ejection link is making progress."""
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        from repro.traffic.trace import TraceTraffic

        trace = TraceTraffic([(0, 0, 1, 0, 5), (0, 0, 1, 0, 5), (0, 0, 1, 0, 5)])
        net = Network(topo, config, MinimalUnprotected(), trace, seed=1)
        for _ in range(8):
            net.step()
            assert find_wait_cycle(net, net.cycle) is None


class TestMonitor:
    def test_monitor_counts_once(self):
        net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
        monitor = DeadlockMonitor(interval=4)
        for _ in range(40):
            net.step()
            monitor.check(net, net.cycle)
        assert net.stats.deadlocks_observed == 1
        assert monitor.first_deadlock_cycle is not None

    def test_interval_respected(self):
        net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
        monitor = DeadlockMonitor(interval=1000)
        for _ in range(20):
            net.step()
            monitor.check(net, net.cycle)
        assert monitor.first_deadlock_cycle is None  # first check not due yet

    def test_result_sticky_across_skip_cycles(self):
        """Once a cycle has been observed, interval-skip checks must keep
        returning True (the old contract returned False between builds)."""
        net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
        monitor = DeadlockMonitor(interval=4)
        results = []
        for _ in range(12):
            net.step()
            results.append(monitor.check(net, net.cycle))
        first_true = results.index(True)
        assert all(results[first_true:]), (
            f"verdict flapped after first detection: {results}"
        )

    def test_result_sticky_across_movement_skips(self):
        """Movement pre-check skips must repeat the last verdict too."""
        net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
        monitor = DeadlockMonitor(interval=1, max_skips=3)
        net.step()
        assert monitor.check(net, net.cycle)  # first due build detects
        for _ in range(3):
            net.step()
            net.stats.crossbar_flits += 1  # traffic moving elsewhere
            assert monitor.check(net, net.cycle)  # skip cycles stay True

    def test_first_deadlock_cycle_backdated_to_blind_window(self):
        """The constructed ring exists from cycle 0; detection at the
        first due check must not stamp the (late) detection time."""
        net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
        monitor = DeadlockMonitor(interval=16)
        for _ in range(20):
            net.step()
            monitor.check(net, net.cycle)
        # No clear build ever ran, so the deadlock is backdated to 0 —
        # not the >= 16 cycle at which the first build happened.
        assert monitor.first_deadlock_cycle == 0

    def test_first_deadlock_cycle_after_clear_build(self):
        """With a clear build on record, backdate to just after it."""
        from repro.core.turns import Port
        from tests.conftest import place_packet

        E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
        topo = mesh(2, 2)
        config = SimConfig(width=2, height=2, vcs_per_vnet=1)
        net = Network(topo, config, MinimalUnprotected(), None, seed=1)
        monitor = DeadlockMonitor(interval=4)
        for _ in range(8):
            net.step()
            assert not monitor.check(net, net.cycle)  # empty: clear builds
        last_clear = net.cycle  # a build ran at the final due cycle <= here
        place_packet(net, 1, W, 100, 0, 3, (E, N, L))
        place_packet(net, 3, S, 101, 1, 2, (N, W, L))
        place_packet(net, 2, E, 102, 3, 0, (W, S, L))
        place_packet(net, 0, N, 103, 2, 1, (S, E, L))
        for _ in range(8):
            net.step()
            monitor.check(net, net.cycle)
        assert monitor.first_deadlock_cycle is not None
        assert 0 < monitor.first_deadlock_cycle <= last_clear + 1


class TestEndToEnd:
    def test_high_load_faulty_mesh_deadlocks(self):
        """The Fig. 2 premise: unprotected irregular meshes deadlock."""
        topo = inject_link_faults(mesh(8, 8), 10, random.Random(3))
        config = SimConfig(vcs_per_vnet=2)
        traffic = UniformRandomTraffic(topo, rate=0.6, seed=3)
        net = Network(topo, config, MinimalUnprotected(), traffic, seed=3)
        assert deadlocks_within(net, 3000)

    def test_low_load_healthy_mesh_does_not(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4)
        traffic = UniformRandomTraffic(topo, rate=0.02, seed=3)
        net = Network(topo, config, MinimalUnprotected(), traffic, seed=3)
        assert not deadlocks_within(net, 1500)

    def test_spanning_tree_never_deadlocks(self):
        """Deadlock avoidance oracle-checked under heavy load + faults."""
        from repro.protocols.spanning_tree import SpanningTreeAvoidance

        topo = inject_link_faults(mesh(6, 6), 8, random.Random(11))
        config = SimConfig(width=6, height=6, vcs_per_vnet=2)
        traffic = UniformRandomTraffic(topo, rate=0.7, seed=11)
        net = Network(topo, config, SpanningTreeAvoidance(), traffic, seed=11)
        assert not deadlocks_within(net, 2500)
