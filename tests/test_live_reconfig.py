"""Live reconfiguration: in-place topology changes on a running network.

Covers the ``Network.apply_faults`` / ``Network.restore`` subsystem
(and the ``FaultSchedule`` machinery driving it):

* equivalence — reconfiguring in place routes the same traffic the same
  way as rebuilding the network from scratch on the faulted topology;
* the acceptance run — an 8x8 static-bubble network survives staged
  mid-run faults with every packet delivered or explicitly counted;
* protocol-state cleanup — seals and recovery FSMs whose chain crossed
  a dead element are cleared, in-flight specials are cancelled (not
  silently lost), gate/un-gate round-trips re-provision the bubble;
* the satellite regressions (switch-allocator pointer fairness, oracle
  re-deadlock counting, REPRO_WORKERS validation).
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest

from repro.core.fsm import FsmState
from repro.core.messages import make_probe
from repro.core.placement import placement_node_ids
from repro.core.turns import Port
from repro.obs import Observer
from repro.obs.events import PACKET_DROP, PACKET_REROUTE, RECONFIG_APPLY, SPECIAL_DROP
from repro.protocols import make_scheme
from repro.sim.config import SimConfig
from repro.sim.deadlock import DeadlockMonitor
from repro.sim.engine import run_to_drain, run_with_faults
from repro.sim.network import Network
from repro.sim.scenarios import build_fig6_walkthrough, place_packet
from repro.topology.faults import FaultEvent, FaultSchedule, random_fault_schedule
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic
from repro.traffic.trace import TraceTraffic

E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL

ALL_SCHEMES = ["spanning-tree", "escape-vc", "static-bubble"]


def _events(obs, kind):
    return [e for e in obs.events if e.kind == kind]


def _drive_to_drain(net, max_cycles):
    for _ in range(max_cycles):
        net.step()
        if net.is_drained():
            return True
    return False


# -- equivalence: in-place reconfiguration vs rebuild-from-scratch --------


def _phase_traffic(rng, nodes, count, dead_dst=None, dead_count=0, start=1):
    """A deterministic finite trace among ``nodes`` (plus optional
    packets addressed to a node about to die)."""
    events = []
    cycle = start
    for _ in range(count):
        cycle += rng.randrange(1, 3)
        src, dst = rng.sample(nodes, 2)
        events.append((cycle, src, dst, 0, 1))
    for _ in range(dead_count):
        cycle += 1
        src = rng.choice(nodes)
        events.append((cycle, src, dead_dst, 0, 1))
    return events


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_in_place_reconfiguration_matches_rebuild(scheme_name):
    """Same faults, same post-fault traffic: the in-place network and a
    network rebuilt from scratch on the faulted topology must agree on
    delivered and dropped counts."""
    dead_router, dead_link = 14, (2, 3)
    config = SimConfig(width=6, height=6)
    rng = random.Random(99)
    alive = [n for n in range(36) if n != dead_router]
    phase1 = _phase_traffic(rng, list(range(36)), 80)
    phase2 = _phase_traffic(rng, alive, 150, dead_dst=dead_router, dead_count=8)

    # In-place: run healthy, drain, fault mid-object, replay phase 2.
    net_a = Network(
        mesh(6, 6), config, make_scheme(scheme_name),
        TraceTraffic(phase1), seed=7,
    )
    assert run_to_drain(net_a, 4000) is not None
    ejected_phase1 = net_a.stats.packets_ejected
    assert net_a.stats.packets_dropped_unreachable == 0
    net_a.apply_faults(links=(dead_link,), routers=(dead_router,))
    offset = net_a.cycle + 1
    net_a.traffic = TraceTraffic(
        [(c + offset, src, dst, vnet, size) for c, src, dst, vnet, size in phase2]
    )
    assert run_to_drain(net_a, 6000) is not None

    # Rebuild: fresh network on the already-faulted topology, phase 2 only.
    topo_b = mesh(6, 6)
    topo_b.deactivate_node(dead_router)
    topo_b.deactivate_link(*dead_link)
    net_b = Network(
        topo_b, config, make_scheme(scheme_name), TraceTraffic(phase2), seed=7
    )
    assert run_to_drain(net_b, 6000) is not None

    assert net_a.stats.packets_ejected - ejected_phase1 == net_b.stats.packets_ejected
    assert (
        net_a.stats.packets_dropped_unreachable
        == net_b.stats.packets_dropped_unreachable
        == 8
    )
    assert net_b.stats.packets_ejected == 150


# -- the acceptance run: staged mid-run faults on 8x8 static bubble -------


def test_8x8_static_bubble_survives_staged_faults():
    """The ISSUE acceptance criterion: an 8x8 static-bubble run takes
    staged link and router faults mid-flight without a rebuild; every
    packet is delivered or explicitly counted dropped, and the network
    drains."""
    topo = mesh(8, 8)
    config = SimConfig(width=8, height=8, vcs_per_vnet=2)
    traffic = UniformRandomTraffic(topo, rate=0.08, seed=11)
    net = Network(topo, config, make_scheme("static-bubble"), traffic, seed=11)
    schedule = FaultSchedule(
        [
            FaultEvent(150, "fail", links=((3, 4), (9, 17))),
            FaultEvent(300, "fail", routers=(27,)),
            FaultEvent(450, "fail", links=((40, 48),)),
            FaultEvent(550, "restore", routers=(27,)),
        ]
    )
    result = run_with_faults(net, schedule, 12000, stop_traffic_at=800)
    assert result.drained, "network did not drain after staged faults"
    assert result.reconfig_events == 4
    assert result.unaccounted == 0
    assert result.created == result.ejected + result.dropped_reconfig
    assert result.created > 500


# -- protocol-state cleanup when a sealed chain loses a link --------------


def test_sealed_chain_losing_link_resets_fsm_and_clears_seals():
    """Fig. 6 ring mid-recovery (S_SB_ACTIVE, chain sealed): cutting a
    link on the latched path must reset the owning FSM, deactivate its
    bubble, clear the path's seals, and still account for all 12 ring
    packets."""
    net, scheme = build_fig6_walkthrough()
    fsm = scheme.states[5].fsm
    for _ in range(300):
        net.step()
        if fsm.state == FsmState.S_SB_ACTIVE:
            break
    assert fsm.state == FsmState.S_SB_ACTIVE
    assert net.routers[5].bubble_active
    sealed = [r.node for r in net.active_routers() if r.is_deadlock]
    assert sealed, "disable retrace left no seals"

    summary = net.apply_faults(links=((1, 2),))
    assert summary["fsms_reset"] == 1
    assert summary["seals_cleared"] >= 1
    assert fsm.state == FsmState.S_DD  # back to detection, not in recovery
    assert not net.routers[5].bubble_active
    assert not any(r.is_deadlock for r in net.active_routers())

    assert _drive_to_drain(net, 3000)
    assert net.stats.packets_ejected + net.stats.packets_dropped_reconfig == 12


# -- salvage: unreachable in-flight packets are dropped and counted -------


def test_unreachable_in_flight_packet_is_dropped_and_counted():
    topo = mesh(3, 3)
    config = SimConfig(width=3, height=3)
    net = Network(topo, config, make_scheme("spanning-tree"), traffic=None, seed=1)
    obs = Observer(metrics=False)
    net.attach_obs(obs)
    place_packet(net, 4, W, pid=900, src=0, dst=8, route=(E, E, N, L))

    summary = net.apply_faults(routers=(8,))
    assert summary["dropped"] == 1
    assert net.stats.packets_dropped_reconfig == 1
    assert net.routers[4].occupancy == 0
    drops = _events(obs, PACKET_DROP)
    assert len(drops) == 1
    assert drops[0].data == {"reason": "reconfig_unreachable", "dst": 8}
    apply_events = _events(obs, RECONFIG_APPLY)
    assert len(apply_events) == 1
    assert apply_events[0].data["dropped"] == 1


def test_salvageable_in_flight_packet_is_rerouted():
    """A packet whose stamped route crosses a dead link but whose
    destination survives is re-stamped, not dropped."""
    topo = mesh(3, 3)
    config = SimConfig(width=3, height=3)
    net = Network(topo, config, make_scheme("spanning-tree"), traffic=None, seed=1)
    obs = Observer(metrics=False)
    net.attach_obs(obs)
    packet = place_packet(net, 4, W, pid=901, src=0, dst=8, route=(E, E, N, L))

    summary = net.apply_faults(links=((4, 5),))
    assert summary["dropped"] == 0
    assert summary["rerouted"] == 1
    assert net.stats.packets_rerouted == 1
    assert packet.hop == 0
    reroutes = _events(obs, PACKET_REROUTE)
    assert len(reroutes) == 1 and reroutes[0].data == {"pid": 901, "dst": 8}
    assert _drive_to_drain(net, 100)
    assert net.stats.packets_ejected == 1


def test_queued_packet_is_rerouted_not_lost():
    """An NI-queued packet whose route broke survives the re-stamp (it
    must stay in the queue and eventually deliver)."""
    topo = mesh(3, 3)
    config = SimConfig(width=3, height=3)
    net = Network(topo, config, make_scheme("spanning-tree"), traffic=None, seed=1)
    ni = net.nis[0]
    created = ni.create_packet(dst=2, vnet=0, size=1, now=0)
    assert created is not None
    route = created.route
    # Fail the first link of the stamped route while the packet queues.
    first_hop = topo.neighbor(0, route[0])
    net.apply_faults(links=((0, first_hop),))
    assert len(ni.queue) == 1, "rerouted queued packet fell out of the queue"
    assert net.stats.packets_rerouted == 1
    assert _drive_to_drain(net, 100)
    assert net.stats.packets_ejected == 1


# -- in-flight specials: cancelled visibly, never silently ----------------


def test_specials_crossing_dead_elements_are_cancelled():
    topo = mesh(2, 2)
    config = SimConfig(width=2, height=2)
    net = Network(topo, config, make_scheme("spanning-tree"), traffic=None, seed=1)
    obs = Observer(metrics=False)
    net.attach_obs(obs)
    arrival = net.cycle + 2
    net._special_arrivals[arrival] = [
        (3, W, make_probe(2, E)),   # addressed to a router about to die
        (0, E, make_probe(3, W)),   # crossing link (0,1), about to die
        (1, W, make_probe(2, E)),   # same link, other direction
        (2, S, make_probe(0, N)),   # untouched: must be kept
    ]
    summary = net.apply_faults(links=((0, 1),), routers=(3,))
    assert summary["specials_cancelled"] == 3
    assert net.stats.specials_dropped == 3
    reasons = sorted(e.data["reason"] for e in _events(obs, SPECIAL_DROP))
    assert reasons == ["dead_link", "dead_link", "dead_router"]
    assert [entry[0] for entry in net._special_arrivals[arrival]] == [2]


def test_special_delivery_to_dead_router_is_counted():
    """The delivery-time guard (router died between purge and arrival —
    or died without a purge at all) drops visibly, not silently."""
    topo = mesh(2, 2)
    config = SimConfig(width=2, height=2)
    net = Network(topo, config, make_scheme("spanning-tree"), traffic=None, seed=1)
    obs = Observer(metrics=False)
    net.attach_obs(obs)
    del net.routers[3]  # simulate death without the purge pass
    net._special_arrivals[5] = [(3, W, make_probe(2, E))]
    net._deliver_specials(5)
    assert net.stats.specials_dropped == 1
    drops = _events(obs, SPECIAL_DROP)
    assert len(drops) == 1
    assert drops[0].data["reason"] == "dead_router"
    assert drops[0].data["sender"] == 2


# -- gate / un-gate round trip --------------------------------------------


def test_gate_ungate_round_trip_restores_full_service():
    topo = mesh(6, 6)
    config = SimConfig(width=6, height=6)
    net = Network(topo, config, make_scheme("static-bubble"), traffic=None, seed=3)
    sb_nodes = placement_node_ids(6, 6)
    gated = sorted(sb_nodes)[0]  # gate a static-bubble router
    assert gated in net.scheme.states

    net.apply_faults(routers=(gated,))
    assert gated not in net.routers
    assert gated not in net.nis
    assert gated not in net.scheme.states
    assert net.nis[0].table.pick_route(gated, random.Random(0)) is None

    net.restore(routers=(gated,))
    assert gated in net.routers and gated in net.nis
    # Determinism contract: router/NI iteration order stays ascending.
    assert list(net.routers) == sorted(net.routers)
    assert list(net.nis) == sorted(net.nis)
    # The scheme re-provisions its augmentation on the restored node.
    assert gated in net.scheme.states
    assert net.routers[gated].bubble is not None

    # Traffic addressed to the restored node flows again.
    assert net.nis[0].create_packet(dst=gated, vnet=0, size=1, now=net.cycle)
    assert _drive_to_drain(net, 200)
    assert net.stats.packets_ejected == 1


# -- FaultSchedule / random_fault_schedule --------------------------------


class TestFaultSchedule:
    def test_bad_action_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(10, "explode", links=((0, 1),))

    def test_orders_by_cycle_stable_on_ties(self):
        fail = FaultEvent(50, "fail", links=((0, 1),))
        restore = FaultEvent(50, "restore", links=((0, 1),))
        late = FaultEvent(80, "fail", routers=(3,))
        early = FaultEvent(10, "fail", routers=(2,))
        schedule = FaultSchedule([fail, restore, late, early])
        assert list(schedule) == [early, fail, restore, late]
        assert len(schedule) == 4
        assert schedule.last_cycle == 80

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_random_schedule_is_always_applicable(self, seed):
        """Replaying a random schedule element by element never fails or
        restores anything in the wrong state, and never sinks the mesh
        below the active-router floor."""
        topo = mesh(6, 6)
        schedule = random_fault_schedule(topo, 15, random.Random(seed))
        assert len(schedule) <= 15
        assert len(topo.active_nodes()) == 36  # input topology untouched
        replay = topo.copy()
        prev_cycle = 0
        for event in schedule:
            assert event.cycle > prev_cycle
            prev_cycle = event.cycle
            failing = event.action == "fail"
            for u, v in event.links:
                if failing:
                    assert replay.link_is_active(u, v)
                    replay.deactivate_link(u, v)
                else:
                    replay.activate_link(u, v)
            for node in event.routers:
                if failing:
                    assert replay.node_is_active(node)
                    replay.deactivate_node(node)
                else:
                    assert not replay.node_is_active(node)
                    replay.activate_node(node)
            assert len(replay.active_nodes()) >= 18


# -- satellite regressions ------------------------------------------------


def test_losing_input_port_keeps_its_round_robin_slot():
    """Switch allocation: when two input ports contend for one output,
    only the granted port's round-robin pointer advances — the loser's
    candidate VC must stay first in line or it can starve."""
    topo = mesh(2, 2)
    config = SimConfig(width=2, height=2)
    net = Network(topo, config, make_scheme("spanning-tree"), traffic=None, seed=1)
    router = net.routers[0]
    place_packet(net, 0, W, pid=1, src=0, dst=1, route=(E, E, L))
    place_packet(net, 0, S, pid=2, src=0, dst=1, route=(E, E, L))

    net._allocate_router(router, now=0)

    # Output rr starts at input 0, so port W (2) beats port S (3).
    assert router.input_vcs[W][0].packet is None      # granted and moved
    assert router.input_vcs[S][0].packet is not None  # lost, still parked
    assert router._in_rr[W] == 1   # winner's pointer advanced past its VC
    assert router._in_rr[S] == 0   # loser's pointer did NOT advance


def test_monitor_counts_re_deadlock_after_clear(monkeypatch):
    """Oracle regression: deadlock -> recovery (clear build) -> the same
    pids re-deadlock.  The second cycle is a *new* deadlock and must be
    counted; a monitor that never prunes ``deadlocked_pids`` reports 1."""
    cycle_graph = {1: [2], 2: [1]}
    scripted = iter([cycle_graph, {}, cycle_graph])
    monkeypatch.setattr(
        "repro.sim.deadlock.build_wait_graph", lambda net, now: next(scripted)
    )
    network = SimpleNamespace(
        stats=SimpleNamespace(crossbar_flits=0, deadlocks_observed=0), obs=None
    )
    monitor = DeadlockMonitor(interval=1, max_skips=0)
    assert monitor.check(network, 1) is True
    assert network.stats.deadlocks_observed == 1
    assert monitor.check(network, 2) is False
    assert not monitor.deadlocked_pids
    assert monitor.check(network, 3) is True
    assert network.stats.deadlocks_observed == 2


def test_invalid_repro_workers_warns_once(monkeypatch, capsys):
    import repro.parallel.pool as pool

    monkeypatch.setenv("REPRO_WORKERS", "lots")
    monkeypatch.setattr(pool, "_warned_invalid_workers", False)
    assert pool.default_workers() >= 1
    assert pool.default_workers() >= 1  # second call must stay quiet
    err = capsys.readouterr().err
    assert err.count("ignoring invalid REPRO_WORKERS='lots'") == 1
