"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestPlacement:
    def test_placement_output(self, capsys):
        assert main(["placement", "8", "8"]) == 0
        out = capsys.readouterr().out
        assert "21 static bubbles" in out
        assert out.count("B") == 21

    def test_small_mesh(self, capsys):
        assert main(["placement", "2", "2"]) == 0
        assert "1 static bubbles" in capsys.readouterr().out


class TestSchemes:
    def test_lists_all(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for name in (
            "minimal-unprotected",
            "xy",
            "spanning-tree",
            "escape-vc",
            "static-bubble",
            "adaptive",
            "adaptive-escape",
        ):
            assert name in out


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(
            [
                "simulate",
                "--width", "4", "--height", "4",
                "--rate", "0.05",
                "--warmup", "100", "--cycles", "300",
                "--scheme", "static-bubble",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg latency" in out
        assert "recoveries completed" in out

    def test_with_faults_and_monitor(self, capsys):
        code = main(
            [
                "simulate",
                "--width", "4", "--height", "4",
                "--link-faults", "2",
                "--rate", "0.05",
                "--warmup", "100", "--cycles", "300",
                "--scheme", "spanning-tree",
                "--monitor",
            ]
        )
        assert code == 0
        assert "deadlocks observed" in capsys.readouterr().out

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--scheme", "nope"])

    def test_topology_flag_runs_non_mesh(self, capsys):
        argv = [
            "simulate",
            "--topology", "circulant:11,2,5",
            "--rate", "0.05",
            "--warmup", "50", "--cycles", "200",
            "--verify-first",
        ]
        assert main(argv + ["--engine", "reference"]) == 0
        ref_out = capsys.readouterr().out
        assert "circulant(n=11,s1=2,s2=5)" in ref_out
        assert "OK" in ref_out  # the cycle-cover certificate
        # Both engines stay bit-identical off the mesh too.
        assert main(argv + ["--engine", "fast"]) == 0
        assert capsys.readouterr().out == ref_out

    def test_bad_topology_flag_exits_2(self, capsys):
        assert main(["simulate", "--topology", "klein-bottle:3"]) == 2

    def test_engine_flag_fast_matches_reference(self, capsys):
        argv = [
            "simulate",
            "--width", "4", "--height", "4",
            "--rate", "0.05",
            "--warmup", "50", "--cycles", "200",
        ]
        assert main(argv + ["--engine", "reference"]) == 0
        ref_out = capsys.readouterr().out
        assert main(argv + ["--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert fast_out == ref_out

    def test_engine_env_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        assert main(
            [
                "simulate",
                "--width", "3", "--height", "3",
                "--rate", "0.05",
                "--warmup", "20", "--cycles", "100",
            ]
        ) == 0
        assert "avg latency" in capsys.readouterr().out

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--engine", "warp"])

    def test_profile_flag(self, capsys, tmp_path):
        pstats_path = tmp_path / "run.pstats"
        code = main(
            [
                "simulate",
                "--width", "3", "--height", "3",
                "--rate", "0.05",
                "--warmup", "20", "--cycles", "100",
                "--profile",
                "--profile-out", str(pstats_path),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "cumulative" in captured.err
        assert "run_with_window" in captured.err
        assert pstats_path.exists()
        import pstats

        assert pstats.Stats(str(pstats_path)).total_calls > 0


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "21" in out and "320" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
