"""Bit-equivalence of the fast (struct-of-arrays) engine vs the reference.

The fast engine (:mod:`repro.sim.fastcore`) promises *bit-identical*
results: per-cycle stats (including measurement-window counters),
deadlock-monitor verdicts, recovery counts, and final summaries must
match the reference engine exactly on every scheme — the vector filter
is an over-approximation whose scalar grant stage re-checks the same
conditions in the same order.

These tests skip when numpy is unavailable (the fast engine needs it),
unless ``REPRO_REQUIRE_FAST=1`` is set — then a missing numpy is a hard
failure, so CI environments that are *supposed* to exercise the fast
engine cannot silently pass by skipping.
"""

from __future__ import annotations

import dataclasses
import os
import random

import pytest

from repro.protocols import make_scheme
from repro.sim.config import SimConfig
from repro.sim.deadlock import DeadlockMonitor
from repro.sim.network import Network
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is baked into the toolchain
    HAVE_NUMPY = False

_REQUIRE_FAST = os.environ.get("REPRO_REQUIRE_FAST", "") not in ("", "0")

ALL_SCHEMES = [
    "adaptive",
    "adaptive-escape",
    "escape-vc",
    "minimal-unprotected",
    "spanning-tree",
    "static-bubble",
    "xy",
]


@pytest.fixture(autouse=True)
def _need_numpy():
    if not HAVE_NUMPY:
        if _REQUIRE_FAST:
            pytest.fail(
                "REPRO_REQUIRE_FAST=1 but numpy is unavailable: the "
                "fast-engine equivalence suite would be skipped silently"
            )
        pytest.skip("numpy unavailable; fast engine cannot run")


def _make_pair(scheme_name, *, rate=0.25, faults=8, seed=1, fault_seed=1):
    """Identically-seeded (reference, fast) networks on a faulted 8x8."""
    nets = []
    for engine in ("reference", "fast"):
        topo = inject_link_faults(mesh(8, 8), faults, random.Random(fault_seed))
        traffic = UniformRandomTraffic(topo, rate=rate, seed=seed)
        nets.append(
            Network(
                topo,
                SimConfig(),
                make_scheme(scheme_name),
                traffic,
                seed=seed,
                engine=engine,
            )
        )
    return nets


def _stats_dict(net):
    return dataclasses.asdict(net.stats)


@pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
def test_per_cycle_stats_identical(scheme_name):
    """Every stats field matches the reference after every single cycle.

    This subsumes final-stats equality and covers the measurement-window
    counters (``window_*``), the recovery counters
    (``recoveries_completed`` / ``recoveries_aborted``), probe/special
    counts, and the energy-proxy counters the allocator maintains
    (buffer reads/writes, crossbar flits, link-flit cycles).
    """
    ref, fast = _make_pair(scheme_name)
    assert fast.engine == "fast" and ref.engine == "reference"
    for cycle in range(500):
        ref.step()
        fast.step()
        r, f = _stats_dict(ref), _stats_dict(fast)
        assert f == r, f"stats diverged at cycle {cycle} for {scheme_name}"
    assert fast.stats.summary() == ref.stats.summary()


@pytest.mark.parametrize("scheme_name", ["static-bubble", "escape-vc"])
def test_measurement_window_identical(scheme_name):
    """``begin_window`` mid-run: windowed latency/throughput match."""
    ref, fast = _make_pair(scheme_name, rate=0.15)
    for net in (ref, fast):
        net.run(200)
        net.stats.begin_window(net.cycle)
        net.run(300)
    r, f = _stats_dict(ref), _stats_dict(fast)
    assert f == r
    assert f["window_start_cycle"] == 200
    assert fast.stats.window_packets_ejected > 0


@pytest.mark.parametrize(
    "scheme_name", ["static-bubble", "minimal-unprotected", "adaptive"]
)
def test_deadlock_monitor_verdicts_identical(scheme_name):
    """The ground-truth deadlock oracle sees the same network evolution."""
    ref, fast = _make_pair(scheme_name, rate=0.30, faults=10, fault_seed=3)
    mon_ref = DeadlockMonitor(interval=32)
    mon_fast = DeadlockMonitor(interval=32)
    for cycle in range(700):
        ref.step()
        fast.step()
        vr = mon_ref.check(ref, ref.cycle)
        vf = mon_fast.check(fast, fast.cycle)
        assert vf == vr, f"deadlock verdict diverged at cycle {cycle}"
    assert mon_fast.deadlocked_pids == mon_ref.deadlocked_pids
    assert mon_fast.first_deadlock_cycle == mon_ref.first_deadlock_cycle


def test_recovery_activity_is_exercised_and_identical():
    """The equivalence run actually covers recoveries, not just idling."""
    ref, fast = _make_pair("static-bubble", rate=0.30, faults=10, fault_seed=3)
    ref.run(900)
    fast.run(900)
    assert _stats_dict(fast) == _stats_dict(ref)
    # With ten faults at saturation the protocol must have done real work;
    # a silent no-op equivalence would be vacuous.
    assert ref.stats.probes_sent > 0
    assert ref.stats.recoveries_completed + ref.stats.recoveries_aborted > 0


@pytest.mark.parametrize("scheme_name", ["static-bubble", "adaptive"])
def test_live_reconfig_identical_on_fast_engine(scheme_name):
    """apply_faults / restore mid-run work on the fast engine (mirror rebuild)."""
    ref, fast = _make_pair(scheme_name, rate=0.10, faults=4)
    for net in (ref, fast):
        net.run(150)
        summary = net.apply_faults(routers=[27], links=[(9, 10)])
        assert isinstance(summary, dict)
        net.run(150)
        net.restore(routers=[27], links=[(9, 10)])
        net.run(150)
    assert _stats_dict(fast) == _stats_dict(ref)


def test_paranoid_mode_matches(monkeypatch):
    """REPRO_FAST_PARANOID=1 (resync-every-cycle) changes nothing."""
    monkeypatch.setenv("REPRO_FAST_PARANOID", "1")
    ref, fast = _make_pair("static-bubble", rate=0.20)
    assert fast._paranoid
    ref.run(250)
    fast.run(250)
    assert _stats_dict(fast) == _stats_dict(ref)


def test_engine_tag_and_selection():
    ref, fast = _make_pair("xy", rate=0.05)
    assert type(fast).__name__ == "FastNetwork"
    assert type(ref) is Network
    with pytest.raises(ValueError):
        topo = mesh(4, 4)
        Network(topo, SimConfig(), make_scheme("xy"), engine="warp")
