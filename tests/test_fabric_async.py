"""Tests for the asyncio HTTP front end and client retry policy.

The async server runs its real event loop on an ephemeral port; the
stdlib client exercises it over genuine sockets, including raw
``http.client`` connections for keep-alive and protocol-edge cases the
high-level client never produces.
"""

import http.client
import json
import shutil
import urllib.error

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.client import ServiceClient, ServiceError
from repro.service.fabric import (
    AsyncServiceServer,
    ShardMap,
    ShardedResultStore,
    make_server,
)
from repro.service.server import ServiceServer
from repro.service.spec import SimSpec
from repro.service.store import ResultStore

TINY = dict(width=3, height=3, rate=0.03, warmup=30, measure=80, seed=5)


@pytest.fixture()
def server(tmp_path):
    store = ResultStore(root=tmp_path / "store", registry=MetricsRegistry())
    with AsyncServiceServer(port=0, store=store, workers=2, quiet=True) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


class TestAsyncEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["ok"] is True
        assert payload["draining"] is False

    def test_submit_cached_and_result(self, server, client):
        spec = SimSpec(**TINY)
        first = client.run(spec, timeout=60)
        assert first["status"] == "done"
        second = client.submit(spec)
        assert second["cached"] is True
        assert second["result"] == first["result"]
        blob = client.result(second["fingerprint"])
        assert blob == first["result"]

    def test_malformed_spec_400(self, client):
        status, payload, _ = client._request(
            "POST", "/jobs", {"definitely_not_a_field": 1}
        )
        assert status == 400

    def test_unknown_endpoint_404(self, client):
        status, _, _ = client._request("GET", "/nope")
        assert status == 404

    def test_non_object_body_400(self, server):
        conn = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            conn.request(
                "POST", "/jobs", body=b"[1, 2, 3]",
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_method_not_allowed_405(self, server):
        conn = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            conn.request("DELETE", "/jobs")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_per_endpoint_latency_histograms(self, server, client):
        client.healthz()
        client.submit(SimSpec(**TINY))
        text = client.metrics()
        assert "repro_service_http_latency_ms_healthz" in text
        assert "repro_service_http_latency_ms_jobs_submit" in text

    def test_keep_alive_reuses_connection(self, server):
        conn = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read())
        finally:
            conn.close()

    def test_oversized_body_413(self, server):
        conn = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(256 * 1024 * 1024))
            conn.endheaders()
            # The server rejects on the declared length without reading
            # the (never-sent) body.
            assert conn.getresponse().status == 413
        finally:
            conn.close()

    def test_malformed_request_line_400(self, server):
        import socket

        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            assert b"400" in sock.recv(1024)

    def test_head_request(self, server):
        conn = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            conn.request("HEAD", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert response.read() == b""
        finally:
            conn.close()

    def test_claim_empty_when_no_work(self, client):
        payload = client.claim("w1", wait=0.1)
        assert payload["jobs"] == []
        assert payload["draining"] is False


class TestDrain:
    def test_draining_degrades_health_and_claims(self, server, client):
        server.draining = True
        with pytest.raises(ServiceError) as exc_info:
            client.healthz()
        assert exc_info.value.status == 503
        assert exc_info.value.payload["draining"] is True
        payload = client.claim("w1", wait=0.0)
        assert payload["jobs"] == []
        assert payload["draining"] is True

    def test_stop_is_graceful(self, tmp_path):
        store = ResultStore(root=tmp_path / "store", registry=MetricsRegistry())
        server = AsyncServiceServer(port=0, store=store, workers=2, quiet=True)
        server.start()
        client = ServiceClient(server.url, transient_retries=0)
        client.healthz()
        server.stop()
        with pytest.raises((ServiceError, OSError, urllib.error.URLError)):
            client.healthz()


class TestShardedHealth:
    def test_shard_outage_degrades_healthz(self, tmp_path):
        smap = ShardMap.local([tmp_path / "s0", tmp_path / "s1"], replicas=2)
        store = ShardedResultStore(smap, registry=MetricsRegistry())
        with AsyncServiceServer(
            port=0, store=store, workers=2, quiet=True
        ) as server:
            client = ServiceClient(server.url)
            assert client.healthz()["shards"] == {"s0": True, "s1": True}
            shutil.rmtree(tmp_path / "s1")
            with pytest.raises(ServiceError) as exc_info:
                client.healthz()
            assert exc_info.value.status == 503
            assert exc_info.value.payload["shards"]["s1"] is False


class TestMakeServer:
    def test_factory_backends(self, tmp_path):
        store = ResultStore(root=tmp_path / "a", registry=MetricsRegistry())
        threaded = make_server(backend="threaded", port=0, store=store, quiet=True)
        assert isinstance(threaded, ServiceServer)
        store2 = ResultStore(root=tmp_path / "b", registry=MetricsRegistry())
        asyncish = make_server(backend="async", port=0, store=store2, quiet=True)
        assert isinstance(asyncish, AsyncServiceServer)
        with pytest.raises(ValueError):
            make_server(backend="twisted", port=0)


class TestClientRetries:
    def test_transient_errors_retried(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", transient_retries=3, retry_backoff=0.001
        )
        calls = []

        def flaky(method, path, body=None, timeout=None):
            calls.append(path)
            if len(calls) < 3:
                raise ConnectionResetError("torn connection")
            return 200, {"ok": True}, "{}"

        monkeypatch.setattr(client, "_request_once", flaky)
        status, payload, _ = client._request("GET", "/healthz")
        assert status == 200
        assert len(calls) == 3

    def test_retries_exhausted_raises(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", transient_retries=2, retry_backoff=0.001
        )
        calls = []

        def always_down(method, path, body=None, timeout=None):
            calls.append(path)
            raise ConnectionRefusedError("nobody home")

        monkeypatch.setattr(client, "_request_once", always_down)
        with pytest.raises(ConnectionRefusedError):
            client._request("GET", "/healthz")
        assert len(calls) == 3  # initial + 2 retries

    def test_http_errors_never_retried(self, monkeypatch):
        client = ServiceClient(
            "http://127.0.0.1:1", transient_retries=3, retry_backoff=0.001
        )
        calls = []

        def http_404(method, path, body=None, timeout=None):
            calls.append(path)
            raise urllib.error.HTTPError(path, 404, "nope", None, None)

        monkeypatch.setattr(client, "_request_once", http_404)
        with pytest.raises(urllib.error.HTTPError):
            client._request("GET", "/jobs/xyz")
        assert len(calls) == 1

    def test_retries_disabled(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:1", transient_retries=0)
        calls = []

        def down(method, path, body=None, timeout=None):
            calls.append(path)
            raise ConnectionResetError("down")

        monkeypatch.setattr(client, "_request_once", down)
        with pytest.raises(ConnectionResetError):
            client._request("GET", "/healthz")
        assert len(calls) == 1

    def test_submit_honors_retry_after(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:1")
        answers = iter(
            [
                (429, {"error": "backpressure", "retry_after": 0.01}, "{}"),
                (202, {"status": "pending", "job_id": "j"}, "{}"),
            ]
        )
        monkeypatch.setattr(
            client, "_request", lambda *a, **k: next(answers)
        )
        payload = client.submit(SimSpec(**TINY), backoff=0.001)
        assert payload["job_id"] == "j"

    def test_429_header_injected_into_payload(self, server, monkeypatch):
        """A 429 whose JSON body omits retry_after still carries the
        server's Retry-After header through to the backoff loop."""
        real_urlopen = __import__("urllib.request", fromlist=["urlopen"]).urlopen

        class FakeHeaders(dict):
            def get(self, key, default=None):
                return dict.get(self, key, default)

        def fake_urlopen(request, timeout=None):
            import io

            raise urllib.error.HTTPError(
                request.full_url,
                429,
                "busy",
                FakeHeaders(
                    {"Content-Type": "application/json", "Retry-After": "0.25"}
                ),
                io.BytesIO(b'{"error": "backpressure"}'),
            )

        client = ServiceClient(server.url)
        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        status, payload, _ = client._request_once("GET", "/healthz")
        assert status == 429
        assert payload["retry_after"] == 0.25
