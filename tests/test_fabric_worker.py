"""End-to-end tests for remote worker pools and failover.

A no-local-exec server plays the front end; :class:`FabricWorker`
instances execute in-process (exec_workers=1 keeps each cycle cheap).
Failover is driven the way production fails: leases that stop being
heartbeated, shard directories that vanish, and duplicate completions
racing each other.
"""

import shutil
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.client import ServiceClient
from repro.service.fabric import (
    AsyncServiceServer,
    FabricWorker,
    ShardMap,
    ShardedResultStore,
)
from repro.service.server import ServiceServer, fingerprint_for
from repro.service.spec import SimSpec
from repro.service.store import ResultStore

TINY = dict(width=3, height=3, rate=0.03, warmup=30, measure=80, seed=5)


@pytest.fixture(params=["threaded", "async"])
def server(request, tmp_path):
    """Both front ends must speak the identical worker protocol."""
    store = ResultStore(root=tmp_path / "store", registry=MetricsRegistry())
    cls = ServiceServer if request.param == "threaded" else AsyncServiceServer
    with cls(
        port=0,
        store=store,
        workers=2,
        quiet=True,
        local_exec=False,
        lease_ttl=1.0,
    ) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


def spec_variant(seed):
    return SimSpec(**dict(TINY, seed=seed))


class TestWorkerExecution:
    def test_worker_executes_submitted_job(self, server, client):
        spec = spec_variant(5)
        submitted = client.submit(spec)
        assert submitted["status"] == "pending"
        worker = FabricWorker(server.url, max_jobs=4, poll_wait=0.2, quiet=True)
        worker.run_once()
        assert worker.stats.executed == 1
        done = client.job(submitted["job_id"])
        assert done["status"] == "done"
        assert done["result"]["stats"]["packets_ejected"] > 0
        # Exactly one stored result, addressed by the spec fingerprint.
        assert server.store.get(fingerprint_for(spec)) == done["result"]

    def test_worker_result_matches_local_execution(self, tmp_path):
        """Remote execution is bit-identical to the local pool path."""
        spec = spec_variant(6)
        local_store = ResultStore(
            root=tmp_path / "local", registry=MetricsRegistry()
        )
        with ServiceServer(
            port=0, store=local_store, workers=2, quiet=True
        ) as local_srv:
            local = ServiceClient(local_srv.url).run(spec, timeout=60)

        remote_store = ResultStore(
            root=tmp_path / "remote", registry=MetricsRegistry()
        )
        with AsyncServiceServer(
            port=0, store=remote_store, workers=2, quiet=True,
            local_exec=False, lease_ttl=5.0,
        ) as remote_srv:
            remote_client = ServiceClient(remote_srv.url)
            submitted = remote_client.submit(spec)
            FabricWorker(remote_srv.url, poll_wait=0.2, quiet=True).run_once()
            remote = remote_client.job(submitted["job_id"])
        assert remote["result"] == local["result"]

    def test_worker_feeds_surrogate_calibration(self, server, client):
        before = server.oracle.calibration.sample_count
        client.submit(spec_variant(7))
        FabricWorker(server.url, poll_wait=0.2, quiet=True).run_once()
        assert server.oracle.calibration.sample_count == before + 1

    def test_idle_worker_exits_on_budget(self, server):
        worker = FabricWorker(server.url, poll_wait=0.05, quiet=True)
        stats = worker.run_forever(max_idle_polls=2)
        assert stats.idle_polls == 2
        assert stats.claims == 0

    def test_draining_server_releases_workers(self, server, client):
        server.draining = True
        worker = FabricWorker(server.url, poll_wait=0.05, quiet=True)
        stats = worker.run_forever(max_idle_polls=50)
        # Exits via the draining check long before the idle budget.
        assert stats.idle_polls < 50


class TestFailover:
    def test_killed_worker_lease_expires_and_requeues(self, server, client):
        """A worker that claims and dies (never heartbeats, never
        completes) loses its lease; the job requeues and the next worker
        stores exactly one result."""
        spec = spec_variant(8)
        submitted = client.submit(spec)
        # "Kill" a worker mid-job: claim directly, then go silent.
        dead = client.claim("doomed-worker", max_jobs=1, wait=0.5)
        assert len(dead["jobs"]) == 1
        assert client.job(submitted["job_id"])["status"] == "running"
        time.sleep(1.3)  # lease_ttl=1.0 lapses
        rescuer = FabricWorker(
            server.url, poll_wait=1.0, max_jobs=1, quiet=True
        )
        rescuer.run_once()
        assert rescuer.stats.executed == 1
        done = client.job(submitted["job_id"])
        assert done["status"] == "done"
        assert server.store.get(fingerprint_for(spec)) == done["result"]

    def test_duplicate_completion_after_failover_coalesces(
        self, server, client
    ):
        """The 'dead' worker finishes after all and reports anyway: the
        completion must coalesce, not double-store."""
        spec = spec_variant(9)
        submitted = client.submit(spec)
        dead = client.claim("slow-worker", max_jobs=1, wait=0.5)
        job_id = dead["jobs"][0]["job_id"]
        time.sleep(1.3)
        FabricWorker(server.url, poll_wait=1.0, quiet=True).run_once()
        done = client.job(submitted["job_id"])
        assert done["status"] == "done"
        outcome = client.complete(
            job_id, "slow-worker", True, result=done["result"]
        )
        assert outcome == "duplicate"
        assert client.job(submitted["job_id"])["result"] == done["result"]

    def test_heartbeat_holds_lease_past_ttl(self, server, client):
        spec = spec_variant(10)
        client.submit(spec)
        claim = client.claim("steady-worker", max_jobs=1, wait=0.5)
        job_id = claim["jobs"][0]["job_id"]
        deadline = time.monotonic() + 1.6  # > lease_ttl
        while time.monotonic() < deadline:
            assert client.heartbeat(job_id, "steady-worker")
            time.sleep(0.3)
        # Nobody can steal the job while the heartbeats keep landing.
        assert client.claim("thief", max_jobs=1, wait=0.1)["jobs"] == []
        assert client.complete(
            job_id, "steady-worker", True, result={"spec": {}, "stats": {}}
        ) == "done"


class TestShardFailover:
    def test_lost_shard_forces_reexecution(self, tmp_path):
        """replicas=1: losing the owning shard loses the blob; the next
        submission is a store miss and re-executes instead of serving a
        phantom cache hit."""
        smap = ShardMap.local(
            [tmp_path / "s0", tmp_path / "s1"], replicas=1
        )
        store = ShardedResultStore(smap, registry=MetricsRegistry())
        spec = spec_variant(11)
        fp = fingerprint_for(spec)
        with ServiceServer(
            port=0, store=store, workers=2, quiet=True, record_ttl=0.1
        ) as server:
            client = ServiceClient(server.url)
            first = client.run(spec, timeout=60)
            assert first["cached"] is False
            owner = smap.primary(fp)
            shutil.rmtree(tmp_path / ("s0" if owner == "s0" else "s1"))
            time.sleep(0.2)  # let the record TTL-prune so memo can't answer
            second = client.run(spec, timeout=60)
            assert second["cached"] is False  # re-executed, not a hit
            assert second["result"] == first["result"]

    def test_replicated_shard_loss_is_a_cache_hit(self, tmp_path):
        """replicas=2: the same outage read-throughs to the replica and
        stays a cache hit."""
        smap = ShardMap.local(
            [tmp_path / "s0", tmp_path / "s1"], replicas=2
        )
        store = ShardedResultStore(smap, registry=MetricsRegistry())
        spec = spec_variant(12)
        fp = fingerprint_for(spec)
        with ServiceServer(
            port=0, store=store, workers=2, quiet=True, record_ttl=0.1
        ) as server:
            client = ServiceClient(server.url)
            first = client.run(spec, timeout=60)
            owner = smap.primary(fp)
            shutil.rmtree(tmp_path / ("s0" if owner == "s0" else "s1"))
            time.sleep(0.2)
            second = client.submit(spec)
            assert second["cached"] is True
            assert second["result"] == first["result"]
