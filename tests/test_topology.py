"""Tests for the mesh/irregular topology substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.turns import Port
from repro.topology.mesh import Topology, mesh


class TestConstruction:
    def test_dimensions(self):
        topo = mesh(8, 4)
        assert topo.num_nodes == 32
        assert len(list(topo.all_links())) == 7 * 4 + 8 * 3  # E-W + N-S links

    def test_8x8_link_count(self):
        assert len(list(mesh(8, 8).all_links())) == 112  # 2 * 8 * 7

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Topology(0, 5)

    def test_node_id_coords_roundtrip(self):
        topo = mesh(5, 7)
        for node in topo.all_nodes():
            x, y = topo.coords(node)
            assert topo.node_id(x, y) == node

    def test_coords_out_of_range(self):
        topo = mesh(4, 4)
        with pytest.raises(ValueError):
            topo.node_id(4, 0)
        with pytest.raises(ValueError):
            topo.coords(16)

    def test_coords_rejects_negative_and_wrapping_ids(self):
        # Regression: without the bounds check, Python's modular
        # arithmetic would silently wrap -1 to (width-1, -1) and alias
        # node_id(-1, 1) onto a real node instead of raising.
        topo = mesh(5, 3)
        for bad in (-1, topo.num_nodes, topo.num_nodes + 5):
            with pytest.raises(ValueError):
                topo.coords(bad)
        for x, y in ((-1, 0), (0, -1), (5, 0), (0, 3), (-1, 1)):
            with pytest.raises(ValueError):
                topo.node_id(x, y)


class TestAdjacency:
    def test_neighbor_directions(self):
        topo = mesh(4, 4)
        node = topo.node_id(1, 1)
        assert topo.neighbor(node, Port.EAST) == topo.node_id(2, 1)
        assert topo.neighbor(node, Port.NORTH) == topo.node_id(1, 2)
        assert topo.neighbor(node, Port.WEST) == topo.node_id(0, 1)
        assert topo.neighbor(node, Port.SOUTH) == topo.node_id(1, 0)

    def test_edge_nodes_have_no_outside_neighbors(self):
        topo = mesh(4, 4)
        assert topo.neighbor(topo.node_id(0, 0), Port.WEST) is None
        assert topo.neighbor(topo.node_id(3, 3), Port.NORTH) is None

    def test_corner_has_two_active_neighbors(self):
        topo = mesh(4, 4)
        assert len(topo.active_neighbors(0)) == 2

    def test_interior_has_four(self):
        topo = mesh(4, 4)
        assert len(topo.active_neighbors(topo.node_id(1, 1))) == 4

    def test_port_between(self):
        topo = mesh(4, 4)
        assert topo.port_between(0, 1) == Port.EAST
        assert topo.port_between(1, 0) == Port.WEST
        assert topo.port_between(0, 4) == Port.NORTH

    def test_port_between_nonadjacent(self):
        topo = mesh(4, 4)
        with pytest.raises(ValueError):
            topo.port_between(0, 2)


class TestDeactivation:
    def test_link_deactivation(self):
        topo = mesh(4, 4)
        topo.deactivate_link(0, 1)
        assert not topo.link_is_active(0, 1)
        assert not topo.link_is_active(1, 0)
        assert topo.num_faulty_links() == 1
        assert (Port.EAST, 1) not in topo.active_neighbors(0)

    def test_link_reactivation(self):
        topo = mesh(4, 4)
        topo.deactivate_link(0, 1)
        topo.activate_link(0, 1)
        assert topo.link_is_active(0, 1)

    def test_node_deactivation_kills_its_links(self):
        topo = mesh(4, 4)
        topo.deactivate_node(5)
        assert not topo.link_is_active(5, 6)
        assert topo.active_neighbors(5) == []
        for _, n in topo.active_neighbors(1):
            assert n != 5

    def test_active_links_exclude_dead_endpoints(self):
        topo = mesh(4, 4)
        before = len(topo.active_links())
        topo.deactivate_node(5)  # interior node: 4 links vanish
        assert len(topo.active_links()) == before - 4

    def test_deactivate_missing_link(self):
        topo = mesh(4, 4)
        with pytest.raises(ValueError):
            topo.deactivate_link(0, 5)

    def test_copy_is_independent(self):
        topo = mesh(4, 4)
        clone = topo.copy()
        clone.deactivate_node(0)
        assert topo.node_is_active(0)
        assert not clone.node_is_active(0)


@given(
    width=st.integers(min_value=1, max_value=10),
    height=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=30)
def test_link_count_formula(width, height):
    topo = mesh(width, height)
    expected = (width - 1) * height + width * (height - 1)
    assert len(list(topo.all_links())) == expected


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30)
def test_neighbors_symmetric(n, seed):
    """u in neighbors(v) iff v in neighbors(u), under random faults."""
    topo = mesh(n, n)
    rng = random.Random(seed)
    for link in rng.sample(list(topo.all_links()), k=min(5, topo.num_nodes)):
        u, v = tuple(link)
        topo.deactivate_link(u, v)
    for node in topo.all_nodes():
        for _, other in topo.active_neighbors(node):
            assert node in [m for _, m in topo.active_neighbors(other)]
