"""Public API surface contract.

Guards the import surface a downstream user relies on: everything in
``repro.__all__`` resolves, the scheme registry is complete, and the
experiment registry exposes quick/full parameterizations with run/report.
"""

import dataclasses

import repro
from repro.experiments import ALL_EXPERIMENTS
from repro.protocols import SCHEMES, make_scheme


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_snippet_names(self):
        """The names used by the README quickstart must stay exported."""
        for name in (
            "mesh",
            "inject_link_faults",
            "SimConfig",
            "Network",
            "StaticBubbleScheme",
            "UniformRandomTraffic",
            "run_with_window",
        ):
            assert name in repro.__all__


class TestSchemeRegistry:
    def test_all_schemes_constructible(self):
        for name in SCHEMES:
            scheme = make_scheme(name)
            assert scheme.name in (name, "base") or scheme.name == name

    def test_scheme_names_match_registry_keys(self):
        for name, cls in SCHEMES.items():
            assert cls.name == name

    def test_unknown_scheme(self):
        import pytest

        with pytest.raises(ValueError):
            make_scheme("definitely-not-a-scheme")


class TestExperimentRegistry:
    def test_every_experiment_has_contract(self):
        for name, module in ALL_EXPERIMENTS.items():
            assert callable(module.run), name
            assert callable(module.report), name
            params_cls = next(
                getattr(module, n) for n in dir(module) if n.endswith("Params")
            )
            assert dataclasses.is_dataclass(params_cls), name
            quick = params_cls.quick()
            full = params_cls.full()
            assert isinstance(quick, params_cls)
            assert isinstance(full, params_cls)

    def test_full_params_are_at_least_quick_scale(self):
        """full() must never be smaller than quick() where comparable."""
        for name, module in ALL_EXPERIMENTS.items():
            params_cls = next(
                getattr(module, n) for n in dir(module) if n.endswith("Params")
            )
            quick, full = params_cls.quick(), params_cls.full()
            if hasattr(quick, "samples"):
                assert full.samples >= quick.samples, name

    def test_registry_covers_every_evaluation_figure(self):
        # Every evaluation figure/table, plus the chaos robustness harness
        # and the non-mesh topology sweep.
        assert set(ALL_EXPERIMENTS) == {
            "fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12",
            "fig13", "table1", "chaos", "topo",
        }
