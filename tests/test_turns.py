"""Unit tests for directions, ports and the L/S/R turn encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.turns import (
    DELTA,
    DIRECTIONS,
    PROBE_TURN_CAPACITY,
    Port,
    Turn,
    apply_turn,
    opposite,
    rotate_left,
    rotate_right,
    turn_between,
)


class TestOpposite:
    def test_pairs(self):
        assert opposite(Port.EAST) == Port.WEST
        assert opposite(Port.WEST) == Port.EAST
        assert opposite(Port.NORTH) == Port.SOUTH
        assert opposite(Port.SOUTH) == Port.NORTH

    def test_involution(self):
        for d in DIRECTIONS:
            assert opposite(opposite(d)) == d

    def test_local_rejected(self):
        with pytest.raises(ValueError):
            opposite(Port.LOCAL)


class TestRotation:
    def test_left_cycle(self):
        assert rotate_left(Port.EAST) == Port.NORTH
        assert rotate_left(Port.NORTH) == Port.WEST
        assert rotate_left(Port.WEST) == Port.SOUTH
        assert rotate_left(Port.SOUTH) == Port.EAST

    def test_right_is_inverse_of_left(self):
        for d in DIRECTIONS:
            assert rotate_right(rotate_left(d)) == d
            assert rotate_left(rotate_right(d)) == d

    def test_four_lefts_identity(self):
        for d in DIRECTIONS:
            x = d
            for _ in range(4):
                x = rotate_left(x)
            assert x == d


class TestApplyTurn:
    def test_straight_keeps_direction(self):
        for d in DIRECTIONS:
            assert apply_turn(d, Turn.STRAIGHT) == d

    def test_left_right_cancel(self):
        for d in DIRECTIONS:
            assert apply_turn(apply_turn(d, Turn.LEFT), Turn.RIGHT) == d


class TestTurnBetween:
    def test_straight(self):
        # Entering from the West port means travelling East; leaving East
        # continues straight.
        assert turn_between(Port.WEST, Port.EAST) == Turn.STRAIGHT

    def test_left(self):
        # Travelling East (in at West), leaving North is a left turn.
        assert turn_between(Port.WEST, Port.NORTH) == Turn.LEFT

    def test_right(self):
        assert turn_between(Port.WEST, Port.SOUTH) == Turn.RIGHT

    def test_uturn_rejected(self):
        with pytest.raises(ValueError):
            turn_between(Port.WEST, Port.WEST)

    def test_local_rejected(self):
        with pytest.raises(ValueError):
            turn_between(Port.LOCAL, Port.EAST)
        with pytest.raises(ValueError):
            turn_between(Port.EAST, Port.LOCAL)

    @given(
        in_port=st.sampled_from(list(DIRECTIONS)),
        turn=st.sampled_from(list(Turn)),
    )
    def test_roundtrip_with_apply(self, in_port, turn):
        """turn_between inverts apply_turn for every in-port/turn pair."""
        travel = opposite(in_port)
        out = apply_turn(travel, turn)
        assert turn_between(in_port, out) == turn


class TestDelta:
    def test_deltas_are_unit_vectors(self):
        for d, (dx, dy) in DELTA.items():
            assert abs(dx) + abs(dy) == 1

    def test_opposite_deltas_cancel(self):
        for d in DIRECTIONS:
            dx, dy = DELTA[d]
            ox, oy = DELTA[opposite(d)]
            assert (dx + ox, dy + oy) == (0, 0)


def test_probe_capacity_matches_header_budget():
    """128-bit flit, 3-bit type, 6-bit node id, 2 bits/turn -> 59 turns."""
    assert PROBE_TURN_CAPACITY == (128 - 3 - 6) // 2
