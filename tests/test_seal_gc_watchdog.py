"""Branch coverage for the Static Bubble robustness machinery.

Targets the two on-cycle sweeps that only fire on rare protocol paths:

* ``_collect_stale_seals`` — orphaned IO-seal garbage collection
  (keep-alive refresh while the chain still flows vs. expiry once it
  dissolved, and the owner-in-recovery exclusion);
* ``_sb_active_watchdog`` — an active-but-unclaimed bubble whose chain
  dissolved (freed VC at the chain input port) or that nobody claimed
  within ``sb_bubble_timeout``.
"""

from __future__ import annotations

from repro.core.fsm import FsmState
from repro.core.turns import Port, Turn
from repro.obs import Observer
from repro.obs.events import SEAL_EXPIRE, SEAL_REFRESH

from tests.conftest import build_2x2_ring_deadlock

E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL

#: A detection threshold so large the node-3 FSM never interferes.
FROZEN = 10**9


def _events(obs, kind):
    return [e for e in obs.events if e.kind == kind]


class TestCollectStaleSeals:
    def test_orphaned_seal_expires(self):
        """A seal nobody refreshes and no VC flows through is collected."""
        net, scheme = build_2x2_ring_deadlock(t_dd=FROZEN)
        net.config.sb_seal_timeout = 8
        obs = Observer(metrics=False)
        net.attach_obs(obs)
        router = net.routers[0]
        # Node 0's only resident (pid 103) sits at N wanting E; seal the
        # *other* direction so no VC ever wants the sealed output.
        router.set_io_restriction(E, N, source=3, now=net.cycle)
        for _ in range(net.config.sb_seal_timeout + 2):
            net.step()
        assert not router.is_deadlock
        expired = _events(obs, SEAL_EXPIRE)
        assert len(expired) == 1
        assert expired[0].node == 0
        assert expired[0].data["age"] >= net.config.sb_seal_timeout

    def test_flowing_chain_refreshes_keepalive(self):
        """While a VC still wants the sealed turn, the seal is re-armed."""
        net, scheme = build_2x2_ring_deadlock(t_dd=FROZEN)
        net.config.sb_seal_timeout = 8
        obs = Observer(metrics=False)
        net.attach_obs(obs)
        router = net.routers[1]
        # Node 1's resident (pid 100) is parked at W wanting N forever
        # (the ring is a true deadlock and the FSM is frozen).
        router.set_io_restriction(W, N, source=3, now=net.cycle)
        for _ in range(3 * net.config.sb_seal_timeout):
            net.step()
        assert router.is_deadlock  # still sealed
        assert len(_events(obs, SEAL_REFRESH)) >= 2
        assert not _events(obs, SEAL_EXPIRE)

    def test_owner_in_recovery_is_exempt(self):
        """The recovery-owning FSM manages its own seal; GC must not."""
        net, scheme = build_2x2_ring_deadlock(t_dd=FROZEN)
        net.config.sb_seal_timeout = 8
        router = net.routers[3]
        fsm = scheme.states[3].fsm
        fsm.transition(FsmState.S_DISABLE)
        fsm.threshold = FROZEN  # hold the FSM in-recovery indefinitely
        # Seal a turn nothing flows through: without the exemption this
        # would expire like in test_orphaned_seal_expires.
        router.set_io_restriction(W, S, source=3, now=net.cycle)
        for _ in range(3 * net.config.sb_seal_timeout):
            net.step()
        assert router.is_deadlock


def _arm_sb_active(net, scheme, in_port):
    """Drive node 3's FSM to S_SB_ACTIVE with its (unclaimed) bubble on."""
    state = scheme.states[3]
    fsm = state.fsm
    fsm.turn_buffer = (Turn.LEFT, Turn.LEFT, Turn.LEFT)
    fsm.probe_in_port = in_port
    # Node 3 sits at the (1,1) corner of the 2x2 mesh: W and S are its
    # only links, so route the retrace out of whichever is not the chain
    # input.
    fsm.probe_out_port = S if in_port == W else W
    fsm.transition(FsmState.S_DISABLE)
    assert fsm.on_disable_returned().name == "ACTIVATE_BUBBLE"
    net.routers[3].activate_bubble(in_port)
    state.bubble_active_since = net.cycle
    return state


class TestSbActiveWatchdog:
    def test_dissolved_chain_reclaims_bubble(self):
        """A free VC at the chain's input port means the chain gained
        space on its own: the bubble is reclaimed and a check_probe
        (or the enable fallback) takes over."""
        net, scheme = build_2x2_ring_deadlock(t_dd=FROZEN)
        # Chain input W: node 3's W-port VCs are empty (its resident sits
        # at S), so the "chain" dissolved before ever claiming the bubble.
        _arm_sb_active(net, scheme, in_port=W)
        net.step()
        fsm = scheme.states[3].fsm
        assert fsm.state == FsmState.S_CHECK_PROBE
        assert not net.routers[3].bubble_active
        assert net.stats.check_probes_sent == 1

    def test_unclaimed_bubble_times_out(self):
        """Chain port full but nothing claims the bubble: after
        ``sb_bubble_timeout`` the watchdog reclaims it regardless."""
        net, scheme = build_2x2_ring_deadlock(t_dd=FROZEN)
        net.config.sb_bubble_timeout = 16
        state = _arm_sb_active(net, scheme, in_port=S)  # pid 101 parked at S
        router = net.routers[3]
        fsm = state.fsm
        # Exercise the sweep directly: the upstream ring would otherwise
        # legitimately drain into the active bubble and claim it.
        now = state.bubble_active_since + net.config.sb_bubble_timeout
        scheme._sb_active_watchdog(net, router, state, now)
        assert fsm.state == FsmState.S_CHECK_PROBE
        assert not router.bubble_active

    def test_full_chain_within_timeout_keeps_waiting(self):
        net, scheme = build_2x2_ring_deadlock(t_dd=FROZEN)
        net.config.sb_bubble_timeout = 16
        state = _arm_sb_active(net, scheme, in_port=S)
        router = net.routers[3]
        fsm = state.fsm
        now = state.bubble_active_since + net.config.sb_bubble_timeout - 1
        scheme._sb_active_watchdog(net, router, state, now)
        assert fsm.state == FsmState.S_SB_ACTIVE
        assert router.bubble_active

    def test_claimed_bubble_is_left_alone_within_timeout(self):
        """A resident inside the bubble means the drain is in progress;
        the watchdog must not interrupt it before the bubble timeout."""
        net, scheme = build_2x2_ring_deadlock(t_dd=FROZEN)
        net.config.sb_bubble_timeout = 16
        state = _arm_sb_active(net, scheme, in_port=S)
        router = net.routers[3]
        router.bubble.packet = router.input_vcs[S][0].packet  # simulate claim
        now = state.bubble_active_since + net.config.sb_bubble_timeout - 1
        scheme._sb_active_watchdog(net, router, state, now)
        assert state.fsm.state == FsmState.S_SB_ACTIVE
        assert router.bubble_active

    def test_stuck_claimed_bubble_tears_down_past_timeout(self):
        """A resident that has not drained for the full bubble timeout is
        wedged in a different cycle (deadlock web): the FSM must give the
        chain up via the enable replay — clearing the path's seals — and
        resume detection, or the seal and the recovery hang forever."""
        net, scheme = build_2x2_ring_deadlock(t_dd=FROZEN)
        net.config.sb_bubble_timeout = 16
        state = _arm_sb_active(net, scheme, in_port=S)
        router = net.routers[3]
        router.bubble.packet = router.input_vcs[S][0].packet  # simulate claim
        now = state.bubble_active_since + net.config.sb_bubble_timeout
        scheme._sb_active_watchdog(net, router, state, now)
        assert state.fsm.state == FsmState.S_ENABLE
        assert net.stats.enables_sent == 1
        # The resident stays in the bubble (still switchable) until it can
        # drain or be relocated; it must not be lost.
        assert router.bubble.packet is not None
