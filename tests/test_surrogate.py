"""Tests for the calibrated analytical fast lane (repro.surrogate).

The accuracy regression calibrates on a handful of real cycle-accurate
cells (small windows keep the suite fast) and pins the fig8-point error;
the property tests exercise the raw model's structural guarantees
(monotonicity, the zero-load hop bound) with no simulation at all.
"""

import json
import random

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.spec import SimSpec, run_sim_spec, spec_identity
from repro.service.store import CODE_SALT, ResultStore, spec_fingerprint
from repro.sim.config import SimConfig
from repro.surrogate import SurrogateOracle, synthetic_cell_predictor
from repro.surrogate.calibrate import (
    CalibrationTable,
    Sample,
    calibrate_from_store,
    cell_key,
)
from repro.surrogate.model import AnalyticalModel, _demand
from repro.surrogate.uncertainty import (
    MAX_BOUND_ENV_VAR,
    UncertaintyGate,
    support_distance,
)
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh

#: The fig8 cell shape used throughout (small windows, real simulation).
FIG8 = dict(
    width=8, height=8, link_faults=4, scheme="static-bubble",
    pattern="uniform_random", warmup=150, measure=400, seed=3,
)


def _store_exact(store, **overrides):
    spec = SimSpec(**{**FIG8, **overrides})
    payload = run_sim_spec(spec.to_dict())
    store.put(spec_fingerprint(spec_identity(spec.to_dict())), payload)
    return spec, payload


@pytest.fixture()
def store(tmp_path):
    return ResultStore(root=tmp_path / "store", registry=MetricsRegistry())


@pytest.fixture(scope="module")
def calibrated():
    """One module-scoped calibrated oracle (3 exact cells, ~1 s)."""
    import tempfile
    from pathlib import Path

    store = ResultStore(
        root=Path(tempfile.mkdtemp(prefix="repro-surrogate-test-")),
        registry=MetricsRegistry(),
    )
    truths = {}
    for rate in (0.01, 0.02, 0.04):
        _, payload = _store_exact(store, rate=rate)
        truths[rate] = payload
    oracle = SurrogateOracle(store=store, registry=store.registry)
    oracle.calibration  # force the harvest
    return oracle, truths


class TestDemandModel:
    def test_uniform_mass_is_one_per_source(self):
        topo = mesh(4, 4)
        demand = _demand(topo, "uniform_random")
        assert len(demand) == 16
        for dsts in demand.values():
            assert sum(dsts.values()) == pytest.approx(1.0)

    def test_unknown_pattern_raises(self):
        with pytest.raises(ValueError):
            _demand(mesh(4, 4), "tornado")

    def test_transpose_diagonal_sources_inactive(self):
        demand = _demand(mesh(4, 4), "transpose")
        diagonal = {mesh(4, 4).node_id(i, i) for i in range(4)}
        assert diagonal.isdisjoint(demand)


class TestRawModelProperties:
    def test_latency_monotone_in_offered_load(self):
        """Property: raw latency never decreases as the rate rises."""
        model = AnalyticalModel()
        topo = inject_link_faults(mesh(8, 8), 4, random.Random(3))
        config = SimConfig()
        rates = [0.002 * i for i in range(1, 120)]  # through saturation
        latencies = [
            model.predict_cell(
                topo, "static-bubble", "uniform_random", r, config, 150, 400
            ).latency
            for r in rates
        ]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))

    def test_latency_at_least_zero_load_hop_bound(self):
        model = AnalyticalModel()
        topo = mesh(6, 6)
        config = SimConfig()
        for scheme in ("static-bubble", "spanning-tree", "escape-vc"):
            for rate in (0.001, 0.05, 0.3):
                raw = model.predict_cell(
                    topo, scheme, "uniform_random", rate, config, 100, 200
                )
                assert raw.latency >= raw.hop_bound
                assert raw.hop_bound > 0

    def test_saturation_rate_finite_and_positive(self):
        model = AnalyticalModel()
        raw = model.predict_cell(
            mesh(6, 6), "static-bubble", "uniform_random", 0.05,
            SimConfig(), 100, 200,
        )
        assert 0 < raw.saturation_rate < float("inf")

    def test_spanning_tree_saturates_earlier_than_minimal(self):
        """Up/down routing concentrates load near the root, so the model
        must predict a lower saturation rate than balanced minimal paths
        (hop counts are near-identical on a healthy mesh — up/down paths
        are close to minimal — so saturation is the discriminator)."""
        model = AnalyticalModel()
        topo = mesh(6, 6)
        config = SimConfig()
        tree = model.profile(topo, "spanning-tree", "uniform_random", config)
        minimal = model.profile(topo, "static-bubble", "uniform_random", config)
        assert tree.saturation_rate < minimal.saturation_rate

    def test_profile_cache_reused_across_rates(self):
        model = AnalyticalModel()
        topo = mesh(4, 4)
        config = SimConfig()
        p1 = model.profile(topo, "static-bubble", "uniform_random", config)
        p2 = model.profile(topo, "static-bubble", "uniform_random", config)
        assert p1 is p2


class TestCalibration:
    def test_fit_recovers_linear_correction(self):
        from repro.surrogate.calibrate import _fit_metric

        pairs = [(x, 0.75 * x + 2.0) for x in (5.0, 10.0, 20.0, 40.0)]
        fit = _fit_metric(pairs)
        assert fit.scale == pytest.approx(0.75)
        assert fit.offset == pytest.approx(2.0)
        assert fit.residual == pytest.approx(0.05)  # floored, not zero

    def test_fit_scale_stays_positive(self):
        from repro.surrogate.calibrate import _fit_metric

        fit = _fit_metric([(1.0, 10.0), (2.0, 5.0), (3.0, 1.0)])
        assert fit.scale > 0  # monotonicity preserved over fidelity

    def test_harvest_from_store(self, store):
        for rate in (0.01, 0.03):
            _store_exact(store, rate=rate)
        store.put(spec_fingerprint({"kind": "manifest"}), {"cells": {}})
        table = calibrate_from_store(store, AnalyticalModel())
        assert table.sample_count == 2
        assert set(table.cells) == {"mesh/static-bubble"}
        cell = table.cells["mesh/static-bubble"]
        assert cell.fits["latency"].samples == 2
        assert cell.fits["energy"].samples == 2  # stats carry the counters

    def test_persistence_round_trip(self, store, tmp_path):
        _store_exact(store, rate=0.02)
        table = calibrate_from_store(store, AnalyticalModel())
        path = tmp_path / "calib.json"
        table.save(path)
        loaded = CalibrationTable.load(path)
        assert loaded is not None
        assert loaded.fingerprint() == table.fingerprint()

    def test_salt_mismatch_discards_table(self, tmp_path):
        table = CalibrationTable()
        path = tmp_path / "calib.json"
        table.save(path)
        doc = json.loads(path.read_text())
        doc["code_salt"] = "repro-0.0.0-schema0"
        path.write_text(json.dumps(doc))
        assert CalibrationTable.load(path) is None

    def test_fingerprint_changes_with_samples(self):
        table = CalibrationTable()
        before = table.fingerprint()
        table.ensure_cell("mesh", "static-bubble").add(
            Sample("ab" * 32, (0.1, 6.0, 60.0), {"latency": 20.0}, {"latency": 15.0})
        )
        assert table.fingerprint() != before


class TestUncertainty:
    SUPPORT = [(0.1, 6.0, 60.0), (0.2, 6.0, 60.0), (0.4, 6.0, 60.0)]

    def test_distance_zero_on_support(self):
        assert support_distance(self.SUPPORT[1], self.SUPPORT) == 0.0

    def test_distance_grows_off_support(self):
        near = support_distance((0.25, 6.0, 60.0), self.SUPPORT)
        far = support_distance((0.9, 6.0, 60.0), self.SUPPORT)
        assert 0 < near < far

    def test_empty_support_is_unbounded(self):
        assert support_distance((0.1, 6.0, 60.0), []) == float("inf")

    def test_gate_env_override(self, monkeypatch):
        monkeypatch.setenv(MAX_BOUND_ENV_VAR, "0.07")
        assert UncertaintyGate().max_bound == 0.07
        monkeypatch.setenv(MAX_BOUND_ENV_VAR, "not-a-number")
        assert UncertaintyGate().max_bound == UncertaintyGate(0.25).max_bound


class TestOracleAccuracy:
    def test_fig8_point_error_within_20pct(self, calibrated):
        """Acceptance: calibrated fig8-point latency error <= 20%."""
        oracle, truths = calibrated
        for rate, truth in truths.items():
            spec = SimSpec(**{**FIG8, "rate": rate})
            prediction = oracle.predict(spec)
            true_latency = truth["result"]["avg_latency"]
            err = abs(prediction.latency - true_latency) / true_latency
            assert err <= 0.20, f"rate {rate}: {err:.1%}"

    def test_calibrated_latency_keeps_hop_bound(self, calibrated):
        oracle, _ = calibrated
        prediction = oracle.predict(SimSpec(**{**FIG8, "rate": 0.001}))
        assert prediction.latency >= prediction.raw.hop_bound

    def test_every_answer_carries_bound_and_provenance(self, calibrated):
        oracle, _ = calibrated
        spec = SimSpec(**{**FIG8, "rate": 0.02, "mode": "surrogate"})
        payload = oracle.answer(spec)
        assert payload is not None
        meta = payload["surrogate"]
        assert meta["error_bound"] is not None and meta["error_bound"] > 0
        prov = meta["provenance"]
        assert prov["cell"] == cell_key("mesh", "static-bubble")
        assert prov["code_salt"] == CODE_SALT
        assert prov["calibration_fingerprint"] == oracle.calibration.fingerprint()
        assert payload["result"]["avg_latency"] > 0


class TestOracleGating:
    def test_exact_mode_never_answers(self, calibrated):
        oracle, _ = calibrated
        assert oracle.answer(SimSpec(**{**FIG8, "rate": 0.02})) is None

    def test_auto_answers_in_support_escalates_far_out(self, calibrated):
        oracle, _ = calibrated
        near = SimSpec(**{**FIG8, "rate": 0.02, "mode": "auto"})
        assert oracle.answer(near) is not None
        # A 12x12 mesh with different fault count: no calibration cellmate
        # features anywhere near support on load/hops/nodes -> escalate.
        far = SimSpec(
            width=12, height=12, link_faults=0, scheme="static-bubble",
            pattern="uniform_random", rate=0.30, warmup=150, measure=400,
            seed=3, mode="auto",
        )
        assert oracle.answer(far) is None

    def test_uncalibrated_cell_escalates_in_auto(self, store):
        oracle = SurrogateOracle(store=store, registry=store.registry)
        spec = SimSpec(**{**FIG8, "rate": 0.02, "mode": "auto"})
        assert oracle.answer(spec) is None
        assert store.registry.counters["surrogate.escalated"] == 1

    def test_unknown_pattern_escalates_auto_raises_forced(self, calibrated):
        oracle, _ = calibrated
        auto = SimSpec(**{**FIG8, "pattern": "tornado", "mode": "auto"})
        assert oracle.answer(auto) is None
        forced = SimSpec(**{**FIG8, "pattern": "tornado", "mode": "surrogate"})
        with pytest.raises(ValueError):
            oracle.answer(forced)

    def test_observe_feeds_calibration(self, store):
        spec, payload = _store_exact(store, rate=0.02)
        oracle = SurrogateOracle(store=store, registry=store.registry)
        before = oracle.calibration.sample_count
        spec2 = SimSpec(**{**FIG8, "rate": 0.01})
        payload2 = run_sim_spec(spec2.to_dict())
        assert oracle.observe(spec2.to_dict(), payload2)
        assert oracle.calibration.sample_count == before + 1
        # Persisted: a fresh oracle over the same store root reloads it.
        again = SurrogateOracle(store=store, registry=MetricsRegistry())
        assert again.calibration.sample_count == before + 1

    def test_observe_skips_surrogate_payloads(self, calibrated):
        oracle, _ = calibrated
        spec = SimSpec(**{**FIG8, "rate": 0.02, "mode": "surrogate"})
        payload = oracle.answer(spec)
        assert not oracle.observe(spec.to_dict(), payload)


class TestSpecModeField:
    def test_mode_is_execution_only(self):
        exact = SimSpec(**{**FIG8, "mode": "exact"})
        auto = SimSpec(**{**FIG8, "mode": "auto"})
        assert spec_fingerprint(spec_identity(exact.to_dict())) == spec_fingerprint(
            spec_identity(auto.to_dict())
        )

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SimSpec.from_dict({**SimSpec().to_dict(), "mode": "psychic"})


class TestFanOutFastLane:
    def test_predictor_answers_whole_sweep(self, calibrated):
        from repro.experiments.common import fan_out

        oracle, _ = calibrated
        spec = SimSpec(**FIG8)
        topo = spec.build_topology()
        config = spec.build_config()
        argslist = [
            (topo, "static-bubble", "uniform_random", rate, config, 150, 400, 3)
            for rate in (0.01, 0.02, 0.04)
        ]
        predictor = synthetic_cell_predictor(oracle)

        def must_not_run(*args):  # pragma: no cover - the assertion
            raise AssertionError("cell escalated unexpectedly")

        results = fan_out(
            must_not_run, argslist, workers=1, cached=False,
            mode="auto", predictor=predictor,
        )
        assert len(results) == 3
        for latency, packets in results:
            assert latency > 0 and packets > 0

    def test_escalated_cells_keep_positions(self, calibrated):
        from repro.experiments.common import fan_out

        oracle, _ = calibrated
        spec = SimSpec(**FIG8)
        topo = spec.build_topology()
        config = spec.build_config()
        argslist = [
            (topo, "static-bubble", "uniform_random", 0.02, config, 150, 400, 3),
            (topo, "static-bubble", "tornado", 0.02, config, 150, 400, 3),
        ]

        def exact_stub(topo, scheme, pattern, rate, config, warmup, measure, seed):
            return ("exact", pattern)

        results = fan_out(
            exact_stub, argslist, workers=1, cached=False,
            mode="auto", predictor=synthetic_cell_predictor(oracle),
        )
        assert isinstance(results[0], tuple) and results[0][0] != "exact"
        assert results[1] == ("exact", "tornado")

    def test_exact_mode_bypasses_predictor(self):
        from repro.experiments.common import fan_out

        def poison(args, mode):  # pragma: no cover - the assertion
            raise AssertionError("predictor consulted in exact mode")

        results = fan_out(_double, [(2,), (3,)], workers=1, mode="exact", predictor=poison)
        assert results == [4, 6]

    def test_resolve_mode_env(self, monkeypatch):
        from repro.experiments.common import MODE_ENV_VAR, resolve_mode

        monkeypatch.delenv(MODE_ENV_VAR, raising=False)
        assert resolve_mode() == "exact"
        monkeypatch.setenv(MODE_ENV_VAR, "auto")
        assert resolve_mode() == "auto"
        assert resolve_mode("surrogate") == "surrogate"
        monkeypatch.setenv(MODE_ENV_VAR, "bogus")
        assert resolve_mode() == "exact"


def _double(x):
    return x * 2


class TestServerFastLane:
    @pytest.fixture()
    def server(self, tmp_path, calibrated):
        from repro.service.server import ServiceServer

        oracle, _ = calibrated
        store = oracle.store  # pre-calibrated store: the lane can answer
        with ServiceServer(port=0, store=store, workers=2, quiet=True) as srv:
            yield srv

    def test_surrogate_submission_answers_synchronously(self, server):
        from repro.service.client import ServiceClient

        client = ServiceClient(server.url)
        # Rate 0.015 is inside support but NOT a calibration seed, so the
        # store has no exact entry for it before or after the answer.
        spec = SimSpec(**{**FIG8, "rate": 0.015, "mode": "surrogate"})
        from repro.service.server import fingerprint_for

        assert server.store.get(fingerprint_for(spec)) is None
        payload = client.submit(spec)
        assert payload["status"] == "done"
        assert payload.get("surrogate") is True
        meta = payload["result"]["surrogate"]
        assert meta["error_bound"] is not None
        assert meta["provenance"]["cell"] == "mesh/static-bubble"
        # The exact store was not polluted by the synchronous answer.
        assert server.store.get(fingerprint_for(spec)) is None

    def test_surrogate_status_endpoint(self, server):
        import urllib.request

        with urllib.request.urlopen(server.url + "/surrogate") as response:
            status = json.loads(response.read())
        assert status["samples"] == 3
        assert "mesh/static-bubble" in status["cells"]

    def test_exact_mode_still_simulates(self, server):
        from repro.service.client import ServiceClient

        client = ServiceClient(server.url)
        spec = SimSpec(width=3, height=3, rate=0.03, warmup=30, measure=80, seed=5)
        payload = client.run(spec, timeout=60)
        assert payload["status"] == "done"
        assert "surrogate" not in payload
        assert "stats" in payload["result"]
