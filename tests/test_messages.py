"""Unit tests for special control messages."""

import pytest

from repro.core.messages import (
    FORWARD_PRIORITY,
    MsgType,
    SpecialMessage,
    make_path_message,
    make_probe,
)
from repro.core.turns import PROBE_TURN_CAPACITY, Port, Turn


class TestPriorities:
    def test_check_probe_highest(self):
        assert FORWARD_PRIORITY[MsgType.CHECK_PROBE] > FORWARD_PRIORITY[MsgType.DISABLE]

    def test_disable_enable_equal(self):
        assert FORWARD_PRIORITY[MsgType.DISABLE] == FORWARD_PRIORITY[MsgType.ENABLE]

    def test_probe_lowest(self):
        assert FORWARD_PRIORITY[MsgType.PROBE] < FORWARD_PRIORITY[MsgType.ENABLE]

    def test_priority_property(self):
        msg = make_probe(5, Port.NORTH)
        assert msg.priority == FORWARD_PRIORITY[MsgType.PROBE]


class TestProbe:
    def test_fresh_probe(self):
        probe = make_probe(12, Port.EAST)
        assert probe.mtype == MsgType.PROBE
        assert probe.sender == 12
        assert probe.turns == ()
        assert probe.travel == Port.EAST
        assert probe.origin_out == Port.EAST

    def test_turn_append_preserves_origin(self):
        probe = make_probe(12, Port.EAST)
        forked = probe.with_turn_appended(Turn.LEFT, Port.NORTH)
        assert forked.turns == (Turn.LEFT,)
        assert forked.travel == Port.NORTH
        assert forked.origin_out == Port.EAST
        assert forked.sender == 12
        # original untouched (frozen)
        assert probe.turns == ()

    def test_capacity(self):
        probe = make_probe(1, Port.EAST)
        for _ in range(PROBE_TURN_CAPACITY):
            assert not probe.at_capacity()
            probe = probe.with_turn_appended(Turn.STRAIGHT, Port.EAST)
        assert probe.at_capacity()


class TestPathMessages:
    def test_strip_head(self):
        msg = make_path_message(
            MsgType.DISABLE, 7, (Turn.LEFT, Turn.STRAIGHT), Port.NORTH
        )
        stripped = msg.with_head_stripped(Port.WEST)
        assert stripped.turns == (Turn.STRAIGHT,)
        assert stripped.travel == Port.WEST

    def test_probe_cannot_be_path_message(self):
        with pytest.raises(ValueError):
            make_path_message(MsgType.PROBE, 7, (), Port.NORTH)

    def test_all_path_types(self):
        for mtype in (MsgType.DISABLE, MsgType.ENABLE, MsgType.CHECK_PROBE):
            msg = make_path_message(mtype, 3, (Turn.RIGHT,), Port.SOUTH)
            assert msg.mtype == mtype
            assert msg.turns == (Turn.RIGHT,)

    def test_immutability(self):
        msg = make_probe(1, Port.EAST)
        with pytest.raises(Exception):
            msg.sender = 2
