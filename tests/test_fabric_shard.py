"""Tests for the sharded result store: placement, replication, rebalance.

Fingerprints are synthetic sha256 hex strings; payloads are tiny dicts.
Shard "outages" are simulated by deleting a shard's root directory —
exactly what an unmounted disk looks like to the local-filesystem
stand-in.
"""

import hashlib
import json
import shutil

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.fabric import Shard, ShardMap, ShardedResultStore, rebalance

N_KEYS = 400


def fps(n=N_KEYS):
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


def make_map(tmp_path, n_shards, replicas=2, names=None):
    shards = [
        Shard(name=names[i] if names else f"s{i}", root=str(tmp_path / f"s{i}"))
        for i in range(n_shards)
    ]
    return ShardMap(shards=shards, replicas=replicas)


class TestShardMap:
    def test_owners_primary_first_and_distinct(self, tmp_path):
        smap = make_map(tmp_path, 3, replicas=2)
        for fp in fps(50):
            owners = smap.owners(fp)
            assert len(owners) == 2
            assert len(set(owners)) == 2
            assert smap.primary(fp) == owners[0]

    def test_owners_deterministic(self, tmp_path):
        a = make_map(tmp_path, 3)
        b = make_map(tmp_path, 3)
        for fp in fps(50):
            assert a.owners(fp) == b.owners(fp)

    def test_replicas_clamped_to_shard_count(self, tmp_path):
        smap = make_map(tmp_path, 2, replicas=5)
        assert smap.replicas == 2
        assert len(smap.owners(fps(1)[0])) == 2

    def test_duplicate_names_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_map(tmp_path, 2, names=["dup", "dup"])

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(shards=[])

    def test_bad_fingerprint_rejected(self, tmp_path):
        smap = make_map(tmp_path, 2)
        with pytest.raises(ValueError):
            smap.owners("not-hex!")

    def test_adding_shard_moves_minority_of_keys(self, tmp_path):
        """The consistent-hashing claim: growing 3 -> 4 shards relocates
        roughly 1/4 of primaries, never a majority."""
        before = make_map(tmp_path, 3, replicas=1)
        after = make_map(tmp_path, 4, replicas=1)
        moved = sum(
            1 for fp in fps() if before.primary(fp) != after.primary(fp)
        )
        assert 0 < moved < N_KEYS // 2

    def test_balance_roughly_even(self, tmp_path):
        smap = make_map(tmp_path, 4, replicas=1)
        counts = {}
        for fp in fps():
            counts[smap.primary(fp)] = counts.get(smap.primary(fp), 0) + 1
        assert len(counts) == 4
        assert min(counts.values()) > N_KEYS // 16

    def test_rerooting_preserves_placement(self, tmp_path):
        """Names are hashed, not roots: moving a shard to a new disk
        relocates zero keys."""
        a = ShardMap(shards=[Shard("x", str(tmp_path / "old"))], replicas=1)
        b = ShardMap(shards=[Shard("x", str(tmp_path / "new"))], replicas=1)
        fp = fps(1)[0]
        assert a.owners(fp) == b.owners(fp)

    def test_save_load_roundtrip(self, tmp_path):
        smap = make_map(tmp_path, 3, replicas=2)
        path = tmp_path / "map.json"
        smap.save(path)
        loaded = ShardMap.load(path)
        assert loaded.replicas == smap.replicas
        assert [s.to_dict() for s in loaded.shards] == [
            s.to_dict() for s in smap.shards
        ]
        for fp in fps(20):
            assert loaded.owners(fp) == smap.owners(fp)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(["not", "a", "map"]))
        with pytest.raises(ValueError):
            ShardMap.load(path)

    def test_local_convenience(self, tmp_path):
        smap = ShardMap.local([tmp_path / "a", tmp_path / "b"])
        assert [s.name for s in smap.shards] == ["s0", "s1"]


@pytest.fixture()
def sharded(tmp_path):
    smap = make_map(tmp_path, 3, replicas=2)
    return ShardedResultStore(smap, registry=MetricsRegistry())


class TestShardedResultStore:
    def test_put_get_roundtrip(self, sharded):
        fp = fps(1)[0]
        sharded.put(fp, {"v": 1})
        assert sharded.get(fp) == {"v": 1}
        assert sharded.contains(fp)

    def test_put_replicates_to_owner_set(self, sharded):
        fp = fps(1)[0]
        sharded.put(fp, {"v": 1})
        for name in sharded.map.owners(fp):
            assert sharded.shard_store(name).contains(fp)
        for shard in sharded.map.shards:
            if shard.name not in sharded.map.owners(fp):
                assert not sharded.shard_store(shard.name).contains(fp)

    def test_len_dedups_replicas(self, sharded):
        keys = fps(10)
        for fp in keys:
            sharded.put(fp, {"fp": fp})
        assert len(sharded) == 10
        assert sorted(sharded.iter_fingerprints()) == sorted(keys)

    def test_readthrough_heals_primary(self, sharded):
        fp = fps(1)[0]
        sharded.put(fp, {"v": 42})
        primary = sharded.map.primary(fp)
        sharded.shard_store(primary).path_for(fp).unlink()
        assert not sharded.shard_store(primary).contains(fp)
        # Read falls through to the replica and heals the primary copy.
        assert sharded.get(fp) == {"v": 42}
        assert sharded.shard_store(primary).contains(fp)
        counters = sharded.registry.counters
        assert counters.get("service.shard.readthrough", 0) >= 1

    def test_all_replicas_lost_is_a_miss(self, sharded):
        fp = fps(1)[0]
        sharded.put(fp, {"v": 1})
        for name in sharded.map.owners(fp):
            sharded.shard_store(name).path_for(fp).unlink()
        assert sharded.get(fp) is None
        assert not sharded.contains(fp)

    def test_put_survives_replica_outage(self, sharded, tmp_path):
        fp = fps(1)[0]
        owners = sharded.map.owners(fp)
        replica_root = sharded.shard_store(owners[1]).root
        shutil.rmtree(replica_root)
        # Make the replica root un-creatable so its put really fails.
        replica_root.write_text("a file where a directory should be")
        sharded.put(fp, {"v": 1})
        assert sharded.get(fp) == {"v": 1}
        counters = sharded.registry.counters
        assert counters.get("service.shard.replica_failed", 0) >= 1

    def test_health_degrades_on_missing_shard_dir(self, sharded):
        assert sharded.health()["ok"] is True
        victim = sharded.map.shards[1]
        shutil.rmtree(victim.root)
        health = sharded.health()
        assert health["ok"] is False
        assert health["shards"][victim.name] is False

    def test_query_and_iter_entries(self, sharded):
        for i, fp in enumerate(fps(6)):
            sharded.put(fp, {"i": i})
        hits = list(sharded.query(lambda payload: payload["i"] % 2 == 0))
        assert len(hits) == 3
        assert len(list(sharded.iter_entries())) == 6

    def test_clear(self, sharded):
        for fp in fps(4):
            sharded.put(fp, {"v": 1})
        assert sharded.clear() > 0
        assert len(sharded) == 0


class TestRebalance:
    def test_new_shard_receives_its_keys(self, tmp_path):
        old = ShardedResultStore(
            make_map(tmp_path, 3, replicas=2), registry=MetricsRegistry()
        )
        keys = fps(60)
        for fp in keys:
            old.put(fp, {"fp": fp})
        new_map = make_map(tmp_path, 4, replicas=2)
        new = ShardedResultStore(new_map, registry=MetricsRegistry())
        report = rebalance(new)
        assert report["scanned"] == 60
        assert report["copied"] > 0
        assert report["skipped"] == 0
        for fp in keys:
            for name in new_map.owners(fp):
                assert new.shard_store(name).contains(fp)

    def test_prune_removes_stale_copies(self, tmp_path):
        old = ShardedResultStore(
            make_map(tmp_path, 3, replicas=2), registry=MetricsRegistry()
        )
        keys = fps(60)
        for fp in keys:
            old.put(fp, {"fp": fp})
        new_map = make_map(tmp_path, 4, replicas=2)
        new = ShardedResultStore(new_map, registry=MetricsRegistry())
        rebalance(new, prune=True)
        for fp in keys:
            owners = set(new_map.owners(fp))
            holders = {
                shard.name
                for shard in new_map.shards
                if new.shard_store(shard.name).contains(fp)
            }
            assert holders == owners
        # Nothing lost: every key still readable.
        for fp in keys:
            assert new.get(fp) == {"fp": fp}

    def test_rebalance_idempotent(self, tmp_path):
        store = ShardedResultStore(
            make_map(tmp_path, 3, replicas=2), registry=MetricsRegistry()
        )
        for fp in fps(20):
            store.put(fp, {"fp": fp})
        first = rebalance(store, prune=True)
        second = rebalance(store, prune=True)
        assert second["copied"] == 0
        assert second["pruned"] == 0
        assert second["scanned"] == first["scanned"]
