"""The paper's Fig. 6 walk-through, reproduced as a test.

A six-router dependency ring with two-deep ports (the paper's VC
configuration for the example) on a 4x2 mesh whose only on-ring
static-bubble router corresponds to the paper's node 5.  The ring's
geometry is chosen so the probe records the walk-through's exact turn
sequence — (L, L, S, L, L) — before returning to its sender, after which
the disable/bubble/check_probe/enable sequence drains all twelve packets.

Ring (clockwise): 0 -E-> 1 -E-> 2 -N-> 6 -W-> 5 -W-> 4 -S-> 0.
Static bubbles on a 4x2 mesh sit at nodes 5=(1,1) and 7=(3,1); only
node 5 is on the ring, exactly like the paper's example.
"""

import pytest

from repro.core.fsm import FsmState
from repro.core.messages import MsgType
from repro.core.turns import Port, Turn
from repro.sim.deadlock import find_wait_cycle
from repro.sim.scenarios import build_fig6_walkthrough as build_fig6_network

E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL


class TestFig6Walkthrough:
    def test_ring_is_a_true_deadlock(self):
        net, _ = build_fig6_network()
        cycle = find_wait_cycle(net, 0)
        assert cycle is not None
        assert len(cycle) >= 6

    def test_probe_records_paper_turn_sequence(self):
        """The probe from node 5 must come back carrying (L, L, S, L, L)."""
        net, scheme = build_fig6_network()
        fsm = scheme.states[5].fsm
        for _ in range(60):
            net.step()
            if fsm.state == FsmState.S_DISABLE:
                break
        assert fsm.state in (
            FsmState.S_DISABLE,
            FsmState.S_SB_ACTIVE,
            FsmState.S_CHECK_PROBE,
        ), "probe never returned"
        assert fsm.turn_buffer == (
            Turn.LEFT, Turn.LEFT, Turn.STRAIGHT, Turn.LEFT, Turn.LEFT
        )
        # The probe left westward and returned on the East port.
        assert fsm.probe_out_port == W
        assert fsm.probe_in_port == E

    def test_full_recovery_drains_all_twelve_packets(self):
        net, scheme = build_fig6_network()
        done = None
        for _ in range(1500):
            net.step()
            if net.stats.packets_ejected == 12:
                done = net.cycle
                break
        assert done is not None, "ring did not drain"
        assert find_wait_cycle(net, net.cycle) is None
        assert net.stats.bubble_activations >= 1

    def test_cleanup_is_complete(self):
        net, scheme = build_fig6_network()
        for _ in range(1500):
            net.step()
            if net.stats.packets_ejected == 12:
                break
        net.run(400)  # let the enable round finish
        for router in net.active_routers():
            assert not router.is_deadlock
            if router.bubble is not None:
                assert not router.bubble_active
                assert router.bubble.packet is None
        fsm = scheme.states[5].fsm
        assert fsm.state in (FsmState.S_OFF, FsmState.S_DD)
        assert fsm.turn_buffer == ()

    def test_disable_seals_the_ring(self):
        """While recovery is underway, the traced routers lock the ring's
        output ports to the ring's input (no new entrants)."""
        net, scheme = build_fig6_network()
        sealed_seen = set()
        for _ in range(80):
            net.step()
            for router in net.active_routers():
                if router.is_deadlock:
                    sealed_seen.add(router.node)
            if scheme.states[5].fsm.state == FsmState.S_SB_ACTIVE:
                break
        # The disable traverses 4,0,1,2,6 before returning to 5.
        assert sealed_seen >= {4, 0, 1, 2, 6}

    def test_off_ring_bubble_router_uninvolved(self):
        """Node 7's FSM watches nothing (its ports are empty) and its
        bubble never activates — only the on-ring SB router acts."""
        net, scheme = build_fig6_network()
        for _ in range(400):
            net.step()
            if net.stats.packets_ejected == 12:
                break
        assert scheme.states[7].fsm.probes_sent == 0
        assert not net.routers[7].bubble_active
