"""Tests for the job queue, campaign manifests, and the fan_out cache.

The runners are module-level (picklable) and record each *execution* as
a uniquely named file in a directory passed through the spec — counting
those files proves the dedup/coalescing claims across process
boundaries, where in-memory counters cannot.
"""

import json
import threading
import time
import uuid
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.experiments.common import fan_out
from repro.service.queue import (
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    JobQueue,
    QueueFull,
    run_campaign,
)
from repro.service.store import ResultStore, spec_fingerprint


def _log_execution(spec):
    log_dir = spec.get("log_dir")
    if log_dir:
        stamp = f"{time.monotonic():.6f} {spec.get('tag', '')}"
        (Path(log_dir) / uuid.uuid4().hex).write_text(stamp)


def runner_ok(spec):
    _log_execution(spec)
    return {"value": spec["value"] * 2}


def runner_sleepy(spec):
    _log_execution(spec)
    time.sleep(spec["sleep"])
    return {"slept": spec["sleep"]}


def runner_flaky(spec):
    marker = Path(spec["marker"])
    if not marker.exists():
        marker.write_text("failed once")
        raise RuntimeError("transient failure")
    return {"recovered": True}


def runner_boom(spec):
    raise ValueError("this spec always fails")


@pytest.fixture()
def store(tmp_path):
    return ResultStore(root=tmp_path / "store", registry=MetricsRegistry())


def make_queue(store, runner, **kwargs):
    kwargs.setdefault("workers", 2)
    return JobQueue(runner=runner, store=store, **kwargs)


class TestJobQueue:
    def test_fresh_submit_executes_and_persists(self, store, tmp_path):
        with make_queue(store, runner_ok) as queue:
            record, fresh = queue.submit({"value": 21, "log_dir": str(tmp_path)})
            assert fresh
            record = queue.wait(record.job_id, timeout=30)
        assert record.state == DONE
        assert record.result == {"value": 42}
        assert store.get(record.job_id) == {"value": 42}
        assert store.registry.counters["service.queue.executed"] == 1

    def test_store_hit_completes_instantly(self, store):
        spec = {"value": 5}
        fp = spec_fingerprint(spec)
        store.put(fp, {"value": 10})
        queue = make_queue(store, runner_ok)  # never started: no execution
        record, fresh = queue.submit(spec)
        assert not fresh
        assert record.state == DONE
        assert record.cached
        assert record.result == {"value": 10}

    def test_engine_field_excluded_from_identity(self, store, tmp_path):
        """Specs differing only in ``engine`` coalesce onto one result:
        the engines are bit-identical, so a fast-engine submission must
        hit the cache entry a reference-engine run produced."""
        with make_queue(store, runner_ok) as queue:
            ref, fresh1 = queue.submit(
                {"value": 3, "engine": "reference", "log_dir": str(tmp_path)}
            )
            queue.wait(ref.job_id, timeout=30)
            fast, fresh2 = queue.submit(
                {"value": 3, "engine": "fast", "log_dir": str(tmp_path)}
            )
            assert fresh1 and not fresh2
            assert fast.job_id == ref.job_id
            assert fast.state == DONE

    def test_batched_execution_matches(self, store, tmp_path):
        """A batch_size'd queue produces the same results/records."""
        with make_queue(store, runner_ok, batch_size=4) as queue:
            records = [
                queue.submit({"value": v, "log_dir": str(tmp_path)})[0]
                for v in range(8)
            ]
            for record in records:
                queue.wait(record.job_id, timeout=30)
        for v, record in enumerate(records):
            assert record.result == {"value": v * 2}

    def test_inflight_coalescing(self, store, tmp_path):
        spec = {"value": 1, "sleep": 0.4, "log_dir": str(tmp_path / "runs")}
        (tmp_path / "runs").mkdir()
        with make_queue(store, runner_sleepy) as queue:
            first, fresh1 = queue.submit(spec)
            second, fresh2 = queue.submit(spec)
            assert fresh1 and not fresh2
            assert first is second
            queue.wait(first.job_id, timeout=30)
        assert len(list((tmp_path / "runs").iterdir())) == 1
        assert store.registry.counters["service.queue.coalesced"] == 1

    def test_concurrent_duplicate_submissions_single_execution(
        self, store, tmp_path
    ):
        """Acceptance: N racing identical submissions -> one simulation."""
        runs = tmp_path / "runs"
        runs.mkdir()
        spec = {"value": 9, "sleep": 0.3, "log_dir": str(runs)}
        with make_queue(store, runner_sleepy) as queue:
            records = []
            barrier = threading.Barrier(8)

            def submit():
                barrier.wait()
                records.append(queue.submit(spec)[0])

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            queue.wait(records[0].job_id, timeout=30)
        assert len({id(r) for r in records}) == 1
        assert len(list(runs.iterdir())) == 1

    def test_priority_order(self, store, tmp_path):
        runs = tmp_path / "runs"
        runs.mkdir()
        queue = make_queue(store, runner_ok, workers=1)
        # Submitted low-first; the high-priority spec must execute first.
        low, _ = queue.submit({"value": 1, "tag": "low", "log_dir": str(runs)}, priority=0)
        high, _ = queue.submit({"value": 2, "tag": "high", "log_dir": str(runs)}, priority=5)
        with queue:
            queue.wait(low.job_id, timeout=30)
            queue.wait(high.job_id, timeout=30)
        order = sorted(
            (f.read_text() for f in runs.iterdir()),
            key=lambda line: float(line.split()[0]),
        )
        assert [line.split()[1] for line in order] == ["high", "low"]

    def test_queue_full_backpressure(self, store, tmp_path):
        with make_queue(store, runner_sleepy, workers=1, max_depth=1) as queue:
            first, _ = queue.submit({"value": 0, "sleep": 1.0})
            with pytest.raises(QueueFull):
                queue.submit({"value": 1, "sleep": 1.0})
            queue.wait(first.job_id, timeout=30)
        assert store.registry.counters["service.queue.rejected"] == 1

    def test_retry_recovers_transient_failure(self, store, tmp_path):
        marker = tmp_path / "marker"
        with make_queue(
            store, runner_flaky, retries=2, backoff=0.01
        ) as queue:
            record, _ = queue.submit({"marker": str(marker)})
            record = queue.wait(record.job_id, timeout=30)
        assert record.state == DONE
        assert record.attempts == 1
        assert record.result == {"recovered": True}
        assert store.registry.counters["service.queue.retried"] == 1

    def test_permanent_failure_reports_error(self, store):
        with make_queue(store, runner_boom, retries=0) as queue:
            record, _ = queue.submit({"value": 1})
            record = queue.wait(record.job_id, timeout=30)
        assert record.state == FAILED
        assert "ValueError" in record.error
        assert store.registry.counters["service.queue.failed"] == 1

    def test_timeout_enforced_in_pool_workers(self, store):
        queue = make_queue(
            store, runner_sleepy, workers=2, timeout=0.4, retries=0
        )
        # Two pending jobs so the batch takes the pool path, where the
        # portable wall-clock budget (join-with-deadline, no signals)
        # bounds each job.
        a, _ = queue.submit({"value": 0, "sleep": 30.0})
        b, _ = queue.submit({"value": 1, "sleep": 30.0})
        start = time.monotonic()
        with queue:
            a = queue.wait(a.job_id, timeout=30)
            b = queue.wait(b.job_id, timeout=30)
        assert a.state == FAILED and b.state == FAILED
        assert "JobTimeout" in a.error
        assert store.registry.counters["service.queue.timeout"] == 2
        assert time.monotonic() - start < 20

    def test_wait_unknown_job(self, store):
        queue = make_queue(store, runner_ok)
        with pytest.raises(KeyError):
            queue.wait("no-such-job")


class TestCampaign:
    def test_cold_run_executes_and_dedupes(self, store, tmp_path):
        runs = tmp_path / "runs"
        runs.mkdir()
        specs = [
            {"value": 1, "log_dir": str(runs)},
            {"value": 2, "log_dir": str(runs)},
            {"value": 1, "log_dir": str(runs)},  # in-batch duplicate
        ]
        report = run_campaign(
            specs, store=store, runner=runner_ok, workers=2,
            manifest_path=tmp_path / "manifest.json",
        )
        assert report.total == 3
        assert report.executed == 2
        assert report.hits == 1  # the duplicate piggybacks
        assert report.failed == 0
        assert report.results[0] == report.results[2] == {"value": 2}
        assert len(list(runs.iterdir())) == 2
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert len(manifest["done"]) == 2

    def test_warm_rerun_is_all_hits(self, store, tmp_path):
        specs = [{"value": i} for i in range(4)]
        run_campaign(specs, store=store, runner=runner_ok, workers=2)
        report = run_campaign(specs, store=store, runner=runner_ok, workers=2)
        assert report.all_hits
        assert report.executed == 0
        assert report.results == [{"value": i * 2} for i in range(4)]

    def test_resume_runs_only_missing_cells(self, store, tmp_path):
        runs = tmp_path / "runs"
        runs.mkdir()
        specs = [{"value": i, "log_dir": str(runs)} for i in range(4)]
        # Simulate a killed sweep: two cells already persisted.
        for spec in specs[:2]:
            store.put(spec_fingerprint(spec), runner_ok(dict(spec, log_dir=None)))
        report = run_campaign(
            specs, store=store, runner=runner_ok, workers=2,
            manifest_path=tmp_path / "manifest.json",
        )
        assert report.hits == 2
        assert report.executed == 2
        assert len(list(runs.iterdir())) == 2  # only the missing cells ran
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert len(manifest["done"]) == 4

    def test_failed_cell_reported_not_fatal(self, store):
        report = run_campaign(
            [{"value": 1}], store=store, runner=runner_boom, workers=1
        )
        assert report.failed == 1
        assert report.results == [None]

    def test_progress_callback(self, store):
        seen = []
        run_campaign(
            [{"value": i} for i in range(3)],
            store=store,
            runner=runner_ok,
            workers=1,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (3, 3)


# -- fan_out cache --------------------------------------------------------


def _logged_pair(x, y, log_dir):
    _log_execution({"log_dir": log_dir})
    return (x + y, {"k": (x, y)})


class TestFanOutCached:
    def test_warm_rerun_identical_and_unexecuted(self, store, tmp_path):
        runs = tmp_path / "runs"
        runs.mkdir()
        argslist = [(1, 2, str(runs)), (3, 4, str(runs)), (1, 2, str(runs))]
        cold = fan_out(_logged_pair, argslist, workers=1, cached=True, store=store)
        assert len(list(runs.iterdir())) == 2  # in-sweep duplicate coalesced
        warm = fan_out(_logged_pair, argslist, workers=1, cached=True, store=store)
        assert len(list(runs.iterdir())) == 2  # nothing re-executed
        assert warm == cold
        # Round-trip fidelity: tuples stay tuples, nested keys included.
        assert isinstance(warm[0], tuple)
        assert warm[0][1]["k"] == (1, 2)
        assert store.registry.counters["service.store.hit"] >= 3

    def test_uncached_path_untouched(self, tmp_path, store):
        results = fan_out(
            _logged_pair,
            [(1, 1, str(tmp_path))],
            workers=1,
            cached=False,
            store=store,
        )
        assert results == [(2, {"k": (1, 1)})]
        assert len(store) == 0

    def test_env_var_gates_default(self, monkeypatch, store, tmp_path):
        from repro.experiments.common import CACHE_ENV_VAR, cache_enabled

        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert not cache_enabled()
        monkeypatch.setenv(CACHE_ENV_VAR, "1")
        assert cache_enabled()


class TestRecordTtl:
    def test_finished_records_pruned_after_ttl(self, store, tmp_path):
        with make_queue(store, runner_ok, record_ttl=0.05) as queue:
            record, _ = queue.submit({"value": 1, "log_dir": str(tmp_path)})
            queue.wait(record.job_id, timeout=30)
            assert queue.get(record.job_id) is not None
            time.sleep(0.1)
            assert queue.prune() == 1
            assert queue.get(record.job_id) is None
        assert store.registry.counters["service.queue.pruned"] == 1

    def test_submit_triggers_pruning(self, store, tmp_path):
        with make_queue(store, runner_ok, record_ttl=0.05) as queue:
            record, _ = queue.submit({"value": 2, "log_dir": str(tmp_path)})
            queue.wait(record.job_id, timeout=30)
            time.sleep(0.1)
            queue.submit({"value": 3, "log_dir": str(tmp_path)})
            assert queue.get(record.job_id) is None

    def test_pruned_spec_resubmits_as_store_hit(self, store, tmp_path):
        runs = tmp_path / "runs"
        runs.mkdir()
        spec = {"value": 4, "log_dir": str(runs)}
        with make_queue(store, runner_ok, record_ttl=0.05) as queue:
            record, _ = queue.submit(spec)
            queue.wait(record.job_id, timeout=30)
            time.sleep(0.1)
            queue.prune()
            # The result outlives the record: resubmission is a store hit,
            # not a re-execution.
            record2, fresh = queue.submit(spec)
            assert not fresh
            assert record2.state == DONE
            assert record2.cached
        assert len(list(runs.iterdir())) == 1

    def test_no_ttl_keeps_records_forever(self, store, tmp_path):
        with make_queue(store, runner_ok) as queue:
            record, _ = queue.submit({"value": 5, "log_dir": str(tmp_path)})
            queue.wait(record.job_id, timeout=30)
            assert queue.prune() == 0
            assert queue.get(record.job_id) is not None

    def test_pending_and_running_never_pruned(self, store, tmp_path):
        queue = make_queue(store, runner_ok, record_ttl=0.0)
        # Not started: the record stays PENDING indefinitely.
        record, _ = queue.submit({"value": 6, "log_dir": str(tmp_path)})
        assert queue.prune() == 0
        assert queue.get(record.job_id) is not None


class TestOnExecuted:
    def test_hook_sees_fresh_executions_only(self, store, tmp_path):
        seen = []
        done = threading.Event()

        def hook(spec, payload):
            seen.append((dict(spec), dict(payload)))
            done.set()

        with make_queue(store, runner_ok, on_executed=hook) as queue:
            spec = {"value": 7, "log_dir": str(tmp_path)}
            record, _ = queue.submit(spec)
            queue.wait(record.job_id, timeout=30)
            assert done.wait(timeout=5)
            # A warm resubmission is a store hit: the hook must not fire.
            queue.submit(spec)
            time.sleep(0.05)
        assert len(seen) == 1
        assert seen[0][0]["value"] == 7
        assert seen[0][1] == {"value": 14}

    def test_broken_hook_does_not_fail_the_job(self, store, tmp_path):
        def hook(spec, payload):
            raise RuntimeError("observer exploded")

        with make_queue(store, runner_ok, on_executed=hook) as queue:
            record, _ = queue.submit({"value": 8, "log_dir": str(tmp_path)})
            record = queue.wait(record.job_id, timeout=30)
        assert record.state == DONE
        assert store.registry.counters["service.queue.feedback_error"] == 1


class TestLeaseProtocol:
    """Queue-level claim/heartbeat/complete semantics (the fabric's
    at-least-once contract, without HTTP in the way)."""

    def make_remote_queue(self, store, **kwargs):
        kwargs.setdefault("local_exec", False)
        kwargs.setdefault("lease_ttl", 0.5)
        return make_queue(store, runner_ok, **kwargs)

    def test_claim_hands_out_pending_work(self, store):
        queue = self.make_remote_queue(store)
        record, _ = queue.submit({"value": 1})
        claimed = queue.claim("w1", max_jobs=4)
        assert [rec.job_id for rec in claimed] == [record.job_id]
        assert record.state == RUNNING
        assert record.worker == "w1"
        assert store.registry.counters["service.queue.claimed"] == 1

    def test_claimed_job_not_double_claimed(self, store):
        queue = self.make_remote_queue(store)
        queue.submit({"value": 1})
        assert len(queue.claim("w1")) == 1
        assert queue.claim("w2") == []

    def test_heartbeat_extends_lease(self, store):
        queue = self.make_remote_queue(store, lease_ttl=0.6)
        record, _ = queue.submit({"value": 1})
        queue.claim("w1")
        for _ in range(4):
            time.sleep(0.3)
            assert queue.heartbeat(record.job_id, "w1")
        # Lease held well past the raw TTL; nobody else can claim it.
        assert queue.claim("w2") == []

    def test_heartbeat_rejects_strangers(self, store):
        queue = self.make_remote_queue(store)
        record, _ = queue.submit({"value": 1})
        queue.claim("w1")
        assert not queue.heartbeat(record.job_id, "w2")
        assert not queue.heartbeat("no-such-job", "w1")

    def test_expired_lease_requeues(self, store):
        queue = self.make_remote_queue(store, lease_ttl=0.5)
        record, _ = queue.submit({"value": 1})
        queue.claim("w1")
        time.sleep(0.7)
        # The next claim sweeps expired leases first.
        claimed = queue.claim("w2")
        assert [rec.job_id for rec in claimed] == [record.job_id]
        assert record.worker == "w2"
        assert store.registry.counters["service.queue.lease_expired"] == 1

    def test_complete_settles_and_persists(self, store):
        queue = self.make_remote_queue(store)
        record, _ = queue.submit({"value": 3})
        queue.claim("w1")
        outcome = queue.complete(record.job_id, "w1", True, {"value": 6})
        assert outcome == "done"
        assert record.state == DONE
        assert store.get(record.job_id) == {"value": 6}

    def test_duplicate_completion_coalesces(self, store):
        """The failover invariant: two workers racing the same job yield
        exactly one stored result and a 'duplicate' verdict for the
        loser."""
        queue = self.make_remote_queue(store, lease_ttl=0.5)
        record, _ = queue.submit({"value": 3})
        queue.claim("w1")
        time.sleep(0.7)  # w1's lease lapses (worker "killed mid-job")
        assert queue.claim("w2"), "expired job should be reclaimable"
        assert queue.complete(record.job_id, "w2", True, {"value": 6}) == "done"
        # w1 resurfaces with the same (pure-function) payload.
        assert (
            queue.complete(record.job_id, "w1", True, {"value": 6})
            == "duplicate"
        )
        assert record.state == DONE
        assert store.get(record.job_id) == {"value": 6}
        assert (
            store.registry.counters["service.queue.duplicate_completion"] == 1
        )

    def test_late_completion_from_usurped_worker_accepted(self, store):
        queue = self.make_remote_queue(store, lease_ttl=0.5)
        record, _ = queue.submit({"value": 3})
        queue.claim("w1")
        time.sleep(0.7)
        queue.claim("w2")  # lease moved on
        # w1 finishes first anyway: a valid result is taken.
        assert queue.complete(record.job_id, "w1", True, {"value": 6}) == "done"
        assert store.registry.counters["service.queue.late_completion"] == 1

    def test_orphan_completion_still_stores(self, store):
        """A TTL-pruned record must never drop a computed result."""
        queue = self.make_remote_queue(store)
        fp = "ab" * 32
        assert queue.complete(fp, "w1", True, {"value": 9}) == "stored"
        assert store.get(fp) == {"value": 9}
        assert queue.complete("cd" * 32, "w1", False, "boom") == "unknown"

    def test_failed_completion_retries_then_fails(self, store):
        queue = self.make_remote_queue(store, retries=1, backoff=0.01)
        record, _ = queue.submit({"value": 1})
        queue.claim("w1")
        assert queue.complete(record.job_id, "w1", False, "boom") == "retry"
        assert record.state == PENDING
        time.sleep(0.05)
        queue.claim("w1")
        assert queue.complete(record.job_id, "w1", False, "boom") == "failed"
        assert record.state == FAILED

    def test_remote_timeout_report_counts(self, store):
        queue = self.make_remote_queue(store, retries=0)
        record, _ = queue.submit({"value": 1})
        queue.claim("w1")
        outcome = queue.complete(
            record.job_id, "w1", False, "JobTimeout: job exceeded 1s wall clock"
        )
        assert outcome == "failed"
        assert store.registry.counters["service.queue.timeout"] == 1

    def test_completion_fires_on_executed_hook(self, store):
        seen = []
        queue = make_queue(
            store,
            runner_ok,
            local_exec=False,
            on_executed=lambda spec, payload: seen.append((spec, payload)),
        )
        record, _ = queue.submit({"value": 5})
        queue.claim("w1")
        queue.complete(record.job_id, "w1", True, {"value": 10})
        assert seen == [({"value": 5}, {"value": 10})]

    def test_no_local_exec_leaves_jobs_for_claimants(self, store, tmp_path):
        """With local_exec off the scheduler never executes; the running
        queue thread still sweeps leases."""
        runs = tmp_path / "runs"
        runs.mkdir()
        with self.make_remote_queue(store) as queue:
            record, _ = queue.submit({"value": 1, "log_dir": str(runs)})
            time.sleep(0.4)
            assert record.state == PENDING
            assert list(runs.iterdir()) == []
            assert len(queue.claim("w1")) == 1
