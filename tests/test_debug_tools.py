"""Tests for the diagnostic tooling (repro.sim.debug)."""

from repro.core.messages import MsgType
from repro.protocols.none import MinimalUnprotected
from repro.sim.config import SimConfig
from repro.sim.debug import (
    SpecialMessageTracer,
    describe_wait_cycle,
    fsm_snapshot,
    locate_packets,
    seal_census,
)
from repro.sim.network import Network
from repro.topology.mesh import mesh

from tests.conftest import build_2x2_ring_deadlock


class TestDescribeWaitCycle:
    def test_empty_network(self):
        net = Network(mesh(2, 2), SimConfig(width=2, height=2),
                      MinimalUnprotected(), None, seed=1)
        assert describe_wait_cycle(net) == []

    def test_ring_description(self):
        net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
        waiting = describe_wait_cycle(net)
        assert len(waiting) == 4
        assert {w.pid for w in waiting} == {100, 101, 102, 103}
        for w in waiting:
            assert "wants" in w.describe()

    def test_locate_packets(self):
        net, _ = build_2x2_ring_deadlock(scheme=MinimalUnprotected())
        located = locate_packets(net)
        assert set(located) == {100, 101, 102, 103}


class TestFsmSnapshot:
    def test_snapshot_lines(self):
        net, scheme = build_2x2_ring_deadlock()
        net.run(3)
        lines = fsm_snapshot(net)
        assert len(lines) == len(scheme.states)
        assert any("S_DD" in line for line in lines)

    def test_non_sb_scheme_empty(self):
        net = Network(mesh(2, 2), SimConfig(width=2, height=2),
                      MinimalUnprotected(), None, seed=1)
        assert fsm_snapshot(net) == []


class TestTracer:
    def test_traces_probe_launches(self):
        net, _ = build_2x2_ring_deadlock()
        tracer = SpecialMessageTracer(net)
        net.run(60)
        assert tracer.counts[MsgType.PROBE] >= 1
        assert any("PROBE" in line for line in tracer.lines)

    def test_sender_filter(self):
        net, _ = build_2x2_ring_deadlock()
        tracer = SpecialMessageTracer(net, senders={9999})
        net.run(60)
        assert tracer.lines == []

    def test_detach_restores(self):
        net, _ = build_2x2_ring_deadlock()
        tracer = SpecialMessageTracer(net)
        tracer.detach()
        # The class method is back in charge (no instance-level override).
        assert "send_special" not in net.__dict__
        net.run(60)
        assert tracer.lines == []  # nothing traced after detach

    def test_stacked_tracers(self):
        net, _ = build_2x2_ring_deadlock()
        inner = SpecialMessageTracer(net)
        outer = SpecialMessageTracer(net)
        outer.detach()
        net.run(60)
        assert inner.counts[MsgType.PROBE] >= 1
        assert outer.lines == []


class TestSealCensus:
    def test_census_during_recovery(self):
        net, _ = build_2x2_ring_deadlock()
        seen_seal = False
        for _ in range(60):
            net.step()
            if seal_census(net):
                seen_seal = True
                break
        assert seen_seal
        node, source, in_port, out_port = seal_census(net)[0]
        assert source is not None

    def test_census_clean_network(self):
        net = Network(mesh(2, 2), SimConfig(width=2, height=2),
                      MinimalUnprotected(), None, seed=1)
        assert seal_census(net) == []
