"""Shared fixtures and scenario builders for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.core.turns import Port
from repro.protocols.static_bubble import StaticBubbleScheme
from repro.sim.config import SimConfig
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.topology.mesh import mesh


def place_packet(net: Network, node: int, in_port: Port, pid: int,
                 src: int, dst: int, route, size: int = 1, vc_index: int = 0):
    """Hand-place a packet into a router VC (for constructed deadlocks).

    ``route`` is the full source route; ``hop`` is advanced to point at
    the output port the packet wants at ``node``.
    """
    router = net.routers[node]
    vc = router.input_vcs[in_port][vc_index]
    assert vc.packet is None, "fixture VC already occupied"
    packet = Packet(pid, src, dst, 0, size, tuple(route), 0)
    packet.injected_at = 0
    packet.hop = 1
    vc.packet = packet
    vc.ready_at = 0
    router.occupancy += 1
    return packet


def build_2x2_ring_deadlock(scheme=None, t_dd: int = 5, vcs: int = 1):
    """The canonical 4-packet clockwise ring deadlock on a 2x2 mesh.

    Node layout: 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1); node 3 is the single
    static-bubble router of a 2x2 mesh.  Each packet occupies the VC the
    next one needs, so nothing can move without an extra buffer.
    """
    E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
    topo = mesh(2, 2)
    config = SimConfig(width=2, height=2, vcs_per_vnet=vcs, sb_t_dd=t_dd)
    if scheme is None:
        scheme = StaticBubbleScheme()
    net = Network(topo, config, scheme, traffic=None, seed=1)
    place_packet(net, 1, W, 100, 0, 3, (E, N, L))   # at node 1, wants N
    place_packet(net, 3, S, 101, 1, 2, (N, W, L))   # at node 3, wants W
    place_packet(net, 2, E, 102, 3, 0, (W, S, L))   # at node 2, wants S
    place_packet(net, 0, N, 103, 2, 1, (S, E, L))   # at node 0, wants E
    return net, scheme


@pytest.fixture
def mesh_4x4():
    return mesh(4, 4)


@pytest.fixture
def mesh_8x8():
    return mesh(8, 8)


@pytest.fixture
def rng():
    return random.Random(1234)
