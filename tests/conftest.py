"""Shared fixtures and scenario builders for the test-suite.

The scenario builders live in :mod:`repro.sim.scenarios` (shared with
the ``repro trace`` CLI); this module re-exports them so existing tests
keep importing from ``tests.conftest``.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.scenarios import (  # noqa: F401  (re-exported for tests)
    build_2x2_ring_deadlock,
    build_fig6_walkthrough,
    place_packet,
)
from repro.topology.mesh import mesh


@pytest.fixture
def mesh_4x4():
    return mesh(4, 4)


@pytest.fixture
def mesh_8x8():
    return mesh(8, 8)


@pytest.fixture
def rng():
    return random.Random(1234)
