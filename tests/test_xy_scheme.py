"""Tests for the XY scheme (regular-mesh reference)."""

import random

from repro.protocols.xy import XyRouting
from repro.sim.config import SimConfig
from repro.sim.engine import deadlocks_within, run_to_drain
from repro.sim.network import Network
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic


class TestHealthyMesh:
    def test_xy_is_deadlock_free_at_high_load(self):
        topo = mesh(6, 6)
        config = SimConfig(width=6, height=6, vcs_per_vnet=1)
        traffic = UniformRandomTraffic(topo, rate=0.8, seed=4)
        net = Network(topo, config, XyRouting(), traffic, seed=4)
        assert not deadlocks_within(net, 2500)

    def test_xy_delivers_everything(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4)
        traffic = UniformRandomTraffic(topo, rate=0.05, seed=4)
        net = Network(topo, config, XyRouting(), traffic, seed=4)
        net.run(600)
        net.traffic = None
        assert run_to_drain(net, 2000) is not None
        assert net.stats.packets_ejected == net.stats.packets_injected
        assert net.stats.packets_dropped_unreachable == 0


class TestIrregularMesh:
    def test_xy_loses_reachability_under_faults(self):
        """The paper's motivation: XY is unusable on irregular topologies."""
        topo = inject_link_faults(mesh(6, 6), 8, random.Random(2))
        scheme = XyRouting()
        unreachable = scheme.unreachable_pairs(topo)
        assert unreachable > 0
        # ...while minimal routing still serves every connected pair.
        from repro.routing.table import build_minimal_tables
        from repro.topology.graph import connected_components

        tables = build_minimal_tables(topo)
        for component in connected_components(topo):
            for src in component:
                for dst in component:
                    if src != dst:
                        assert tables[src].has_route(dst)

    def test_xy_drops_unreachable_packets(self):
        topo = mesh(4, 4)
        topo.deactivate_link(0, 1)
        config = SimConfig(width=4, height=4)
        from repro.traffic.trace import TraceTraffic

        # 0 -> 3 along the bottom row is exactly the broken XY route.
        net = Network(
            topo, config, XyRouting(), TraceTraffic([(0, 0, 3, 0, 1)]), seed=1
        )
        net.run(50)
        assert net.stats.packets_dropped_unreachable == 1
