"""Precise timing semantics of the simulator model (DESIGN.md §4).

These pin down the cycle-level contract: 2-cycle special-message hops,
S-cycle link serialization, VC drain windows, and specials beating flits
at the output mux — the numbers the recovery thresholds (t_DR) rely on.
"""

import pytest

from repro.core.messages import make_probe
from repro.core.turns import Port
from repro.protocols.none import MinimalUnprotected
from repro.protocols.static_bubble import StaticBubbleScheme
from repro.sim.config import SimConfig
from repro.sim.network import Network
from repro.topology.mesh import mesh
from repro.traffic.trace import TraceTraffic

from tests.conftest import place_packet

E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL


class TestSpecialMessageTiming:
    def test_two_cycle_hop(self):
        """send at t -> processed at the neighbor at exactly t + 2."""
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        net = Network(topo, config, StaticBubbleScheme(), None, seed=1)
        assert net.send_special(0, E, make_probe(0, E))
        assert list(net._special_arrivals) == [2]
        node, in_port, msg = net._special_arrivals[2][0]
        assert node == 1
        assert in_port == W  # travelling East arrives at the West port

    def test_send_into_missing_link_fails(self):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        net = Network(topo, config, StaticBubbleScheme(), None, seed=1)
        assert not net.send_special(0, W, make_probe(0, W))  # mesh edge
        assert not net.send_special(0, N, make_probe(0, N))

    def test_special_blocks_flit_same_cycle_only(self):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        net = Network(topo, config, StaticBubbleScheme(), None, seed=1)
        net.send_special(0, E, make_probe(0, E))
        link = net.routers[0].output_links[E]
        assert not link.is_free(net.cycle)
        assert link.is_free(net.cycle + 1)

    def test_special_accounted_in_link_stats(self):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        net = Network(topo, config, StaticBubbleScheme(), None, seed=1)
        net.send_special(0, E, make_probe(0, E))
        assert net.stats.link_special_cycles["probe"] == 1


class _SendFromOnCycle(MinimalUnprotected):
    """Stub scheme that launches one probe from phase-4 ``on_cycle``."""

    def __init__(self, send_at: int):
        self.send_at = send_at
        self.claimed_for = None

    def on_cycle(self, network, now):
        if now == self.send_at:
            network.send_special(0, Port.EAST, make_probe(0, Port.EAST))
            self.claimed_for = network.routers[0].output_links[Port.EAST].special_blocked_at


class TestFootnote10PhaseTiming:
    """Specials claim the allocation opportunity they can actually win.

    ``scheme.on_cycle`` runs *after* switch allocation; a special sent
    from there used to claim the already-arbitrated current cycle, so the
    claim expired without ever blocking a flit (an off-by-one against the
    paper's footnote 10).  The claim must cover the next cycle instead.
    """

    def _network(self, send_at):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        trace = TraceTraffic([(0, 0, 1, 0, 1)])
        scheme = _SendFromOnCycle(send_at)
        net = Network(topo, config, scheme, trace, seed=1)
        return net, scheme

    def test_on_cycle_send_claims_next_cycle(self):
        net, scheme = self._network(send_at=0)
        link = net.routers[0].output_links[E]
        net.step()  # cycle 0: flit injected (ready at 1); probe sent post-alloc
        assert scheme.claimed_for == 1
        assert not link.is_free(1)

    def test_flit_loses_arbitration_to_on_cycle_special(self):
        # The flit becomes switchable at cycle 1, exactly when the
        # phase-4 special's claim lands: the transfer must slip to 2.
        net, _ = self._network(send_at=0)
        net.step()  # cycle 0
        net.step()  # cycle 1: flit loses the output mux to the special
        assert net.stats.crossbar_flits == 0
        net.step()  # cycle 2: flit goes through
        assert net.stats.crossbar_flits == 1

    def test_without_contention_flit_moves_at_one(self):
        # Control: same traffic, special sent far in the future.
        net, _ = self._network(send_at=10_000)
        net.step()
        net.step()
        assert net.stats.crossbar_flits == 1


class TestSerialization:
    @pytest.mark.parametrize("size", [1, 3, 5])
    def test_link_busy_for_packet_size(self, size):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        trace = TraceTraffic([(0, 0, 1, 0, size)])
        net = Network(topo, config, MinimalUnprotected(), trace, seed=1)
        # cycle 0: packet enqueued + injected into the local VC
        # (ready_at = 1); cycle 1: switch allocation grants the transfer.
        busy_at = None
        link = net.routers[0].output_links[E]
        for _ in range(6):
            net.step()
            if link.busy_until > net.cycle - 1 and busy_at is None:
                busy_at = net.cycle - 1
                break
        assert busy_at is not None
        assert link.busy_until == busy_at + size

    def test_two_packets_spaced_by_serialization(self):
        """Second 5-flit packet must start >= 5 cycles after the first."""
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1)
        trace = TraceTraffic([(0, 0, 1, 0, 5), (0, 0, 1, 0, 5)])
        net = Network(topo, config, MinimalUnprotected(), trace, seed=1)
        ejections = []
        seen = 0
        for _ in range(40):
            net.step()
            if net.stats.packets_ejected > seen:
                seen = net.stats.packets_ejected
                ejections.append(net.cycle)
        assert len(ejections) == 2
        assert ejections[1] - ejections[0] >= 5


class TestVcDrainWindow:
    def test_upstream_vc_blocked_until_tail_leaves(self):
        """After a 5-flit transfer the source VC is unusable for 5 cycles."""
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1, vcs_per_vnet=1)
        trace = TraceTraffic([(0, 0, 1, 0, 5)])
        net = Network(topo, config, MinimalUnprotected(), trace, seed=1)
        local_vc = net.routers[0].input_vcs[L][0]
        transferred_at = None
        for _ in range(10):
            net.step()
            if local_vc.packet is None and local_vc.free_at > 0:
                transferred_at = net.cycle - 1
                break
        assert transferred_at is not None
        assert local_vc.free_at == transferred_at + 5
        assert not local_vc.is_free(transferred_at + 4)
        assert local_vc.is_free(transferred_at + 5)

    def test_downstream_ready_two_cycles_after_grant(self):
        topo = mesh(2, 1)
        config = SimConfig(width=2, height=1, vcs_per_vnet=1)
        trace = TraceTraffic([(0, 0, 1, 0, 5)])
        net = Network(topo, config, MinimalUnprotected(), trace, seed=1)
        down_vcs = net.routers[1].input_vcs[W]
        for _ in range(10):
            net.step()
            arrived = [vc for vc in down_vcs if vc.packet is not None]
            if arrived:
                vc = arrived[0]
                # granted at net.cycle - 1 -> switchable at grant + 2
                assert vc.ready_at == (net.cycle - 1) + 2
                return
        pytest.fail("packet never reached downstream VC")


class TestRecoveryThresholdConsistency:
    def test_t_dr_covers_measured_loop_time(self):
        """The FSM's t_DR must exceed the measured disable round trip."""
        from repro.core.fsm import recovery_threshold
        from tests.conftest import build_2x2_ring_deadlock
        from repro.core.messages import MsgType

        net, scheme = build_2x2_ring_deadlock()
        sent = {}
        original = net.send_special

        def spy(from_node, out_port, msg):
            if from_node == 3 and msg.mtype == MsgType.DISABLE:
                sent["disable_at"] = net.cycle
                sent["path_len"] = len(msg.turns)
            return original(from_node, out_port, msg)

        net.send_special = spy
        activated_at = None
        for _ in range(100):
            net.step()
            if net.stats.bubble_activations:
                activated_at = net.cycle
                break
        assert activated_at is not None
        round_trip = activated_at - sent["disable_at"]
        assert round_trip <= recovery_threshold(sent["path_len"])
