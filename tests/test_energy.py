"""Tests for the DSENT-substitute energy/area model."""

import pytest

from repro.energy.edp import network_edp
from repro.energy.model import EnergyModel, EnergyParams
from repro.protocols.escape_vc import EscapeVcRecovery
from repro.protocols.none import MinimalUnprotected
from repro.protocols.static_bubble import StaticBubbleScheme
from repro.protocols.spanning_tree import SpanningTreeAvoidance
from repro.sim.config import SimConfig
from repro.sim.network import Network
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic


def run_net(scheme, rate=0.05, cycles=500, seed=1):
    topo = mesh(4, 4)
    config = SimConfig(width=4, height=4)
    traffic = UniformRandomTraffic(topo, rate=rate, seed=seed)
    net = Network(topo, config, scheme, traffic, seed=seed)
    net.run(cycles)
    return net


class TestEnergyAccounting:
    def test_idle_network_has_only_leakage(self):
        topo = mesh(4, 4)
        config = SimConfig(width=4, height=4)
        net = Network(topo, config, MinimalUnprotected(), None, seed=1)
        net.run(100)
        e = EnergyModel().network_energy(net)
        assert e.router_dynamic == 0
        assert e.link_dynamic == 0
        assert e.router_leakage > 0
        assert e.link_leakage > 0

    def test_dynamic_energy_scales_with_load(self):
        model = EnergyModel()
        low = model.network_energy(run_net(MinimalUnprotected(), rate=0.02))
        high = model.network_energy(run_net(MinimalUnprotected(), rate=0.1))
        assert high.router_dynamic > low.router_dynamic
        assert high.link_dynamic > low.link_dynamic

    def test_leakage_scales_with_cycles(self):
        model = EnergyModel()
        short = model.network_energy(run_net(MinimalUnprotected(), cycles=200))
        long = model.network_energy(run_net(MinimalUnprotected(), cycles=800))
        assert long.router_leakage == pytest.approx(4 * short.router_leakage)

    def test_power_gated_routers_do_not_leak(self):
        topo_full = mesh(4, 4)
        topo_gated = mesh(4, 4)
        for node in (5, 6, 9):
            topo_gated.deactivate_node(node)
        config = SimConfig(width=4, height=4)
        model = EnergyModel()
        net_full = Network(topo_full, config, MinimalUnprotected(), None, seed=1)
        net_gated = Network(topo_gated, config, MinimalUnprotected(), None, seed=1)
        net_full.run(100)
        net_gated.run(100)
        full = model.network_energy(net_full)
        gated = model.network_energy(net_gated)
        assert gated.router_leakage < full.router_leakage
        assert gated.link_leakage < full.link_leakage

    def test_breakdown_total(self):
        model = EnergyModel()
        e = model.network_energy(run_net(MinimalUnprotected()))
        assert e.total == pytest.approx(
            e.router_dynamic + e.router_leakage + e.link_dynamic + e.link_leakage
        )


class TestSchemeCosts:
    def test_escape_vc_leaks_more_than_static_bubble(self):
        """Table I in action: eVC adds buffers everywhere, SB at 21 nodes."""
        topo = mesh(8, 8)
        config = SimConfig()
        model = EnergyModel()
        nets = {}
        for name, scheme in (
            ("evc", EscapeVcRecovery(reserve_existing=False)),
            ("sb", StaticBubbleScheme()),
            ("tree", SpanningTreeAvoidance()),
        ):
            net = Network(topo, config, scheme, None, seed=1)
            net.run(200)
            nets[name] = model.network_energy(net)
        assert nets["evc"].router_leakage > nets["sb"].router_leakage
        assert nets["sb"].router_leakage > nets["tree"].router_leakage

    def test_table1_area_numbers(self):
        """Escape VC ~18% router area; Static Bubble < 0.5% network-wide,
        at the paper's 3-vnet, 4-VC router."""
        config = SimConfig(vnets=3, vcs_per_vnet=4)
        model = EnergyModel()

        class EvcArea:
            def extra_vcs_per_router(self, node, cfg):
                return 5 * cfg.vnets

        evc = model.area_overhead(config, EvcArea(), 64)
        sb = model.area_overhead(config, StaticBubbleScheme(), 64)
        assert evc == pytest.approx(0.18, abs=0.02)
        assert sb < 0.005

    def test_per_router_area_monotone_in_buffers(self):
        model = EnergyModel()
        config = SimConfig()
        assert model.router_area(config, extra_vcs=1) > model.router_area(config)


class TestEdp:
    def test_edp_formula(self):
        net = run_net(MinimalUnprotected())
        model = EnergyModel()
        energy = model.network_energy(net).total
        assert network_edp(net, 1000, model) == pytest.approx(energy * 1000)

    def test_default_model(self):
        net = run_net(MinimalUnprotected())
        assert network_edp(net, 10) > 0


class TestParams:
    def test_custom_params(self):
        params = EnergyParams(e_link=100.0)
        model = EnergyModel(params)
        net = run_net(MinimalUnprotected(), rate=0.1)
        heavy = model.network_energy(net)
        light = EnergyModel().network_energy(net)
        assert heavy.link_dynamic > light.link_dynamic
