"""Tests for spanning trees, up*/down* routing and tree next-hop tables.

Includes the load-bearing property: routes produced by the up*/down*
builder have no down->up turn, which makes the channel-dependency graph
acyclic — the deadlock-freedom argument of the baseline.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.turns import Port
from repro.routing.paths import route_is_valid, route_node_sequence
from repro.routing.spanning_tree import (
    SpanningTree,
    build_spanning_trees,
    choose_root,
    tree_next_hop_tables,
    updown_route,
)
from repro.routing.table import build_updown_tables
from repro.topology.faults import inject_link_faults, inject_router_faults
from repro.topology.graph import connected_components
from repro.topology.mesh import mesh


class TestSpanningTree:
    def test_covers_component(self):
        topo = mesh(4, 4)
        tree = SpanningTree(topo, root=5)
        assert tree.nodes() == set(topo.all_nodes())

    def test_depths_are_bfs(self):
        topo = mesh(4, 4)
        tree = SpanningTree(topo, root=0)
        for node in topo.all_nodes():
            x, y = topo.coords(node)
            assert tree.depth[node] == x + y

    def test_tree_path_endpoints(self):
        topo = mesh(4, 4)
        tree = SpanningTree(topo, root=0)
        path = tree.tree_path(3, 12)
        assert path[0] == 3 and path[-1] == 12
        for u, v in zip(path, path[1:]):
            assert tree.parent[u] == v or tree.parent[v] == u

    def test_root_must_be_active(self):
        topo = mesh(4, 4)
        topo.deactivate_node(5)
        with pytest.raises(ValueError):
            SpanningTree(topo, root=5)

    def test_choose_root_is_central(self):
        topo = mesh(5, 5)
        root = choose_root(topo, set(topo.all_nodes()))
        assert topo.coords(root) == (2, 2)

    def test_one_tree_per_component(self):
        topo = mesh(2, 2)
        topo.deactivate_link(0, 1)
        topo.deactivate_link(0, 2)
        trees = build_spanning_trees(topo)
        assert len(trees) == 2
        assert {frozenset(t.nodes()) for t in trees} == {
            frozenset({0}),
            frozenset({1, 2, 3}),
        }


def _route_has_down_up_turn(topo, tree, src, route) -> bool:
    nodes = route_node_sequence(topo, src, route)
    gone_down = False
    for u, v in zip(nodes, nodes[1:]):
        up = tree.edge_is_up(u, v)
        if gone_down and up:
            return True
        gone_down = gone_down or not up
    return False


class TestUpDownRouting:
    def test_routes_valid_and_reach(self):
        topo = mesh(4, 4)
        tree = build_spanning_trees(topo)[0]
        for src in topo.all_nodes():
            for dst in topo.all_nodes():
                if src == dst:
                    continue
                route = updown_route(topo, tree, src, dst)
                assert route is not None
                assert route_is_valid(topo, src, dst, route)

    def test_no_down_up_turns_full_mesh(self):
        topo = mesh(4, 4)
        tree = build_spanning_trees(topo)[0]
        for src in topo.all_nodes():
            for dst in topo.all_nodes():
                if src != dst:
                    route = updown_route(topo, tree, src, dst)
                    assert not _route_has_down_up_turn(topo, tree, src, route)

    def test_cross_component_is_none(self):
        topo = mesh(2, 2)
        topo.deactivate_link(0, 1)
        topo.deactivate_link(0, 2)
        trees = build_spanning_trees(topo)
        big = next(t for t in trees if len(t.nodes()) == 3)
        assert updown_route(topo, big, 1, 0) is None

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        faults=st.integers(min_value=0, max_value=12),
        kind=st.sampled_from(["link", "router"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_updown_valid_under_faults(self, seed, faults, kind):
        rng = random.Random(seed)
        if kind == "link":
            topo = inject_link_faults(mesh(5, 5), faults, rng)
        else:
            topo = inject_router_faults(mesh(5, 5), min(faults, 10), rng)
        for tree in build_spanning_trees(topo):
            members = sorted(tree.nodes())
            pick = random.Random(seed + 1)
            for _ in range(6):
                if len(members) < 2:
                    break
                src, dst = pick.sample(members, 2)
                route = updown_route(topo, tree, src, dst)
                assert route is not None
                assert route_is_valid(topo, src, dst, route)
                assert not _route_has_down_up_turn(topo, tree, src, route)


class TestChannelDependencyAcyclicity:
    """The deadlock-freedom theorem behind the baseline, checked directly."""

    def _channel_dependency_graph(self, topo, tables):
        cdg = nx.DiGraph()
        for src, table in tables.items():
            for dst in table.destinations():
                for route in table.routes(dst):
                    nodes = route_node_sequence(topo, src, route)
                    channels = list(zip(nodes, nodes[1:]))
                    for c1, c2 in zip(channels, channels[1:]):
                        cdg.add_edge(c1, c2)
        return cdg

    @pytest.mark.parametrize("faults", [0, 4, 10])
    def test_updown_tables_have_acyclic_cdg(self, faults):
        topo = inject_link_faults(mesh(5, 5), faults, random.Random(7))
        tables = build_updown_tables(topo)
        cdg = self._channel_dependency_graph(topo, tables)
        assert nx.is_directed_acyclic_graph(cdg)

    def test_minimal_tables_do_have_cycles(self):
        """Contrast: unrestricted minimal routing is deadlock-prone."""
        from repro.routing.table import build_minimal_tables

        topo = mesh(4, 4)
        tables = build_minimal_tables(topo, max_paths=4)
        cdg = self._channel_dependency_graph(topo, tables)
        assert not nx.is_directed_acyclic_graph(cdg)


class TestTreeNextHop:
    def test_tables_route_to_destination(self):
        topo = mesh(4, 4)
        tree = build_spanning_trees(topo)[0]
        tables = tree_next_hop_tables(topo, tree)
        for src in topo.all_nodes():
            for dst in topo.all_nodes():
                node, hops = src, 0
                while node != dst:
                    port = tables[node][dst]
                    node = topo.neighbor(node, port)
                    hops += 1
                    assert hops < 32, "tree routing must terminate"
                assert tables[dst][dst] == Port.LOCAL

    def test_tree_routing_stays_on_tree(self):
        topo = mesh(4, 4)
        tree = build_spanning_trees(topo)[0]
        tables = tree_next_hop_tables(topo, tree)
        for src in topo.all_nodes():
            for dst in topo.all_nodes():
                node = src
                while node != dst:
                    port = tables[node][dst]
                    nxt = topo.neighbor(node, port)
                    assert tree.parent[node] == nxt or tree.parent[nxt] == node
                    node = nxt
