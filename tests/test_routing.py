"""Tests for minimal paths, XY routing and routing tables."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.turns import Port
from repro.routing.paths import (
    bfs_distances,
    minimal_node_paths,
    minimal_routes,
    node_path_to_route,
    route_is_valid,
    route_node_sequence,
)
from repro.routing.table import (
    RoutingTable,
    build_minimal_tables,
    build_updown_tables,
    clear_table_cache,
    table_cache_enabled,
)
from repro.routing.xy import xy_route, xy_route_is_usable
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh


class TestBfs:
    def test_distances_on_full_mesh_are_manhattan(self):
        topo = mesh(5, 5)
        dist = bfs_distances(topo, topo.node_id(2, 2))
        for node in topo.all_nodes():
            x, y = topo.coords(node)
            assert dist[node] == abs(x - 2) + abs(y - 2)

    def test_unreachable_excluded(self):
        topo = mesh(2, 2)
        topo.deactivate_link(0, 1)
        topo.deactivate_link(0, 2)
        dist = bfs_distances(topo, 3)
        assert 0 not in dist

    def test_inactive_source(self):
        topo = mesh(2, 2)
        topo.deactivate_node(0)
        assert bfs_distances(topo, 0) == {}


class TestMinimalPaths:
    def test_path_count_cap(self):
        topo = mesh(4, 4)
        paths = minimal_node_paths(topo, 0, 15, max_paths=3)
        assert len(paths) == 3

    def test_paths_are_shortest(self):
        topo = mesh(4, 4)
        for path in minimal_node_paths(topo, 0, 15, max_paths=8):
            assert len(path) == 7  # 6 hops + endpoints

    def test_src_equals_dst(self):
        topo = mesh(4, 4)
        assert minimal_node_paths(topo, 5, 5) == [[5]]

    def test_unreachable_gives_empty(self):
        topo = mesh(2, 2)
        topo.deactivate_link(0, 1)
        topo.deactivate_link(0, 2)
        assert minimal_node_paths(topo, 0, 3) == []

    def test_paths_avoid_faulty_links(self):
        topo = mesh(4, 4)
        topo.deactivate_link(0, 1)
        for path in minimal_node_paths(topo, 0, 3, max_paths=8):
            for u, v in zip(path, path[1:]):
                assert topo.link_is_active(u, v)

    def test_route_conversion_roundtrip(self):
        topo = mesh(4, 4)
        path = minimal_node_paths(topo, 0, 15, max_paths=1)[0]
        route = node_path_to_route(topo, path)
        assert route[-1] == Port.LOCAL
        assert route_node_sequence(topo, 0, route) == path

    def test_route_is_valid(self):
        topo = mesh(4, 4)
        for route in minimal_routes(topo, 0, 15, max_paths=4):
            assert route_is_valid(topo, 0, 15, route)

    def test_route_is_valid_rejects_bad(self):
        topo = mesh(4, 4)
        assert not route_is_valid(topo, 0, 15, (Port.EAST, Port.LOCAL))
        assert not route_is_valid(topo, 0, 15, ())
        assert not route_is_valid(topo, 0, 1, (Port.EAST,))  # no LOCAL tail


class TestXY:
    def test_xy_route_shape(self):
        topo = mesh(4, 4)
        route = xy_route(topo, 0, topo.node_id(2, 3))
        assert route == (
            Port.EAST, Port.EAST, Port.NORTH, Port.NORTH, Port.NORTH, Port.LOCAL
        )

    def test_xy_usable_on_healthy_mesh(self):
        topo = mesh(4, 4)
        assert xy_route_is_usable(topo, 0, 15)

    def test_xy_breaks_on_faults(self):
        """The paper's motivation: XY cannot route around faults."""
        topo = mesh(4, 4)
        topo.deactivate_link(0, 1)
        assert not xy_route_is_usable(topo, 0, 3)
        # ...even though a healthy path exists:
        assert minimal_node_paths(topo, 0, 3)  # via row 1

    def test_xy_to_self(self):
        topo = mesh(4, 4)
        assert xy_route(topo, 5, 5) == (Port.LOCAL,)


class TestRoutingTable:
    def test_pick_route_uniform(self):
        table = RoutingTable(0)
        table.add_route(1, (Port.EAST, Port.LOCAL))
        table.add_route(1, (Port.NORTH, Port.EAST, Port.SOUTH, Port.LOCAL))
        rng = random.Random(7)
        seen = {table.pick_route(1, rng) for _ in range(50)}
        assert len(seen) == 2

    def test_pick_route_missing(self):
        table = RoutingTable(0)
        assert table.pick_route(9, random.Random(1)) is None

    def test_build_minimal_tables_cover_component(self):
        topo = mesh(4, 4)
        tables = build_minimal_tables(topo)
        assert set(tables) == set(topo.all_nodes())
        for src in topo.all_nodes():
            for dst in topo.all_nodes():
                if src != dst:
                    assert tables[src].has_route(dst)

    def test_tables_respect_partitions(self):
        topo = mesh(2, 2)
        topo.deactivate_link(0, 1)
        topo.deactivate_link(0, 2)
        tables = build_minimal_tables(topo)
        assert not tables[0].has_route(3)
        assert tables[3].has_route(1)


class TestTableCache:
    """Fingerprint-keyed memoization of table construction."""

    def test_cache_hit_shares_routes_not_dict(self):
        clear_table_cache()
        topo = inject_link_faults(mesh(6, 6), 5, random.Random(2))
        first = build_minimal_tables(topo)
        second = build_minimal_tables(topo)
        assert first is not second  # callers own their mapping
        src = next(iter(first))
        dst = first[src].destinations()[0]
        assert first[src].routes(dst)[0] is second[src].routes(dst)[0]

    def test_topology_mutation_changes_key(self):
        clear_table_cache()
        topo = mesh(3, 3)
        before = build_minimal_tables(topo)
        topo.deactivate_link(0, 1)
        after = build_minimal_tables(topo)
        # Route sets genuinely differ: 0->1 lost its one-hop route.
        assert len(before[0].routes(1)) != len(after[0].routes(1)) or (
            before[0].routes(1)[0] is not after[0].routes(1)[0]
        )

    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_TABLE_CACHE", "0")
        assert not table_cache_enabled()
        clear_table_cache()
        topo = mesh(3, 3)
        first = build_minimal_tables(topo)
        second = build_minimal_tables(topo)
        assert first[0].routes(1)[0] is not second[0].routes(1)[0]

    def test_updown_custom_trees_bypass_cache(self):
        clear_table_cache()
        topo = mesh(3, 3)
        cached = build_updown_tables(topo)
        cached2 = build_updown_tables(topo)
        src = next(iter(cached))
        dst = cached[src].destinations()[0]
        assert cached[src].routes(dst)[0] is cached2[src].routes(dst)[0]
        from repro.routing.spanning_tree import build_spanning_trees

        fresh = build_updown_tables(topo, trees=build_spanning_trees(topo))
        assert fresh[src].routes(dst)[0] is not cached[src].routes(dst)[0]


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    faults=st.integers(min_value=0, max_value=15),
)
@settings(max_examples=25, deadline=None)
def test_minimal_routes_always_valid_under_faults(seed, faults):
    """Property: every generated minimal route is walkable and ends right."""
    topo = inject_link_faults(mesh(5, 5), faults, random.Random(seed))
    rng = random.Random(seed + 1)
    nodes = topo.active_nodes()
    for _ in range(5):
        src, dst = rng.sample(nodes, 2)
        for route in minimal_routes(topo, src, dst, max_paths=3):
            assert route_is_valid(topo, src, dst, route)
