"""Tests for repro.verify: CDG construction, certificates, and the
exhaustive protocol model checker.

The placement-mutation tests are the heart of this file: every one of
the 21 static bubbles of the 8x8 placement must be load-bearing (drop
any single one and the certifier produces a concrete uncovered cycle),
while the intact 8x8 and 16x16 placements certify clean — including
under random single-link and single-router faults.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.placement import placement_node_ids
from repro.core.turns import OPPOSITE_PORT, Port
from repro.obs import EVENT_SCHEMA, Observer
from repro.obs.events import VERIFY_CERTIFICATE
from repro.protocols import make_scheme
from repro.sim.config import SimConfig
from repro.sim.network import Network
from repro.sim.scenarios import build_scenario
from repro.topology.faults import inject_link_faults, inject_router_faults
from repro.topology.mesh import mesh
from repro.verify import (
    LAYER_NORMAL,
    StateSpaceExceeded,
    bounded_cycles,
    canonical_state,
    cdg_from_routes,
    cdg_from_tables,
    cdg_from_turns,
    certify_acyclic,
    certify_cycle_cover,
    check_scenario,
    clone_network,
    cyclic_components,
    is_recovered,
    shortest_cycle,
    successor_states,
)
from repro.verify.model import restore, snapshot


def _assert_valid_cycle(cdg, cert, cover=frozenset()):
    """The counterexample must be a real CDG cycle avoiding the cover."""
    assert cert.counterexample is not None
    cycle = [
        (node, int(Port[port_name]), layer)
        for node, port_name, layer in cert.counterexample
    ]
    assert len(cycle) >= 2
    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        assert b in cdg.successors(a), f"{a} -> {b} is not a CDG edge"
    for node, _port, _layer in cycle:
        assert node not in cover, "counterexample crosses a covered router"


# -- CDG construction -----------------------------------------------------


class TestCdgConstruction:
    def test_turn_closure_counts_2x2(self):
        cdg = cdg_from_turns(mesh(2, 2))
        # Degree-2 routers: one channel per incident link end, and from
        # each channel exactly one non-u-turn exit.
        assert cdg.num_channels == 8
        assert cdg.num_edges == 8
        # The two dependency rings (clockwise and counterclockwise).
        assert len(cyclic_components(cdg.adjacency())) == 2

    def test_turn_closure_counts_4x4(self, mesh_4x4):
        cdg = cdg_from_turns(mesh_4x4)
        # One channel per directed link: 24 links -> 48 channels.
        assert cdg.num_channels == 48
        # A degree-d router contributes d*(d-1) turn edges:
        # 4 corners (d=2), 8 edge routers (d=3), 4 interior (d=4).
        assert cdg.num_edges == 4 * 2 + 8 * 6 + 4 * 12

    def test_route_channels_follow_port_convention(self, mesh_4x4):
        # A packet leaving through EAST arrives at the EAST neighbor and
        # is buffered at *its* WEST input port.
        route = [Port.EAST, Port.NORTH, Port.LOCAL]
        cdg = cdg_from_routes(mesh_4x4, [(0, route)])
        n1 = mesh_4x4.neighbor(0, Port.EAST)
        n2 = mesh_4x4.neighbor(n1, Port.NORTH)
        c1 = (n1, int(OPPOSITE_PORT[Port.EAST]), LAYER_NORMAL)
        c2 = (n2, int(OPPOSITE_PORT[Port.NORTH]), LAYER_NORMAL)
        assert cdg.channels == {c1, c2}
        assert cdg.successors(c1) == {c2}
        # Ejection consumes the packet: the final channel has no edge.
        assert cdg.successors(c2) == set()

    def test_route_over_inactive_link_raises(self, mesh_4x4):
        broken = mesh_4x4.copy()
        broken.deactivate_link(0, mesh_4x4.neighbor(0, Port.EAST))
        with pytest.raises(ValueError):
            cdg_from_routes(broken, [(0, [Port.EAST, Port.LOCAL])])

    def test_tables_cdg_within_turn_closure(self, mesh_4x4):
        """Real routing tables can only exercise turn-closure edges."""
        config = SimConfig(width=4, height=4)
        scheme = make_scheme("xy")
        tables = scheme.build_tables(mesh_4x4, config)
        table_cdg = cdg_from_tables(mesh_4x4, tables)
        closure = cdg_from_turns(mesh_4x4)
        assert table_cdg.channels <= closure.channels
        for channel in table_cdg.channels:
            assert table_cdg.successors(channel) <= closure.successors(channel)

    def test_restricted_adjacency_drops_covered_buffers(self, mesh_4x4):
        cdg = cdg_from_turns(mesh_4x4)
        cover = {5, 10}
        restricted = cdg.restricted_adjacency(cover)
        assert all(c[0] not in cover for c in restricted)
        assert all(
            s[0] not in cover for succs in restricted.values() for s in succs
        )


# -- certificates ---------------------------------------------------------


class TestCertificates:
    def test_empty_cover_fails_with_real_cycle(self, mesh_4x4):
        cdg = cdg_from_turns(mesh_4x4)
        cert = certify_cycle_cover(cdg, set(), scheme="static-bubble")
        assert not cert.ok
        assert cert.cyclic_sccs > 0
        _assert_valid_cycle(cdg, cert)

    def test_shortest_cycle_agrees_with_enumeration(self, mesh_4x4):
        adj = cdg_from_turns(mesh_4x4).adjacency()
        cycle = shortest_cycle(adj)
        enumerated = bounded_cycles(adj, length_bound=8)
        assert cycle is not None and enumerated
        assert len(cycle) == min(len(c) for c in enumerated)

    def test_acyclic_certificate_on_tree(self):
        # A 1xN mesh is a path: no minimal-routing cycle is possible.
        cdg = cdg_from_turns(mesh(4, 1))
        cert = certify_acyclic(cdg, scheme="test")
        assert cert.ok and cert.counterexample is None

    def test_certificate_serializes(self, mesh_4x4):
        cert = certify_cycle_cover(
            cdg_from_turns(mesh_4x4), set(), scheme="static-bubble"
        )
        payload = json.loads(cert.to_json())
        assert payload["kind"] == "cycle-cover"
        assert payload["ok"] is False
        assert len(payload["fingerprint"]) == 16
        assert "uncovered dependency cycle" in cert.describe()


# -- placement mutation (the load-bearing-bubbles satellite) --------------


class TestPlacementMutation:
    def test_intact_8x8_certifies(self, mesh_8x8):
        placed = placement_node_ids(8, 8)
        assert len(placed) == 21
        cert = certify_cycle_cover(
            cdg_from_turns(mesh_8x8), placed, scheme="static-bubble"
        )
        assert cert.ok and cert.counterexample is None

    def test_intact_16x16_certifies(self):
        placed = placement_node_ids(16, 16)
        assert len(placed) == 89
        cert = certify_cycle_cover(
            cdg_from_turns(mesh(16, 16)), placed, scheme="static-bubble"
        )
        assert cert.ok

    #: Bubbles the certifier proves redundant on the full mesh.  Faulting
    #: only ever *removes* CDG channels and edges, so a cover that works
    #: on the full mesh works on every derived topology — these routers
    #: are therefore redundant for ALL derivations: the paper's placement
    #: over-provisions slightly (see DESIGN.md).  Pinned as a regression
    #: fact; a placement change that alters these sets must be deliberate.
    REDUNDANT_8X8 = {54, 63}  # (6,6) and (7,7)
    REDUNDANT_16X16_COUNT = 18

    def test_single_bubble_mutations_8x8(self, mesh_8x8):
        """Dropping any non-redundant bubble uncovers a concrete cycle."""
        placed = placement_node_ids(8, 8)
        cdg = cdg_from_turns(mesh_8x8)
        redundant = set()
        for bubble in sorted(placed):
            cover = placed - {bubble}
            cert = certify_cycle_cover(cdg, cover, scheme="static-bubble")
            if cert.ok:
                redundant.add(bubble)
            else:
                _assert_valid_cycle(cdg, cert, cover)
        assert redundant == self.REDUNDANT_8X8

    def test_single_bubble_mutations_16x16(self):
        placed = placement_node_ids(16, 16)
        cdg = cdg_from_turns(mesh(16, 16))
        redundant = sum(
            certify_cycle_cover(cdg, placed - {b}, scheme="static-bubble").ok
            for b in placed
        )
        assert redundant == self.REDUNDANT_16X16_COUNT

    @pytest.mark.parametrize("seed", range(8))
    def test_certifies_under_single_link_fault(self, mesh_8x8, seed):
        faulted = inject_link_faults(mesh_8x8, 1, random.Random(seed))
        cover = placement_node_ids(8, 8) & set(faulted.active_nodes())
        cert = certify_cycle_cover(
            cdg_from_turns(faulted), cover, scheme="static-bubble"
        )
        assert cert.ok, cert.describe()

    @pytest.mark.parametrize("seed", range(8))
    def test_certifies_under_single_router_fault(self, mesh_8x8, seed):
        faulted = inject_router_faults(mesh_8x8, 1, random.Random(seed))
        cover = placement_node_ids(8, 8) & set(faulted.active_nodes())
        cert = certify_cycle_cover(
            cdg_from_turns(faulted), cover, scheme="static-bubble"
        )
        assert cert.ok, cert.describe()


# -- scheme.verify() hooks ------------------------------------------------


class TestSchemeVerify:
    def test_static_bubble_verifies_8x8(self, mesh_8x8):
        cert = make_scheme("static-bubble").verify(
            mesh_8x8, SimConfig(width=8, height=8)
        )
        assert cert.ok and cert.kind == "cycle-cover"
        assert len(cert.cover_routers) == 21

    def test_static_bubble_placement_override_fails(self, mesh_8x8):
        placed = placement_node_ids(8, 8)
        dropped = placed - {min(placed)}
        scheme = make_scheme("static-bubble", placement_override=dropped)
        cert = scheme.verify(mesh_8x8, SimConfig(width=8, height=8))
        assert not cert.ok and cert.counterexample_text

    def test_spanning_tree_acyclic_under_faults(self, mesh_8x8):
        faulted = inject_router_faults(mesh_8x8, 3, random.Random(5))
        cert = make_scheme("spanning-tree").verify(
            faulted, SimConfig(width=8, height=8)
        )
        assert cert.ok and cert.kind == "acyclic"

    def test_escape_layer_acyclic(self, mesh_8x8):
        cert = make_scheme("escape-vc").verify(
            mesh_8x8, SimConfig(width=8, height=8)
        )
        assert cert.ok and cert.source == "next_hops"

    def test_xy_acyclic(self, mesh_4x4):
        cert = make_scheme("xy").verify(mesh_4x4, SimConfig(width=4, height=4))
        assert cert.ok

    def test_minimal_unprotected_honestly_fails(self, mesh_4x4):
        cert = make_scheme("minimal-unprotected").verify(
            mesh_4x4, SimConfig(width=4, height=4)
        )
        assert not cert.ok and cert.counterexample is not None


# -- model checker --------------------------------------------------------


class TestModelChecker:
    def test_snapshot_restore_fidelity(self):
        """restore() must reproduce the exact canonical state, and the
        restored network must evolve identically to an untouched copy."""
        net, _scheme = build_scenario("ring2x2", t_dd=2)
        for _ in range(10):
            net.step()
        snap = snapshot(net)
        key = canonical_state(net)
        reference = clone_network(net)
        for _ in range(25):
            net.step()
        restore(net, snap)
        assert canonical_state(net) == key
        for _ in range(20):
            net.step()
            reference.step()
            assert canonical_state(net) == canonical_state(reference)

    def test_initial_deadlock_is_not_recovered(self):
        net, _scheme = build_scenario("ring2x2", t_dd=2)
        assert not is_recovered(net)

    def test_successor_states_branch_over_drop_subsets(self):
        net, _scheme = build_scenario("ring2x2", t_dd=2)
        for _ in range(200):
            if net._special_arrivals.get(net.cycle):
                break
            net.step()
        due = len(net._special_arrivals.get(net.cycle, ()))
        assert due >= 1, "scenario never put a special in flight"
        succs = list(successor_states(net))
        assert len(succs) == 2**due
        assert {dropped for dropped, _ in succs} == set(range(due + 1))

    def test_ring2x2_exhaustive_recovery_proof(self):
        """AG EF recovered over the full reachable space (shrunk knobs
        keep this ~6 s; the CI smoke job runs the larger default)."""
        res = check_scenario(
            "ring2x2", t_dd=1, bubble_timeout=4, seal_timeout=6
        )
        assert res.ok, res.describe()
        assert res.livelock_path is None
        assert res.states > 10_000
        assert res.transitions >= res.states - 1
        assert res.recovered_states >= 1
        assert res.sb_active_states > 0  # recovery actually fired...
        assert res.det_recovery_cycle is not None  # ...and completed
        assert res.max_due_specials >= 1  # the adversary had real choices
        assert "reachable states" in res.describe()

    def test_state_budget_raises_instead_of_lying(self):
        with pytest.raises(StateSpaceExceeded):
            check_scenario("ring2x2", t_dd=1, max_states=50)


# -- Network.certify() and reconfiguration wiring -------------------------


class TestNetworkCertify:
    def _network(self, scheme_name, width=4, height=4):
        topo = mesh(width, height)
        config = SimConfig(width=width, height=height)
        return Network(topo, config, make_scheme(scheme_name))

    def test_certify_emits_schema_conformant_event(self):
        net = self._network("static-bubble")
        obs = Observer()
        net.attach_obs(obs)
        cert = net.certify()
        assert cert.ok and net.last_certificate is cert
        events = [
            e for e in obs.tracer.events if e.kind == VERIFY_CERTIFICATE
        ]
        assert len(events) == 1
        assert set(events[0].data) == set(EVENT_SCHEMA[VERIFY_CERTIFICATE])

    def test_verify_on_reconfig_counts_failures(self):
        net = self._network("minimal-unprotected")
        net.verify_on_reconfig = True
        net.apply_faults(links=[(0, 1)])
        assert net.cert_failures == 1
        assert net.last_certificate is not None
        assert not net.last_certificate.ok

    def test_verify_on_reconfig_passes_for_static_bubble(self):
        net = self._network("static-bubble", 8, 8)
        net.verify_on_reconfig = True
        net.apply_faults(links=[(0, 1)])
        assert net.cert_failures == 0
        assert net.last_certificate.ok


# -- CLI ------------------------------------------------------------------


class TestVerifyCli:
    def test_certify_8x8_ok(self, capsys):
        from repro.cli import main

        assert main(["verify", "--mesh", "8x8"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "cycle-cover" in out

    def test_drop_bubble_prints_cycle_and_fails(self, capsys):
        from repro.cli import main

        assert main(["verify", "--mesh", "8x8", "--drop-bubble", "1,1"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "uncovered dependency cycle" in out

    def test_bad_mesh_spec_exits_2(self, capsys):
        from repro.cli import main

        assert main(["verify", "--mesh", "8by8"]) == 2

    @pytest.mark.parametrize(
        "spec,described",
        [
            ("mesh3d:3x3x3", "3x3x3 mesh"),
            ("torus3d:3x3x3", "3x3x3 torus"),
            ("circulant:11,2,5", "circulant(n=11,s1=2,s2=5)"),
            ("fullmesh:6", "full_mesh(n=6)"),
        ],
    )
    def test_certify_non_mesh_topologies(self, capsys, spec, described):
        from repro.cli import main

        assert main(["verify", "--topology", spec]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "cycle-cover" in out
        assert described in out

    def test_bad_topology_spec_exits_2(self, capsys):
        from repro.cli import main

        assert main(["verify", "--topology", "hypercube:4"]) == 2

    def test_drop_bubble_requires_mesh(self, capsys):
        from repro.cli import main

        code = main(
            ["verify", "--topology", "circulant:11,2,5", "--drop-bubble", "1,1"]
        )
        assert code == 2

    def test_json_output_parses(self, capsys):
        from repro.cli import main

        assert main(["verify", "--mesh", "4x4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["certificate"]["ok"] is True

    def test_verify_first_aborts_unsafe_simulation(self, capsys):
        from repro.cli import main

        code = main(
            [
                "simulate",
                "--width", "4", "--height", "4",
                "--scheme", "minimal-unprotected",
                "--verify-first",
                "--cycles", "50",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
