"""Tests for the adaptive congestion-aware minimal schemes.

Covers the selection machinery (table-derived candidate sets, the
downstream-credit score, the per-input-port round-robin tie-break), the
deadlock-freedom certificates both variants inherit from their recovery
substrate, packet conservation under chaotic mid-run faults, and the
two reconfiguration-state regressions fixed alongside the feature:
round-robin pointer reset on reconfiguration, and VC-cache freshness
after post-warmup escape/bubble provisioning.
"""

from __future__ import annotations

import random

import pytest

from repro.core.turns import Port
from repro.experiments import chaos
from repro.protocols import SCHEMES, make_scheme
from repro.protocols.adaptive import AdaptiveEscapeScheme, AdaptiveMinimalScheme
from repro.service.spec import SimSpec
from repro.sim.config import SimConfig
from repro.sim.deadlock import DeadlockMonitor, find_wait_cycle
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.sim.router import VC_ESCAPE, VC_NORMAL, Router
from repro.sim.scenarios import place_packet
from repro.topology.faults import inject_link_faults
from repro.topology.mesh import mesh
from repro.traffic.synthetic import UniformRandomTraffic

E, N, W, S, L = int(Port.EAST), int(Port.NORTH), int(Port.WEST), int(Port.SOUTH), int(Port.LOCAL)


def _adaptive_net(width=2, height=2, scheme="adaptive", traffic=None, seed=1):
    topo = mesh(width, height)
    config = SimConfig(width=width, height=height)
    return Network(topo, config, make_scheme(scheme), traffic, seed=seed)


def _fill_normal_vcs(router: Router, port: int, count: int, vnet: int = 0) -> int:
    """Occupy ``count`` free (normal, vnet) VCs at ``port``; returns #filled."""
    filled = 0
    for vc in router.input_vcs[port]:
        if filled == count:
            break
        if vc.kind == VC_NORMAL and vc.vnet == vnet and vc.packet is None:
            vc.packet = Packet(9000 + filled, router.node, router.node, vnet, 1, (L,), 0)
            vc.ready_at = 0
            router.occupancy += 1
            filled += 1
    return filled


class TestRegistryAndSpec:
    def test_schemes_registered(self):
        assert "adaptive" in SCHEMES
        assert "adaptive-escape" in SCHEMES
        assert isinstance(make_scheme("adaptive"), AdaptiveMinimalScheme)
        assert isinstance(make_scheme("adaptive-escape"), AdaptiveEscapeScheme)

    def test_adaptive_accepts_sb_tuning(self):
        scheme = make_scheme("adaptive", t_dd=20)
        assert scheme._t_dd_override == 20

    def test_simspec_accepts_adaptive(self):
        SimSpec(scheme="adaptive").validate()
        SimSpec(scheme="adaptive-escape").validate()


class TestCandidateSets:
    def test_candidates_are_minimal_first_hops(self):
        # 2x2 has exactly two minimal paths 0 -> 3 (E-then-N, N-then-E),
        # both within the max_minimal_routes budget, so the candidate set
        # is exactly {E, N} (north is +y: node 2 sits north of node 0).
        net = _adaptive_net(2, 2)
        lookup = net.routers[0]._adaptive_lookup
        assert lookup is not None
        assert lookup(0, 3) == (E, N)
        assert lookup(0, 1) == (E,)
        assert lookup(0, 2) == (N,)

    def test_destination_router_yields_local(self):
        net = _adaptive_net(2, 2)
        assert net.routers[3]._adaptive_lookup(3, 3) == (L,)

    def test_lookup_installed_on_every_active_router(self):
        net = _adaptive_net(4, 4, scheme="adaptive-escape")
        for router in net.active_routers():
            assert router._adaptive_lookup is not None

    def test_candidates_shrink_with_faults(self):
        topo = mesh(2, 2)
        topo.deactivate_link(0, 1)
        config = SimConfig(width=2, height=2)
        net = Network(topo, config, make_scheme("adaptive"), None, seed=1)
        # With the east link dead, only the northern detour remains.
        assert net.routers[0]._adaptive_lookup(0, 3) == (N,)


class TestCreditSteering:
    def test_steers_toward_freer_downstream_port(self):
        net = _adaptive_net(2, 2)
        router = net.routers[0]
        packet = place_packet(net, 0, W, pid=1, src=0, dst=3, route=(E, N, L))
        # Congest the east neighbour: 3 of its 4 (normal, vnet 0) VCs at
        # the facing input port are busy, so credits(E)=1 < credits(N)=4.
        assert _fill_normal_vcs(net.routers[1], W, 3) == 3

        net._allocate_router(router, now=0)

        assert router.input_vcs[W][0].packet is None  # granted and moved
        north = net.routers[2]
        assert any(vc.packet is packet for vc in north.input_vcs[S])
        assert packet.adapt_out == -1  # preference cleared on transfer

    def test_order_breaks_ties_round_robin(self):
        net = _adaptive_net(2, 2)
        router = net.routers[0]
        packet = Packet(1, 0, 3, 0, 1, (E, N, L), 0)
        # Equal credits: ascending distance from the rr pointer decides.
        assert router.adaptive_order(W, packet, net.routers, 0) == [E, N]
        router._adapt_rr[W] = 1
        assert router.adaptive_order(W, packet, net.routers, 0) == [N, E]

    def test_credits_dominate_round_robin(self):
        net = _adaptive_net(2, 2)
        router = net.routers[0]
        packet = Packet(1, 0, 3, 0, 1, (E, N, L), 0)
        _fill_normal_vcs(net.routers[1], W, 1)
        # rr points at E, but N now has strictly more credits.
        assert router._adapt_rr[W] == 0
        assert router.adaptive_order(W, packet, net.routers, 0) == [N, E]

    def test_rr_pointer_advances_only_on_grant(self):
        net = _adaptive_net(2, 2)
        router = net.routers[0]
        place_packet(net, 0, W, pid=1, src=0, dst=3, route=(E, N, L))
        net._allocate_router(router, now=0)
        # Tie broke toward E (rr=0); pointer moved one past the grant.
        assert router._adapt_rr[W] == (E + 1) % 5

    def test_escape_packets_ignore_adaptive_selection(self):
        net = _adaptive_net(2, 2, scheme="adaptive-escape")
        router = net.routers[0]
        packet = place_packet(net, 0, W, pid=1, src=0, dst=3, route=(E, N, L))
        packet.is_escape = True
        packet.hop = 0
        before = list(router._adapt_rr)
        net._allocate_router(router, now=0)
        # Escape packets ride the deterministic escape route and must not
        # disturb the adaptive round-robin state.
        assert router._adapt_rr == before


class TestCertificates:
    @pytest.mark.parametrize(
        "name, kind",
        [("adaptive", "cycle-cover"), ("adaptive-escape", "acyclic")],
    )
    def test_verify_healthy(self, name, kind):
        config = SimConfig(width=8, height=8)
        cert = make_scheme(name).verify(mesh(8, 8), config)
        assert cert.ok
        assert cert.kind == kind
        assert cert.scheme == name

    @pytest.mark.parametrize("name", ["adaptive", "adaptive-escape"])
    def test_verify_faulted(self, name):
        topo = inject_link_faults(mesh(8, 8), 6, random.Random(7))
        cert = make_scheme(name).verify(topo, SimConfig(width=8, height=8))
        assert cert.ok
        assert cert.faulty_links == 6


class TestChaosConservation:
    def test_adaptive_chaos_campaigns_conserve_packets(self):
        """Staged random faults mid-run: every packet accounted for, all
        campaigns drain, and every post-reconfig certificate holds."""
        params = chaos.ChaosParams(
            schemes=["adaptive", "adaptive-escape"],
            campaigns=2,
            events=4,
            traffic_cycles=600,
            max_cycles=6000,
            workers=2,
            verify_reconfig=True,
        )
        result = chaos.run(params)
        assert result.ok
        for campaign in result.campaigns:
            assert campaign.drained
            assert campaign.unaccounted == 0
            assert campaign.cert_failures == 0

    def test_staged_faults_drain_with_no_residual_deadlock(self):
        """High load + pre-existing faults + a staged mid-run fault burst:
        after traffic stops the network drains completely and the wait
        graph holds no cycle (zero unresolved deadlocks)."""
        topo = inject_link_faults(mesh(8, 8), 8, random.Random(3))
        traffic = UniformRandomTraffic(topo, rate=0.30, seed=5)
        net = Network(
            topo, SimConfig(), make_scheme("adaptive"), traffic, seed=5
        )
        monitor = DeadlockMonitor(interval=32)
        for _ in range(400):
            net.step()
            monitor.check(net, net.cycle)
        net.apply_faults(routers=[27], links=[(9, 10)])
        for _ in range(400):
            net.step()
            monitor.check(net, net.cycle)
        net.traffic = None
        for _ in range(6000):
            if net.is_drained():
                break
            net.step()
        assert net.is_drained()
        assert find_wait_cycle(net, net.cycle) is None
        stats = net.stats
        assert stats.packets_injected == (
            stats.packets_ejected + stats.packets_dropped_reconfig
        )


class TestRoundRobinReset:
    """Satellite regression: arbitration pointers survive reconfiguration.

    ``apply_faults``/``restore`` rebuild links and tables; a stale
    round-robin pointer from before the rebuild biases (or, for the
    adaptive pointer, mis-rotates) post-reconfig arbitration in a way
    that depends on pre-fault history — reconfiguration must reset them.
    """

    @staticmethod
    def _scramble(net):
        for router in net.active_routers():
            router._in_rr = [3] * 5
            router._out_rr = [2] * 5
            router._adapt_rr = [4] * 5

    @staticmethod
    def _assert_reset(net):
        for router in net.active_routers():
            assert router._in_rr == [0] * 5
            assert router._out_rr == [0] * 5
            assert router._adapt_rr == [0] * 5

    def test_apply_faults_resets_pointers(self):
        net = _adaptive_net(4, 4, scheme="adaptive")
        self._scramble(net)
        net.apply_faults(links=[(0, 1)])
        self._assert_reset(net)

    def test_restore_resets_pointers(self):
        net = _adaptive_net(4, 4, scheme="static-bubble")
        net.apply_faults(links=[(0, 1)])
        self._scramble(net)
        net.restore(links=[(0, 1)])
        self._assert_reset(net)


class TestVcStructureFreshness:
    """Satellite regression: caches follow post-warmup VC provisioning.

    ``add_escape_vcs``/``add_static_bubble`` change VC class membership;
    the per-class index and per-port tuples must be rebuilt, or a warm
    ``free_vc_for`` keeps handing normal packets a VC that was converted
    to an escape VC (and never sees a late-attached bubble)."""

    def test_free_vc_scan_fresh_after_escape_conversion(self):
        router = Router(0, vnets=1, vcs_per_vnet=4)
        normal = Packet(1, 0, 1, 0, 1, (E, L), 0)
        _fill_normal_vcs(router, E, 3)
        # Warm the class index: the last normal VC is the only free one.
        warm = router.free_vc_for(E, normal, now=0)
        assert warm is router.input_vcs[E][3]

        router.add_escape_vcs(reserve_existing=True)

        # That VC is now the reserved escape VC: invisible to normal
        # packets, reserved for escape packets.
        assert router.input_vcs[E][3].kind == VC_ESCAPE
        assert router.free_vc_for(E, normal, now=0) is None
        escape = Packet(2, 0, 1, 0, 1, (E, L), 0)
        escape.is_escape = True
        assert router.free_vc_for(E, escape, now=0) is router.input_vcs[E][3]

    def test_cached_port_vcs_fresh_after_bubble_attach(self):
        router = Router(0, vnets=1, vcs_per_vnet=2)
        warm = router.cached_port_vcs(S)
        assert router.bubble not in warm
        router.add_static_bubble()
        router.activate_bubble(S)
        assert router.bubble in router.cached_port_vcs(S)

    def test_fast_engine_tracks_post_warm_vc_conversion(self):
        """Converting VCs after 150 warm cycles must trigger a mirror
        rebuild on the fast engine — value-level resync cannot repair the
        stale class structure, so without the structure hook the engines
        diverge."""
        pytest.importorskip("numpy")
        nets = []
        for engine in ("reference", "fast"):
            topo = mesh(4, 4)
            traffic = UniformRandomTraffic(topo, rate=0.10, seed=2)
            nets.append(
                Network(
                    topo,
                    SimConfig(width=4, height=4),
                    make_scheme("spanning-tree"),
                    traffic,
                    seed=2,
                    engine=engine,
                )
            )
        ref, fast = nets
        for net in nets:
            net.run(150)
            for router in net.active_routers():
                router.add_escape_vcs(reserve_existing=False)
            net.run(300)
        import dataclasses

        assert dataclasses.asdict(fast.stats) == dataclasses.asdict(ref.stats)
