"""Tests for the non-mesh topology generators and their certificates.

Covers the graph interface's contract (per-edge arrival ports, spec
round-trips, strict ``from_spec`` validation), minimal-routing properties
on every generator, and the transfer of the static-bubble cycle-cover
certificate off the 2D mesh — including survival under a random fault.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.dor import build_dor_tables, xyz_route
from repro.routing.paths import (
    bfs_distances,
    minimal_routes,
    route_is_valid,
    route_node_sequence,
)
from repro.sim.config import SimConfig
from repro.topology.base import topology_from_spec, topology_kinds
from repro.topology.generators import (
    circulant,
    full_mesh,
    mesh3d,
    parse_topology,
    torus3d,
)
from repro.topology.mesh import mesh
from repro.protocols.static_bubble import StaticBubbleScheme


def _generators():
    return [
        ("mesh3d", lambda: mesh3d(3, 3, 3)),
        ("torus3d", lambda: torus3d(3, 3, 3)),
        ("circulant", lambda: circulant(11, 2, 5)),
        ("full_mesh", lambda: full_mesh(6)),
    ]


GENERATORS = _generators()
GEN_IDS = [name for name, _ in GENERATORS]


# -- graph-interface contract ----------------------------------------------


@pytest.mark.parametrize("name,build", GENERATORS, ids=GEN_IDS)
class TestGraphContract:
    def test_links_bidirectional_and_arrival_ports_consistent(self, name, build):
        topo = build()
        for node in topo.all_nodes():
            for port, neighbor in topo.active_neighbors(node):
                back = topo.arrival_port(node, port)
                assert topo.neighbor(neighbor, back) == node
                assert topo.port_between(node, neighbor) == port

    def test_local_port_is_radix(self, name, build):
        topo = build()
        assert topo.local_port == topo.radix
        assert topo.num_ports == topo.radix + 1
        assert topo.port_name(topo.local_port) == "LOCAL"

    def test_registered_kind(self, name, build):
        assert name in topology_kinds()


def test_full_mesh_opposite_ports_are_per_edge():
    # K_n's neighbor-rank numbering means arrival ports genuinely depend
    # on both endpoints — the case a global OPPOSITE table cannot cover.
    topo = full_mesh(6)
    seen = set()
    for node in topo.all_nodes():
        for port, _ in topo.active_neighbors(node):
            seen.add((port, topo.arrival_port(node, port)))
    assert len({b for _, b in seen}) > 1  # not a function of the out port


# -- spec round-trips ------------------------------------------------------


@pytest.mark.parametrize("name,build", GENERATORS, ids=GEN_IDS)
def test_spec_roundtrip_healthy(name, build):
    topo = build()
    clone = topology_from_spec(topo.to_spec())
    assert clone.to_spec() == topo.to_spec()
    assert clone.num_nodes == topo.num_nodes
    assert clone.radix == topo.radix
    for node in topo.all_nodes():
        for port in range(topo.radix):
            assert clone.neighbor(node, port) == topo.neighbor(node, port)


@pytest.mark.parametrize("name,build", GENERATORS, ids=GEN_IDS)
def test_spec_roundtrip_with_faults(name, build):
    topo = build()
    rng = random.Random(7)
    topo.deactivate_node(rng.randrange(topo.num_nodes))
    u, v = sorted(rng.choice(sorted(tuple(l) for l in topo.all_links())))
    topo.deactivate_link(u, v)
    clone = topology_from_spec(topo.to_spec())
    assert clone.to_spec() == topo.to_spec()
    assert sorted(clone.active_nodes()) == sorted(topo.active_nodes())
    assert sorted(map(sorted, clone.active_links())) == sorted(
        map(sorted, topo.active_links())
    )


def test_mesh_spec_roundtrip_matches_legacy():
    topo = mesh(4, 4)
    topo.deactivate_node(5)
    clone = topology_from_spec(topo.to_spec())
    assert clone.to_spec() == topo.to_spec()
    # Legacy blobs predate the ``kind`` tag and must still parse.
    legacy = {k: v for k, v in topo.to_spec().items() if k != "kind"}
    assert topology_from_spec(legacy).to_spec() == topo.to_spec()


class TestSpecRejection:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            topology_from_spec({"kind": "hypercube", "n": 8})

    def test_non_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            topology_from_spec("mesh:8x8")

    @pytest.mark.parametrize(
        "spec,missing",
        [
            ({"kind": "mesh3d", "x": 3, "y": 3}, "z"),
            ({"kind": "circulant", "n": 11, "s1": 2}, "s2"),
            ({"kind": "full_mesh"}, "n"),
            ({"kind": "mesh", "width": 8}, "height"),
        ],
    )
    def test_missing_fields(self, spec, missing):
        with pytest.raises(ValueError, match=missing):
            topology_from_spec(spec)

    @pytest.mark.parametrize("name,build", GENERATORS, ids=GEN_IDS)
    def test_unrecognized_fields(self, name, build):
        spec = build().to_spec()
        spec["futuristic_knob"] = 1
        with pytest.raises(ValueError, match="futuristic_knob"):
            topology_from_spec(spec)

    def test_wrong_kind_for_builder(self):
        spec = mesh3d(3, 3, 3).to_spec()
        spec["kind"] = "torus3d"  # valid kind, wrong shape (3x3x3 is fine)
        # torus3d accepts the same fields, so this parses — but swapping
        # in a kind with different fields must fail loudly.
        spec2 = circulant(11, 2, 5).to_spec()
        spec2["kind"] = "full_mesh"
        with pytest.raises(ValueError):
            topology_from_spec(spec2)


class TestParseTopology:
    @pytest.mark.parametrize(
        "text,described",
        [
            ("8x8", "8x8 mesh"),
            ("mesh:4x6", "4x6 mesh"),
            ("mesh3d:3x3x3", "3x3x3 mesh"),
            ("torus3d:3x3x3", "3x3x3 torus"),
            ("circulant:11,2,5", "circulant(n=11,s1=2,s2=5)"),
            ("fullmesh:6", "full_mesh(n=6)"),
            ("full_mesh:6", "full_mesh(n=6)"),
        ],
    )
    def test_accepted_forms(self, text, described):
        assert parse_topology(text).describe() == described

    @pytest.mark.parametrize("text", ["blah:3", "mesh3d:4x4", "circulant:4", "8"])
    def test_rejected_forms(self, text):
        with pytest.raises(ValueError):
            parse_topology(text)


# -- generator validation --------------------------------------------------


def test_generator_argument_validation():
    with pytest.raises(ValueError):
        torus3d(2, 3, 3)  # size-2 ring would be a parallel edge
    with pytest.raises(ValueError):
        circulant(10, 2, 5)  # 2*s2 == n: parallel edges
    with pytest.raises(ValueError):
        circulant(12, 2, 4)  # gcd 2: disconnected
    with pytest.raises(ValueError):
        full_mesh(1)
    with pytest.raises(ValueError):
        mesh3d(0, 3, 3)


# -- routing properties ----------------------------------------------------


@pytest.mark.parametrize("name,build", GENERATORS, ids=GEN_IDS)
def test_minimal_routes_minimal_uturn_free_connected(name, build):
    topo = build()
    local = topo.local_port
    nodes = topo.active_nodes()
    for src in nodes:
        dist = bfs_distances(topo, src)
        assert set(dist) == set(nodes), "healthy generator must be connected"
        for dst in nodes:
            if src == dst:
                continue
            routes = minimal_routes(topo, src, dst)
            assert routes, f"no route {src}->{dst}"
            for route in routes:
                assert route_is_valid(topo, src, dst, route)
                assert len(route) == dist[dst] + 1  # minimal: hops + eject
                path = route_node_sequence(topo, src, route)
                # U-turn free: never revisit the previous node.
                for a, b in zip(path, path[2:]):
                    assert a != b


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    pick=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_minimal_routes_survive_one_fault(seed, pick):
    name, build = GENERATORS[pick]
    topo = build()
    rng = random.Random(seed)
    u, v = sorted(rng.choice(sorted(tuple(l) for l in topo.all_links())))
    topo.deactivate_link(u, v)
    nodes = topo.active_nodes()
    for src in nodes:
        dist = bfs_distances(topo, src)
        for dst in dist:
            if dst == src:
                continue
            for route in minimal_routes(topo, src, dst, max_paths=2):
                assert route_is_valid(topo, src, dst, route)
                assert len(route) == dist[dst] + 1


def test_xyz_dor_tables_minimal_and_connected():
    topo = mesh3d(3, 3, 3)
    tables = build_dor_tables(topo)
    for src in topo.active_nodes():
        dist = bfs_distances(topo, src)
        dests = set(tables[src].destinations())
        assert dests == set(topo.active_nodes()) - {src}
        for dst in dests:
            (route,) = tables[src].routes(dst)
            assert route == xyz_route(topo, src, dst)
            assert route_is_valid(topo, src, dst, route)
            assert len(route) == dist[dst] + 1


def test_xyz_dor_rejects_torus():
    with pytest.raises(ValueError):
        build_dor_tables(torus3d(3, 3, 3))


# -- static-bubble certificates off the mesh -------------------------------


@pytest.mark.parametrize("name,build", GENERATORS, ids=GEN_IDS)
def test_cycle_cover_certificate_on_generator(name, build):
    topo = build()
    cert = StaticBubbleScheme().verify(topo, SimConfig())
    assert cert.ok, cert.describe()
    assert cert.kind == "cycle-cover"
    assert cert.topology == topo.describe()
    assert cert.cover_routers
    assert set(cert.cover_routers) <= set(topo.active_nodes())
    payload = cert.to_dict()
    assert payload["ok"] and payload["topology"] == topo.describe()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    pick=st.integers(min_value=0, max_value=3),
    kind=st.sampled_from(["link", "router"]),
)
@settings(max_examples=30, deadline=None)
def test_cycle_cover_certificate_survives_one_random_fault(seed, pick, kind):
    # The cover is computed on the *underlying* graph, so it must keep
    # certifying after any single fault (deleting elements only removes
    # CDG cycles, never adds them).
    name, build = GENERATORS[pick]
    topo = build()
    rng = random.Random(seed)
    if kind == "link":
        u, v = sorted(rng.choice(sorted(tuple(l) for l in topo.all_links())))
        topo.deactivate_link(u, v)
    else:
        topo.deactivate_node(rng.randrange(topo.num_nodes))
    cert = StaticBubbleScheme().verify(topo, SimConfig())
    assert cert.ok, f"{name} fault seed {seed}: {cert.describe()}"
    assert cert.faulty_links + cert.faulty_routers == 1
