"""End-to-end tests of every experiment harness (tiny parameterizations).

Each test runs the experiment with minimal parameters and checks both the
structure of the result and the qualitative shape the paper reports.
"""

import pytest

from repro.experiments import (
    fig2_deadlock_prone,
    fig3_heatmap,
    fig8_latency,
    fig9_throughput,
    fig10_energy,
    fig11_tdd_sweep,
    fig12_rodinia,
    fig13_parsec,
    table1_cost,
    topo_sweep,
)
from repro.experiments.common import (
    SCHEME_ORDER,
    normalize_to,
    safe_mean,
    topologies_for,
)


class TestCommon:
    def test_topologies_for_count(self):
        topos = topologies_for(8, 8, "link", 4, 3, seed=1)
        assert len(topos) == 3

    def test_safe_mean(self):
        assert safe_mean([]) == 0.0
        assert safe_mean([1.0, 3.0]) == 2.0

    def test_normalize_to(self):
        assert normalize_to(2.0, 1.0) == 0.5
        assert normalize_to(0.0, 1.0) == 1.0

    def test_scheme_order(self):
        assert SCHEME_ORDER == (
            "spanning-tree",
            "escape-vc",
            "static-bubble",
            "adaptive",
        )


class TestFig2:
    def test_graph_method_shape(self):
        params = fig2_deadlock_prone.Fig2Params(
            link_fault_counts=[2, 90], router_fault_counts=[2, 55], samples=6
        )
        result = fig2_deadlock_prone.run(params)
        # Paper's shape: ~100% prone at low faults, ~0% once fragmented.
        assert result.link_series[2] >= 90
        assert result.link_series[90] <= 30
        assert result.router_series[2] >= 90
        assert result.router_series[55] <= 30
        assert "Fig. 2" in fig2_deadlock_prone.report(result)

    def test_sim_method_agrees_at_extremes(self):
        params = fig2_deadlock_prone.Fig2Params(
            link_fault_counts=[4],
            router_fault_counts=[],
            samples=3,
            method="sim",
            sim_cycles=1500,
        )
        result = fig2_deadlock_prone.run(params)
        assert result.link_series[4] >= 60


class TestFig3:
    def test_deadlock_rates_monotone_cumulative(self):
        params = fig3_heatmap.Fig3Params(
            link_fault_counts=[8], rates=[0.05, 0.3], samples=4, cycles=800
        )
        result = fig3_heatmap.run(params)
        low = result.heatmap[(8, 0.05)]
        high = result.heatmap[(8, 0.3)]
        assert high >= low
        assert "Fig. 3" in fig3_heatmap.report(result)

    def test_low_rates_rarely_deadlock(self):
        """The paper's core insight: real-app rates don't deadlock."""
        params = fig3_heatmap.Fig3Params(
            link_fault_counts=[4], rates=[0.02, 0.4], samples=4, cycles=800
        )
        result = fig3_heatmap.run(params)
        assert result.heatmap[(4, 0.02)] <= 25
        assert result.heatmap[(4, 0.4)] >= 50


class TestFig8:
    def test_recovery_schemes_beat_tree_at_low_load(self):
        params = fig8_latency.Fig8Params(
            patterns=["uniform_random"],
            link_fault_counts=[8],
            router_fault_counts=[],
            samples=2,
            warmup=200,
            measure=600,
        )
        result = fig8_latency.run(params)
        sb = result.normalized("uniform_random", "link", 8, "static-bubble")
        evc = result.normalized("uniform_random", "link", 8, "escape-vc")
        assert sb <= 1.02
        assert evc <= 1.02
        # At low load with no deadlocks, SB and eVC are near-identical.
        assert sb == pytest.approx(evc, rel=0.05)
        assert "Fig. 8" in fig8_latency.report(result)


class TestFig9:
    def test_static_bubble_highest_throughput(self):
        params = fig9_throughput.Fig9Params(
            rates=[0.1, 0.2],
            link_fault_counts=[8],
            router_fault_counts=[],
            samples=2,
            warmup=200,
            measure=500,
        )
        result = fig9_throughput.run(params)
        sb = result.normalized("link", 8, "static-bubble")
        assert sb >= 1.0
        assert "Fig. 9" in fig9_throughput.report(result)


class TestTopoSweep:
    def test_non_mesh_sweep_certified_and_conserving(self):
        params = topo_sweep.TopoSweepParams(
            topologies=["torus3d:3x3x3", "circulant:11,2,5"],
            rates=[0.05, 0.15],
            warmup=150,
            measure=400,
            workers=1,
        )
        result = topo_sweep.run(params)
        assert result.ok  # every cert OK, zero conservation violations
        assert all(result.certified.values())
        assert not result.conservation_violations
        for spec in params.topologies:
            for scheme in params.schemes:
                assert result.saturation(spec, scheme) > 0
                for rate in params.rates:
                    assert result.latency[(spec, scheme, rate)] > 0
        text = topo_sweep.report(result)
        assert "torus3d:3x3x3" in text
        assert "packet conservation clean" in text


class TestFig10:
    def test_sb_lowest_total_energy(self):
        params = fig10_energy.Fig10Params(
            router_fault_counts=[7], samples=2, warmup=150, measure=500
        )
        result = fig10_energy.run(params)
        sb = result.normalized_total(7, "static-bubble")
        evc = result.normalized_total(7, "escape-vc")
        assert sb <= 1.0
        assert sb <= evc
        assert "Fig. 10" in fig10_energy.report(result)

    def test_breakdown_components_present(self):
        params = fig10_energy.Fig10Params(
            router_fault_counts=[2], samples=1, warmup=100, measure=300
        )
        result = fig10_energy.run(params)
        e = result.energy[(2, "static-bubble")]
        for key in ("router_dynamic", "router_leakage", "link_dynamic",
                    "link_leakage", "total"):
            assert e[key] >= 0


class TestFig11:
    def test_probes_decline_with_t_dd(self):
        params = fig11_tdd_sweep.Fig11Params(
            t_dd_values=[5, 100],
            schemes=["static-bubble"],
            samples=1,
            cycles=1500,
        )
        result = fig11_tdd_sweep.run(params)
        assert result.probes[("static-bubble", 5)] > result.probes[
            ("static-bubble", 100)
        ]
        assert "Fig. 11" in fig11_tdd_sweep.report(result)

    def test_flits_dominate_link_usage(self):
        params = fig11_tdd_sweep.Fig11Params(
            t_dd_values=[34], schemes=["static-bubble"], samples=1, cycles=1500
        )
        result = fig11_tdd_sweep.run(params)
        assert result.link_share[("static-bubble", 34, "flit")] > 0.80

    def test_adaptive_curve_runs_the_sb_protocol(self):
        params = fig11_tdd_sweep.Fig11Params(
            t_dd_values=[20], schemes=["adaptive"], samples=1, cycles=1500
        )
        result = fig11_tdd_sweep.run(params)
        # The adaptive scheme inherits the probe/recovery machinery, so
        # the t_DD sweep applies to it unchanged.
        assert ("adaptive", 20) in result.probes
        assert result.link_share[("adaptive", 20, "flit")] > 0.50
        assert "scheme: adaptive" in fig11_tdd_sweep.report(result)


class TestFig12:
    def test_structure_and_normalization(self):
        params = fig12_rodinia.Fig12Params(
            workloads=["bplus"],
            link_fault_counts=[4],
            router_fault_counts=[],
            samples=1,
            trace_duration=400,
            max_cycles=8000,
        )
        result = fig12_rodinia.run(params)
        sb = result.normalized("bplus", "link", 4, "static-bubble")
        assert sb > 0
        assert result.normalized("bplus", "link", 4, "spanning-tree") == 1.0
        assert "Fig. 12" in fig12_rodinia.report(result)


class TestFig13:
    def test_recovery_runtime_not_worse_than_tree(self):
        params = fig13_parsec.Fig13Params(
            workloads=["canneal"], samples=2, transactions_per_core=6
        )
        result = fig13_parsec.run(params)
        assert result.normalized_runtime("canneal", "static-bubble") <= 1.05
        assert result.normalized_edp("canneal", "static-bubble") <= 1.05
        assert "Fig. 13" in fig13_parsec.report(result)


class TestTable1:
    def test_paper_numbers(self):
        result = table1_cost.run(table1_cost.Table1Params())
        assert result.buffers[(8, 8)] == (21, 320)
        assert result.buffers[(16, 16)] == (89, 1280)
        sb_ov, evc_ov = result.area_overhead[(8, 8)]
        assert sb_ov < 0.005
        assert evc_ov == pytest.approx(0.18, abs=0.02)
        assert "Table I" in table1_cost.report(result)
