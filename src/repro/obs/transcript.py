"""Per-recovery transcripts: one FSM's probe -> enable lifecycle.

A recovery transcript stitches, in cycle order, every event belonging to
one static-bubble router's recovery operation: the probe launch, the FSM
transitions, the disable/check_probe/enable replays (including their
forwarding hops at other routers, matched by ``sender``), bubble
activity, and seal installs/clears along the chain.  This is the view a
protocol debugger actually wants: "show me recovery #2 at node 5".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.events import (
    BUBBLE_ACTIVATE,
    Event,
    FSM_TRANSITION,
    RECOVERY_ABORT,
    RECOVERY_DONE,
    SPECIAL_SEND,
)

#: Message types of the four-step handshake, in protocol order.
_HANDSHAKE = ("PROBE", "DISABLE", "CHECK_PROBE", "ENABLE")


@dataclass
class RecoveryTranscript:
    """One recovery operation of one static-bubble FSM."""

    node: int
    start_cycle: int
    end_cycle: Optional[int] = None
    completed: bool = False
    aborted: bool = False
    events: List[Event] = field(default_factory=list)

    @property
    def open(self) -> bool:
        return self.end_cycle is None

    def sent_mtypes(self) -> List[str]:
        """Special-message types this FSM launched, in order."""
        return [
            e.data.get("mtype", "?")
            for e in self.events
            if e.kind == SPECIAL_SEND and e.node == self.node
        ]

    def is_full_handshake(self) -> bool:
        """Complete probe -> disable -> activate -> check_probe -> enable?"""
        sent = set(self.sent_mtypes())
        activated = any(e.kind == BUBBLE_ACTIVATE for e in self.events)
        return self.completed and activated and all(m in sent for m in _HANDSHAKE)

    def describe(self, with_events: bool = False) -> str:
        status = (
            "aborted" if self.aborted
            else "completed" if self.completed
            else "in flight"
        )
        end = self.end_cycle if self.end_cycle is not None else "..."
        header = (
            f"recovery @ node {self.node}: cycles {self.start_cycle}..{end} "
            f"({status}; {len(self.events)} events)"
        )
        if not with_events:
            return header
        return "\n".join([header] + [f"  {e!r}" for e in self.events])


def recovery_transcripts(events: Sequence[Event]) -> List[RecoveryTranscript]:
    """Stitch per-FSM recovery transcripts out of a trace.

    A transcript opens at the FSM's transition into ``S_DISABLE`` (its
    probe came back — a recovery is now in flight) and is back-dated to
    the launch of the most recent preceding probe.  It closes at the
    matching ``recovery.done`` / ``recovery.abort``.  Transcripts still
    open at the end of the trace are returned with ``end_cycle=None``.
    """
    transcripts: List[RecoveryTranscript] = []
    open_by_node: Dict[int, RecoveryTranscript] = {}
    last_probe: Dict[int, Event] = {}
    for event in events:
        node = event.node
        sender = event.data.get("sender")
        if (
            event.kind == SPECIAL_SEND
            and event.data.get("mtype") == "PROBE"
            and sender == node
            and node not in open_by_node
        ):
            last_probe[node] = event
        opened = (
            event.kind == FSM_TRANSITION
            and event.data.get("to_state") == "S_DISABLE"
            and node not in open_by_node
        )
        if opened:
            probe = last_probe.pop(node, None)
            transcript = RecoveryTranscript(
                node=node,
                start_cycle=probe.cycle if probe is not None else event.cycle,
            )
            if probe is not None:
                transcript.events.append(probe)
            open_by_node[node] = transcript
            transcripts.append(transcript)
        # Attribution: special-message events belong to their sender's
        # transcript (wherever they happen); everything else belongs to
        # the router it happened at.
        owner = sender if sender is not None else node
        transcript = open_by_node.get(owner)
        if transcript is None:
            continue
        transcript.events.append(event)
        if owner == node and event.kind in (RECOVERY_DONE, RECOVERY_ABORT):
            transcript.end_cycle = event.cycle
            transcript.completed = event.kind == RECOVERY_DONE
            transcript.aborted = event.kind == RECOVERY_ABORT
            del open_by_node[node]
    return transcripts
