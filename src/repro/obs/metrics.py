"""Metrics registry: counters, gauges, histograms — mergeable across
processes.

The registry is a flat name -> metric map.  Every metric serializes to
plain dicts (:meth:`MetricsRegistry.to_dict`) and merges commutatively
(:meth:`MetricsRegistry.merge_dict`), so per-simulation registries can be
folded into a per-process registry, shipped across the
:mod:`repro.parallel` pool boundary, and folded again in the parent —
order never matters.

Process-level aggregation: :func:`proc_registry` is this process's
accumulator; :func:`drain_proc_registry` snapshots-and-resets it (used by
pool workers to return their share).  :func:`obs_enabled` gates the whole
machinery on the ``REPRO_OBS`` environment variable, which the CLI's
``--obs`` flag sets so that forked/spawned workers inherit it.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Environment variable that switches sweep-level metrics collection on.
OBS_ENV_VAR = "REPRO_OBS"

#: Bucket upper bounds (cycles) for packet-latency histograms.
LATENCY_BOUNDS: Tuple[float, ...] = (8, 16, 32, 64, 128, 256, 512, 1024, 2048)
#: Bucket upper bounds (fraction of link-cycles busy) for utilization.
UTILIZATION_BOUNDS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8,
)


def obs_enabled() -> bool:
    """True when ``REPRO_OBS`` asks for sweep metrics collection."""
    return os.environ.get(OBS_ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on")


class Counter:
    """Monotonic counter."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value plus the min/max envelope seen."""

    __slots__ = ("value", "min", "max")

    def __init__(self) -> None:
        self.value: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)


class Histogram:
    """Fixed-bound histogram with count/total/min/max sidecars.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket
    catches everything beyond the last edge.  Merging requires identical
    bounds.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float, n: int = 1) -> None:
        self.counts[bisect_left(self.bounds, value)] += n
        self.count += n
        self.total += value * n
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-quantile (upper edge of the containing bucket)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= target:
                if i < len(self.bounds):
                    return float(self.bounds[i])
                return float(self.max if self.max is not None else self.bounds[-1])
        return float(self.max if self.max is not None else 0.0)


class MetricsRegistry:
    """Flat name -> Counter | Gauge | Histogram map."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors (create on first use) --------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(bounds)
        return metric

    @property
    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    @property
    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- serialization / merge ------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {
                k: {"value": g.value, "min": g.min, "max": g.max}
                for k, g in self._gauges.items()
            },
            "histograms": {
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for k, h in self._histograms.items()
            },
        }

    def merge_dict(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`to_dict` snapshot into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, g in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.value = g["value"]
            for bound in (g.get("min"), g.get("max")):
                if bound is not None:
                    gauge.min = bound if gauge.min is None else min(gauge.min, bound)
                    gauge.max = bound if gauge.max is None else max(gauge.max, bound)
        for name, h in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, h["bounds"])
            if tuple(h["bounds"]) != hist.bounds:
                raise ValueError(f"histogram {name!r}: bucket bounds disagree")
            for i, c in enumerate(h["counts"]):
                hist.counts[i] += c
            hist.count += h["count"]
            hist.total += h["total"]
            for attr in ("min", "max"):
                other = h.get(attr)
                if other is None:
                    continue
                mine = getattr(hist, attr)
                pick = min if attr == "min" else max
                setattr(hist, attr, other if mine is None else pick(mine, other))

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_dict(other.to_dict())

    # -- reporting -------------------------------------------------------

    def summary_lines(self) -> List[str]:
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name:40s} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(
                f"{name:40s} {gauge.value:g} (min={gauge.min:g} max={gauge.max:g})"
                if gauge.min is not None
                else f"{name:40s} {gauge.value:g}"
            )
        for name, hist in sorted(self._histograms.items()):
            lines.append(
                f"{name:40s} n={hist.count} mean={hist.mean:.2f} "
                f"p50={hist.percentile(0.5):g} p99={hist.percentile(0.99):g} "
                f"max={hist.max if hist.max is not None else 0:g}"
            )
        return lines


def _expo_name(name: str) -> str:
    """Metric name -> exposition-safe identifier (dots/dashes -> underscores)."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def text_exposition(registry: "MetricsRegistry") -> str:
    """Prometheus-style text form of a registry (the ``/metrics`` body).

    Counters map to ``counter``, gauges to ``gauge``, histograms to the
    standard cumulative ``_bucket``/``_sum``/``_count`` triple.  Plain
    text and line-oriented so any scraper (or ``curl | grep``) can read
    it without a client library.
    """
    lines: List[str] = []
    for name, counter in sorted(registry._counters.items()):
        expo = _expo_name(name)
        lines.append(f"# TYPE {expo} counter")
        lines.append(f"{expo} {counter.value}")
    for name, gauge in sorted(registry._gauges.items()):
        expo = _expo_name(name)
        lines.append(f"# TYPE {expo} gauge")
        lines.append(f"{expo} {gauge.value:g}")
    for name, hist in sorted(registry._histograms.items()):
        expo = _expo_name(name)
        lines.append(f"# TYPE {expo} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(f'{expo}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{expo}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{expo}_sum {hist.total:g}")
        lines.append(f"{expo}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


#: Per-process accumulator (workers drain it back to the parent).
_PROC_REGISTRY = MetricsRegistry()


def proc_registry() -> MetricsRegistry:
    return _PROC_REGISTRY


def drain_proc_registry() -> Dict[str, Any]:
    """Snapshot-and-reset the per-process registry (pool-worker return)."""
    snapshot = _PROC_REGISTRY.to_dict()
    _PROC_REGISTRY.clear()
    return snapshot
