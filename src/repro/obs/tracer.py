"""Event sinks: bounded ring buffer, JSONL export, Chrome trace export.

The :class:`Tracer` is the in-memory sink: a bounded ring buffer of
:class:`~repro.obs.events.Event` (oldest events fall off, so tracing a
long run cannot exhaust memory).  Exports:

* :func:`write_jsonl` — one JSON object per line, ``jq``-friendly.
* :func:`write_chrome_trace` — Chrome ``trace_event`` JSON: open it at
  https://ui.perfetto.dev to see per-router timelines (``tid`` = router
  node id) with FSM states as duration slices and everything else as
  instant events.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from repro.obs.events import Event, FSM_TRANSITION


class Tracer:
    """Bounded in-memory event sink.

    ``capacity`` bounds the ring buffer; ``sink`` optionally streams every
    event as it is emitted (e.g. ``print`` for live debugging).
    """

    def __init__(
        self,
        capacity: int = 65536,
        sink: Optional[Callable[[Event], None]] = None,
    ) -> None:
        self.capacity = capacity
        self.sink = sink
        self._ring: Deque[Event] = deque(maxlen=capacity)
        #: Total events emitted (>= len(events) once the ring wraps).
        self.emitted = 0

    def emit(self, cycle: int, kind: str, node: int, data: Dict[str, Any]) -> None:
        event = Event(cycle, kind, node, data)
        self._ring.append(event)
        self.emitted += 1
        if self.sink is not None:
            self.sink(event)

    @property
    def events(self) -> List[Event]:
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


def write_jsonl(events: Sequence[Event], path: str) -> int:
    """Write events as JSON Lines; returns the number of lines written."""
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), default=str))
            fh.write("\n")
    return len(events)


def chrome_trace_events(events: Sequence[Event]) -> List[Dict[str, Any]]:
    """Convert to Chrome ``trace_event`` dicts (1 cycle = 1 µs).

    FSM transitions become complete ("X") duration slices — one per state
    residency interval — so a recovery reads as a colored band per router
    row in Perfetto; every other event is an instant ("i") on its
    router's row.
    """
    out: List[Dict[str, Any]] = []
    nodes = sorted({e.node for e in events})
    for node in nodes:
        name = "network" if node < 0 else f"router {node}"
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": node,
                "args": {"name": name},
            }
        )
    # FSM state residency slices.
    by_node_fsm: Dict[int, List[Event]] = {}
    last_cycle = max((e.cycle for e in events), default=0)
    for event in events:
        if event.kind == FSM_TRANSITION:
            by_node_fsm.setdefault(event.node, []).append(event)
    for node, transitions in by_node_fsm.items():
        for i, event in enumerate(transitions):
            end = transitions[i + 1].cycle if i + 1 < len(transitions) else last_cycle
            out.append(
                {
                    "name": event.data.get("to_state", "?"),
                    "cat": "fsm",
                    "ph": "X",
                    "ts": event.cycle,
                    "dur": max(end - event.cycle, 1),
                    "pid": 0,
                    "tid": node,
                    "args": dict(event.data),
                }
            )
    # Everything else as instants.
    for event in events:
        if event.kind == FSM_TRANSITION:
            continue
        out.append(
            {
                "name": event.kind,
                "cat": event.kind.split(".", 1)[0],
                "ph": "i",
                "s": "t",
                "ts": event.cycle,
                "pid": 0,
                "tid": event.node,
                "args": dict(event.data),
            }
        )
    return out


def write_chrome_trace(events: Sequence[Event], path: str) -> int:
    """Write a Chrome ``trace_event`` file; returns the event count."""
    trace = {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "time_unit": "1 cycle = 1 us"},
    }
    with open(path, "w") as fh:
        json.dump(trace, fh, default=str)
    return len(trace["traceEvents"])
