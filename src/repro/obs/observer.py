"""The :class:`Observer` facade wiring tracer + metrics into a network.

Attachment contract (``Network.attach_obs``): the network keeps a single
``obs`` attribute, ``None`` by default.  Every hot-path emission site
guards with one ``is not None`` check, so a network without an observer
pays one attribute load per candidate event and nothing else — the
saturated-load microbenchmark must stay within noise of the untraced
baseline (enforced by CI's obs-overhead job).

The observer owns:

* an optional :class:`~repro.obs.tracer.Tracer` (event ring buffer);
* an optional :class:`~repro.obs.metrics.MetricsRegistry`, sampled every
  ``sample_every`` cycles (FSM state residency, per-class link
  utilization, network occupancy) plus per-packet latency histograms;
* the link-utilization time series (kept raw for ``repro trace``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.obs.events import PACKET_EJECT
from repro.obs.metrics import (
    LATENCY_BOUNDS,
    MetricsRegistry,
    UTILIZATION_BOUNDS,
)
from repro.obs.tracer import Tracer
from repro.obs.transcript import RecoveryTranscript, recovery_transcripts

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network
    from repro.sim.packet import Packet


class Observer:
    """Tracing + metrics attached to one :class:`~repro.sim.network.Network`."""

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        ring_capacity: int = 65536,
        sample_every: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.tracer: Optional[Tracer] = Tracer(ring_capacity) if trace else None
        if registry is not None:
            # Shared (e.g. per-process) registry: sweeps accumulate into it
            # across many networks, then merge across workers.
            self.metrics: Optional[MetricsRegistry] = registry
        else:
            self.metrics = MetricsRegistry() if metrics else None
        self.sample_every = sample_every
        #: Raw per-class utilization samples: (cycle, {class: fraction}).
        self.link_util_series: List[Tuple[int, Dict[str, float]]] = []
        self._links = 0
        self._last_sample_cycle = 0
        self._last_flit_cycles = 0
        self._last_special_cycles: Dict[str, int] = {}

    # -- attachment ------------------------------------------------------

    def bind(self, network: "Network") -> None:
        """Initialize sampling baselines against ``network``'s state."""
        self._links = sum(
            1
            for router in network.active_routers()
            for port in range(4)
            if router.output_links[port] is not None
        )
        stats = network.stats
        self._last_sample_cycle = network.cycle
        self._last_flit_cycles = stats.link_flit_cycles
        self._last_special_cycles = dict(stats.link_special_cycles)

    # -- event emission --------------------------------------------------

    def emit(self, cycle: int, kind: str, node: int, data: Dict[str, Any]) -> None:
        if self.tracer is not None:
            self.tracer.emit(cycle, kind, node, data)

    def packet_ejected(self, packet: "Packet", latency: int, now: int) -> None:
        if self.metrics is not None:
            self.metrics.histogram("packet.latency", LATENCY_BOUNDS).add(latency)
        if self.tracer is not None:
            self.tracer.emit(
                now,
                PACKET_EJECT,
                packet.dst,
                {
                    "pid": packet.pid,
                    "latency": latency,
                    "total_latency": packet.ejected_at - packet.created_at,
                },
            )

    # -- cadence sampling ------------------------------------------------

    def end_cycle(self, network: "Network", now: int) -> None:
        """Called by ``Network.step`` once per cycle while attached."""
        if self.metrics is None:
            return
        if now - self._last_sample_cycle < self.sample_every:
            return
        self._sample(network, now)

    def _sample(self, network: "Network", now: int) -> None:
        metrics = self.metrics
        window = now - self._last_sample_cycle
        self._last_sample_cycle = now
        # FSM state residency (approximated at sample granularity).
        states = getattr(network.scheme, "states", None)
        if states:
            for state in states.values():
                metrics.counter(
                    f"fsm.residency.{state.fsm.state.name}"
                ).inc(window)
        # Per-class link utilization over the sample window.
        stats = network.stats
        denominator = self._links * window
        if denominator > 0:
            sample: Dict[str, float] = {}
            flit_delta = stats.link_flit_cycles - self._last_flit_cycles
            sample["flit"] = flit_delta / denominator
            for key, value in stats.link_special_cycles.items():
                delta = value - self._last_special_cycles.get(key, 0)
                sample[key] = delta / denominator
            for key, frac in sample.items():
                metrics.histogram(f"link_util.{key}", UTILIZATION_BOUNDS).add(frac)
            self.link_util_series.append((now, sample))
        self._last_flit_cycles = stats.link_flit_cycles
        self._last_special_cycles = dict(stats.link_special_cycles)
        metrics.gauge("network.occupancy").set(network.total_occupancy())

    # -- end-of-run folding ----------------------------------------------

    def finalize(self, network: "Network") -> None:
        """Fold the network's terminal counters into the metrics registry.

        Keeps counter semantics mergeable: every field is a sum, so
        registries from parallel sweep workers fold without bias.
        """
        if self.metrics is None:
            return
        stats = network.stats
        counters = self.metrics.counter
        counters("sims").inc(1)
        for name in (
            "cycles",
            "packets_injected",
            "packets_ejected",
            "packets_dropped_unreachable",
            "packets_dropped_reconfig",
            "packets_rerouted",
            "specials_dropped",
            "probes_sent",
            "disables_sent",
            "enables_sent",
            "check_probes_sent",
            "bubble_activations",
            "recoveries_completed",
            "recoveries_aborted",
            "deadlocks_observed",
            "escape_diversions",
        ):
            counters(f"net.{name}").inc(getattr(stats, name))

    # -- views -----------------------------------------------------------

    @property
    def events(self):
        return self.tracer.events if self.tracer is not None else []

    def transcripts(self) -> List[RecoveryTranscript]:
        """Recovery transcripts stitched from the buffered events."""
        return recovery_transcripts(self.events)
