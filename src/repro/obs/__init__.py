"""repro.obs — structured event tracing and metrics for the simulator.

Three pieces (see DESIGN.md §2 and the README "Observability" section):

* **Event bus** (:mod:`repro.obs.events`): typed events from the packet
  hot path, the special-message transport, the recovery FSMs, and the
  deadlock oracle.  Zero-cost when no observer is attached — every
  emission site is a single ``network.obs is not None`` check.
* **Sinks** (:mod:`repro.obs.tracer`, :mod:`repro.obs.transcript`): a
  bounded ring buffer, JSONL export, Chrome ``trace_event`` export (open
  in Perfetto for per-router timelines), and per-recovery transcripts
  that stitch one FSM's probe -> enable lifecycle.
* **Metrics** (:mod:`repro.obs.metrics`): counters / gauges / histograms
  sampled on a configurable cadence and merged across
  :mod:`repro.parallel` workers (``REPRO_OBS=1`` / ``--obs``).

Typical use::

    from repro.obs import Observer, write_jsonl, write_chrome_trace

    obs = Observer()
    net.attach_obs(obs)
    net.run(2000)
    write_jsonl(obs.events, "run.jsonl")
    write_chrome_trace(obs.events, "run.chrome.json")
    for t in obs.transcripts():
        print(t.describe())
"""

from repro.obs.events import EVENT_SCHEMA, Event
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OBS_ENV_VAR,
    drain_proc_registry,
    obs_enabled,
    proc_registry,
)
from repro.obs.observer import Observer
from repro.obs.tracer import Tracer, chrome_trace_events, write_chrome_trace, write_jsonl
from repro.obs.transcript import RecoveryTranscript, recovery_transcripts

__all__ = [
    "EVENT_SCHEMA",
    "Event",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_ENV_VAR",
    "drain_proc_registry",
    "obs_enabled",
    "proc_registry",
    "Observer",
    "Tracer",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "RecoveryTranscript",
    "recovery_transcripts",
]
