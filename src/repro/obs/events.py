"""Typed trace events: the vocabulary of the observability layer.

Every event is a :class:`Event` — ``(cycle, kind, node, data)`` — where
``kind`` is one of the dotted constants below and ``data`` is a flat
JSON-safe dict whose keys are fixed per kind (see :data:`EVENT_SCHEMA`).
``node = -1`` marks network-level events with no owning router.

The schema is deliberately small and stable: exporters
(:mod:`repro.obs.tracer`), the transcript stitcher
(:mod:`repro.obs.transcript`) and external consumers (Perfetto, jq over
the JSONL) all key off ``kind`` and these field names.
"""

from __future__ import annotations

from typing import Any, Dict

# -- packet lifecycle ------------------------------------------------------
PACKET_INJECT = "packet.inject"
PACKET_TRANSFER = "packet.transfer"
PACKET_EJECT = "packet.eject"
PACKET_DROP = "packet.drop"

# -- special-message lifecycle ---------------------------------------------
SPECIAL_SEND = "special.send"
SPECIAL_DELIVER = "special.deliver"
SPECIAL_DROP = "special.drop"

# -- live reconfiguration ----------------------------------------------------
RECONFIG_APPLY = "reconfig.apply"
RECONFIG_RESTORE = "reconfig.restore"
PACKET_REROUTE = "packet.reroute"

# -- recovery FSM / protocol state -----------------------------------------
FSM_TRANSITION = "fsm.transition"
BUBBLE_ACTIVATE = "bubble.activate"
BUBBLE_DRAIN = "bubble.drain"
BUBBLE_RELOCATE = "bubble.relocate"
SEAL_INSTALL = "seal.install"
SEAL_CLEAR = "seal.clear"
SEAL_REFRESH = "seal.refresh"
SEAL_EXPIRE = "seal.expire"
RECOVERY_DONE = "recovery.done"
RECOVERY_ABORT = "recovery.abort"

# -- ground-truth oracle ---------------------------------------------------
ORACLE_DEADLOCK = "oracle.deadlock"

# -- verification -----------------------------------------------------------
VERIFY_CERTIFICATE = "verify.certificate"

#: kind -> {field: meaning}.  This doubles as the reference documentation
#: surfaced in README.md; tests assert every emitted event honours it.
EVENT_SCHEMA: Dict[str, Dict[str, str]] = {
    PACKET_INJECT: {
        "pid": "packet id",
        "src": "source node",
        "dst": "destination node",
        "size": "flits",
        "vnet": "virtual network",
    },
    PACKET_TRANSFER: {
        "pid": "packet id",
        "to": "downstream node",
        "out": "output port name",
        "size": "flits",
    },
    PACKET_EJECT: {
        "pid": "packet id",
        "latency": "network latency (cycles)",
        "total_latency": "latency incl. source queueing (cycles)",
    },
    PACKET_DROP: {
        "reason": "unreachable | unreachable_src | dead_router | "
        "reconfig_unreachable",
        "dst": "destination",
    },
    PACKET_REROUTE: {"pid": "packet id", "dst": "destination node"},
    RECONFIG_APPLY: {
        "links": "links deactivated",
        "routers": "routers deactivated",
        "dropped": "packets dropped (dead router / unreachable destination)",
        "rerouted": "in-flight packets re-routed onto surviving paths",
        "specials_cancelled": "in-flight special messages discarded",
        "seals_cleared": "IO-priority restrictions removed",
        "fsms_reset": "recovery FSMs administratively reset",
    },
    RECONFIG_RESTORE: {
        "links": "links reactivated",
        "routers": "routers reactivated",
    },
    SPECIAL_SEND: {
        "mtype": "PROBE | DISABLE | ENABLE | CHECK_PROBE",
        "sender": "originating static-bubble node",
        "out": "output port name",
        "turns": "turn-path length",
        "arrival": "delivery cycle (send + 2)",
    },
    SPECIAL_DELIVER: {
        "mtype": "message type",
        "sender": "originating static-bubble node",
        "in_port": "input port name",
        "turns": "turn-path length",
    },
    SPECIAL_DROP: {
        "mtype": "message type",
        "sender": "originating static-bubble node",
        "reason": "capacity | port_not_full | id_race | chain_dissolved | "
        "revalidation_failed | dead_router | dead_link",
    },
    FSM_TRANSITION: {"from_state": "previous FsmState", "to_state": "new FsmState"},
    BUBBLE_ACTIVATE: {"in_port": "chain input port name"},
    BUBBLE_DRAIN: {},
    BUBBLE_RELOCATE: {"pid": "relocated resident packet id"},
    SEAL_INSTALL: {
        "source": "sealing chain's sender node",
        "in_port": "chain input port name",
        "out_port": "chain output port name",
    },
    SEAL_CLEAR: {"source": "chain sender whose seal was cleared"},
    SEAL_REFRESH: {"source": "chain sender", "age": "cycles since install"},
    SEAL_EXPIRE: {"source": "chain sender", "age": "cycles since install"},
    RECOVERY_DONE: {},
    RECOVERY_ABORT: {"retries": "enable retransmissions attempted"},
    ORACLE_DEADLOCK: {"pids": "packet ids of the wait-for cycle", "new": "newly observed pids"},
    VERIFY_CERTIFICATE: {
        "kind": "cycle-cover | acyclic",
        "scheme": "scheme name the claim belongs to",
        "ok": "certificate verdict",
        "channels": "CDG channel count",
        "edges": "CDG edge count",
        "counterexample": "uncovered dependency cycle (text) or None",
    },
}


class Event:
    """One trace event.  Plain ``__slots__`` object: the hot path builds
    many of these, so no dataclass machinery."""

    __slots__ = ("cycle", "kind", "node", "data")

    def __init__(self, cycle: int, kind: str, node: int, data: Dict[str, Any]):
        self.cycle = cycle
        self.kind = kind
        self.node = node
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        out = {"cycle": self.cycle, "kind": self.kind, "node": self.node}
        out.update(self.data)
        return out

    def __repr__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.cycle:5d}] n{self.node} {self.kind} {fields}"
