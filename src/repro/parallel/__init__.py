"""Parallel experiment execution (process-pool sweep fan-out)."""

from repro.parallel.pool import (
    Job,
    JobError,
    WORKERS_ENV_VAR,
    default_workers,
    job_seed,
    resolve_workers,
    run_jobs,
    run_jobs_batched,
)

__all__ = [
    "Job",
    "JobError",
    "WORKERS_ENV_VAR",
    "default_workers",
    "job_seed",
    "resolve_workers",
    "run_jobs",
    "run_jobs_batched",
]
