"""Parallel experiment execution (process-pool sweep fan-out)."""

from repro.parallel.pool import (
    CallTimeout,
    Job,
    JobError,
    WORKERS_ENV_VAR,
    call_with_timeout,
    default_workers,
    job_seed,
    resolve_workers,
    run_jobs,
    run_jobs_batched,
)

__all__ = [
    "CallTimeout",
    "Job",
    "JobError",
    "WORKERS_ENV_VAR",
    "call_with_timeout",
    "default_workers",
    "job_seed",
    "resolve_workers",
    "run_jobs",
    "run_jobs_batched",
]
