"""Process-pool experiment executor.

Every paper figure sweeps hundreds of fully independent simulations —
``(topology sample x scheme x injection rate x seed)`` — so the sweeps
parallelize embarrassingly well over a process pool (PPT-style
discrete-event parallelism: independent sub-workloads, no shared state).
This module is the one place that owns that machinery:

* :class:`Job` — a picklable ``(func, args, kwargs)`` work unit;
* :func:`run_jobs` — execute a job list over ``workers`` processes,
  preserving submission order, with chunked dispatch, an optional
  per-completion progress callback, and a graceful serial fallback
  (``workers=1``, unpicklable jobs, or pools being unavailable in the
  host environment);
* :func:`resolve_workers` — the worker-count policy: explicit argument,
  else the ``REPRO_WORKERS`` environment variable, else
  ``os.cpu_count() - 1`` (always at least 1);
* :func:`job_seed` — deterministic per-job seed derivation, so a job's
  RNG stream depends only on its identity, never on scheduling order.

Determinism: jobs are pure functions of their arguments (every seed is
part of the job spec) and results are returned in submission order, so a
parallel run is bit-identical to a serial run of the same job list.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import drain_proc_registry, obs_enabled, proc_registry
from repro.utils.rng import derive_seed

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"


class JobError(RuntimeError):
    """A job's function raised.

    The message embeds the originating :meth:`Job.describe` (function,
    args, kwargs — including the seed, which is always part of the
    args/kwargs by convention) plus the original exception, so a failed
    cell deep inside a thousand-job sweep is identifiable straight from
    the traceback.  The message is a plain string so the exception
    survives pickling back across the pool boundary; on the serial path
    the original exception additionally rides along as ``__cause__``.
    """


@dataclass(frozen=True)
class Job:
    """One unit of work: ``func(*args, **kwargs)``.

    ``func`` must be picklable (a module-level function) for the job to
    run in a worker process; unpicklable jobs silently take the serial
    path instead.
    """

    func: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def describe(self, limit: int = 400) -> str:
        """Identifying repr: qualified function name + trimmed arguments."""
        func = getattr(self.func, "__module__", "?") + "." + getattr(
            self.func, "__qualname__", repr(self.func)
        )
        parts = [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.kwargs.items()]
        arglist = ", ".join(parts)
        if len(arglist) > limit:
            arglist = arglist[:limit] + "..."
        return f"Job({func}({arglist}))"

    def run(self) -> Any:
        try:
            return self.func(*self.args, **self.kwargs)
        except Exception as exc:
            raise JobError(f"{self.describe()} failed: {exc!r}") from exc


def _call_job(job: Job) -> Any:
    """Top-level trampoline executed inside worker processes."""
    return job.run()


class CallTimeout(RuntimeError):
    """:func:`call_with_timeout` exceeded its wall-clock budget."""


def call_with_timeout(
    func: Callable[..., Any],
    args: Tuple = (),
    kwargs: Optional[Dict[str, Any]] = None,
    timeout: Optional[float] = None,
) -> Any:
    """Run ``func(*args, **kwargs)``, raising :class:`CallTimeout` past
    ``timeout`` seconds.

    Portable replacement for SIGALRM-based budgets: the call runs in a
    daemon thread and the caller joins with a deadline, so it works on
    every platform and from *any* thread — including pool worker
    processes, the service queue's scheduler thread, and asyncio
    executor threads, where signals either do not exist or never fire.

    The cost of portability is that a timed-out call is *abandoned*, not
    preempted: the daemon thread keeps running to completion in the
    background and its result is discarded.  That matches the service
    contract (the job is reported failed and may be retried elsewhere)
    — simulations are pure, so an abandoned duplicate can at worst
    re-derive the same bytes.

    ``timeout=None`` (or <= 0) calls ``func`` directly, with zero
    threading overhead.
    """
    if timeout is None or timeout <= 0:
        return func(*args, **(kwargs or {}))
    outcome: List[Any] = []

    def _target() -> None:
        try:
            outcome.append(("ok", func(*args, **(kwargs or {}))))
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            outcome.append(("raise", exc))

    runner = threading.Thread(
        target=_target, name="repro-timeout-call", daemon=True
    )
    runner.start()
    runner.join(timeout)
    if not outcome:
        raise CallTimeout(f"call exceeded {timeout:g}s wall clock")
    status, value = outcome[0]
    if status == "raise":
        raise value
    return value


def _call_batch(batch: Tuple[Job, ...]) -> List[Any]:
    """Run a whole batch of jobs inside one worker invocation.

    Cells run sequentially in submission order, sharing the worker's
    process state — warm per-process caches (e.g. the routing-table memo
    in :mod:`repro.routing.table`) amortize across every cell of the
    batch instead of being rebuilt per dispatch.
    """
    return [job.run() for job in batch]


def _call_job_obs(job: Job) -> Tuple[Any, Dict[str, Any]]:
    """Trampoline used when ``REPRO_OBS`` is on: ship the worker's
    per-process metrics snapshot home alongside the result, so the parent
    can merge every worker's counters into one registry."""
    result = job.run()
    return result, drain_proc_registry()


def job_seed(base_seed: int, *labels: object) -> int:
    """Deterministic per-job seed: a pure function of identity labels.

    Include every axis that distinguishes the job (figure, fault count,
    scheme, sample index, ...) so that reordering or re-chunking the job
    list can never change any job's RNG stream.
    """
    return derive_seed(base_seed, "job", *labels)


#: One-shot guard so a sweep dispatching thousands of jobs warns once.
_warned_invalid_workers = False


def default_workers() -> int:
    """``REPRO_WORKERS`` if set and valid, else ``os.cpu_count() - 1``."""
    global _warned_invalid_workers
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            # A typo'd value must not quietly serialize (or mis-size) a
            # sweep: say so once, then fall through to the default.
            if not _warned_invalid_workers:
                _warned_invalid_workers = True
                print(
                    f"repro: ignoring invalid {WORKERS_ENV_VAR}={env!r} "
                    "(not an integer); using cpu_count()-1",
                    file=sys.stderr,
                )
    return max(1, (os.cpu_count() or 2) - 1)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve an explicit/None worker count to a concrete value >= 1."""
    if workers is None:
        return default_workers()
    return max(1, workers)


def _run_serial(jobs: Sequence[Job], progress) -> List[Any]:
    results = []
    total = len(jobs)
    for i, job in enumerate(jobs):
        results.append(job.run())
        if progress is not None:
            progress(i + 1, total)
    return results


def _picklable(jobs: Sequence[Job]) -> bool:
    try:
        pickle.dumps(jobs)
        return True
    except Exception:
        return False


def _pool_context():
    """Prefer fork (cheap, no re-import) where the platform offers it."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_jobs(
    jobs: Iterable[Job],
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    chunksize: Optional[int] = None,
) -> List[Any]:
    """Run every job; return their results in submission order.

    * ``workers``: process count; ``None`` defers to
      :func:`resolve_workers` (``REPRO_WORKERS`` / ``cpu_count - 1``).
      ``workers=1`` runs serially in-process with no pool at all.
    * ``progress``: called as ``progress(done, total)`` after each job
      completes (in completion order under a pool, which equals
      submission order because results stream through ``imap``).
    * ``chunksize``: jobs dispatched per worker task; defaults to
      ``len(jobs) // (workers * 4)`` (at least 1) so long sweeps
      amortize IPC while short ones still load-balance.

    Serial fallbacks (all produce identical results): a single job,
    ``workers=1``, unpicklable jobs, or a host that cannot create a
    process pool (sandboxes without semaphore support).
    """
    jobs = list(jobs)
    total = len(jobs)
    if total == 0:
        return []
    n = min(resolve_workers(workers), total)
    if n <= 1 or not _picklable(jobs):
        return _run_serial(jobs, progress)
    if chunksize is None:
        chunksize = max(1, total // (n * 4))
    try:
        pool = _pool_context().Pool(processes=n)
    except (OSError, PermissionError, ImportError):
        return _run_serial(jobs, progress)
    merge_obs = obs_enabled()
    call = _call_job_obs if merge_obs else _call_job
    with pool:
        results: List[Any] = []
        for i, result in enumerate(pool.imap(call, jobs, chunksize)):
            if merge_obs:
                result, snapshot = result
                proc_registry().merge_dict(snapshot)
            results.append(result)
            if progress is not None:
                progress(i + 1, total)
    return results


def run_jobs_batched(
    jobs: Iterable[Job],
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    batch_size: Optional[int] = None,
) -> List[Any]:
    """Like :func:`run_jobs`, but cells are packed into batch jobs.

    Many sweep cells are cheap relative to dispatch: each ``run_jobs``
    result crosses the pool boundary individually, and per-cell process
    state (warm caches, imports) is wasted when chunks migrate.  Here the
    job list is split into contiguous batches of ``batch_size`` cells,
    each batch executes as *one* worker invocation
    (:func:`_call_batch`), and the flattened results come back in
    submission order — bit-identical to ``run_jobs`` on the same list,
    since cells are pure functions of their arguments.

    * ``batch_size``: cells per worker invocation; ``None`` packs the
      list into ``workers * 4`` batches (at least 1 cell each), the same
      load-balance point ``run_jobs`` uses for its chunksize.
    * ``progress``: called with *cell* counts, but only as each batch
      completes — coarser updates are the cost of batching.
    * Failure granularity: a raising cell aborts its whole batch (the
      :class:`JobError` still names the offending cell).  Callers that
      need per-cell outcomes wrap their runner to return statuses, as
      the service queue does.

    Serial fallback: with one effective worker the batching layer is
    skipped entirely and cells run like ``run_jobs(workers=1)``.
    """
    jobs = list(jobs)
    total = len(jobs)
    if total == 0:
        return []
    n = min(resolve_workers(workers), total)
    if n <= 1:
        return _run_serial(jobs, progress)
    if batch_size is None:
        batch_size = max(1, -(-total // (n * 4)))
    else:
        batch_size = max(1, batch_size)
    batches = [
        tuple(jobs[i : i + batch_size]) for i in range(0, total, batch_size)
    ]
    done_after = []
    done = 0
    for batch in batches:
        done += len(batch)
        done_after.append(done)

    def _batch_progress(batches_done: int, _batches_total: int) -> None:
        if progress is not None:
            progress(done_after[batches_done - 1], total)

    batch_jobs = [Job(_call_batch, (batch,)) for batch in batches]
    nested = run_jobs(
        batch_jobs, workers=n, progress=_batch_progress, chunksize=1
    )
    return [result for batch in nested for result in batch]
