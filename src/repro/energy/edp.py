"""Energy-delay product helpers (Fig. 13b)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.energy.model import EnergyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network


def network_edp(network: "Network", runtime_cycles: int, model: EnergyModel = None) -> float:
    """Network EDP: total network energy x application runtime.

    The paper's Fig. 13b metric: with identical work, a scheme wins EDP by
    using less energy (shorter routes, fewer buffers) and/or finishing
    sooner.
    """
    if model is None:
        model = EnergyModel()
    energy = model.network_energy(network).total
    return energy * runtime_cycles
