"""Analytical router + link energy model (DSENT substitute, 32 nm / 2 GHz).

The paper estimates network energy and area with DSENT.  DSENT itself is
a circuit-level tool; for the *relative* comparisons the paper reports
(Fig. 10, Fig. 13b, Table I) what matters is the activity- and
buffer-count accounting, which we model analytically:

* dynamic energy  = per-flit event energies x event counts collected by
  the simulator (buffer writes/reads, crossbar traversals, link flits);
* leakage energy  = per-cycle leakage of every powered buffer, router and
  link (power-gated/faulty components leak nothing);
* area            = buffers + crossbar + allocators per router.

Constants are calibrated (see ``tests/test_energy.py``) so that buffers
and crossbar dominate router area and the escape-VC baseline's one extra
VC per message class per port costs ~18% router area while Static
Bubble's 21 extra buffers in a 64-router mesh cost <0.5% network-wide —
the Table I numbers.  Units are arbitrary-but-consistent (pJ-like).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, TYPE_CHECKING

from repro.sim.config import SimConfig
from repro.sim.stats import NetworkStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network


@dataclass(frozen=True)
class EnergyParams:
    """Per-event dynamic energies and per-cycle leakage powers."""

    e_buffer_write: float = 1.0  # per flit
    e_buffer_read: float = 0.8  # per flit
    e_crossbar: float = 1.2  # per flit
    e_arbitration: float = 0.1  # per flit
    e_link: float = 1.5  # per flit per link
    e_special: float = 1.5  # per special-message link traversal
    p_buffer_leak: float = 0.004  # per buffer per cycle
    p_router_leak: float = 0.05  # per powered router per cycle (non-buffer)
    p_link_leak: float = 0.010  # per powered link per cycle

    # Area (arbitrary units; buffers dominate, as in DSENT at 32 nm).
    a_buffer: float = 1.0  # per packet-deep VC buffer
    a_crossbar: float = 18.0
    a_allocators: float = 3.0
    a_other: float = 2.3


@dataclass
class EnergyBreakdown:
    """Fig. 10's four stacks plus the total."""

    router_dynamic: float = 0.0
    router_leakage: float = 0.0
    link_dynamic: float = 0.0
    link_leakage: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.router_dynamic
            + self.router_leakage
            + self.link_dynamic
            + self.link_leakage
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "router_dynamic": self.router_dynamic,
            "router_leakage": self.router_leakage,
            "link_dynamic": self.link_dynamic,
            "link_leakage": self.link_leakage,
            "total": self.total,
        }


class EnergyModel:
    """Computes energy/area for one simulated network."""

    def __init__(self, params: EnergyParams = EnergyParams()) -> None:
        self.params = params

    # -- energy ---------------------------------------------------------

    def network_energy(self, network: "Network") -> EnergyBreakdown:
        """Energy over the cycles simulated so far."""
        params = self.params
        stats: NetworkStats = network.stats
        config: SimConfig = network.config
        scheme = network.scheme

        breakdown = EnergyBreakdown()
        breakdown.router_dynamic = (
            params.e_buffer_write * stats.buffer_writes
            + params.e_buffer_read * stats.buffer_reads
            + params.e_crossbar * stats.crossbar_flits
            + params.e_arbitration * stats.crossbar_flits
        )
        specials = sum(stats.link_special_cycles.values())
        breakdown.link_dynamic = (
            params.e_link * stats.link_flit_cycles + params.e_special * specials
        )

        cycles = stats.cycles
        base_buffers = network.topo.num_ports * config.vcs_per_port()
        total_buffers = 0
        for node in network.routers:
            total_buffers += base_buffers + scheme.extra_vcs_per_router(node, config)
        n_routers = len(network.routers)
        n_links = len(network.topo.active_links())
        breakdown.router_leakage = cycles * (
            params.p_buffer_leak * total_buffers + params.p_router_leak * n_routers
        )
        breakdown.link_leakage = cycles * params.p_link_leak * n_links
        return breakdown

    # -- area -------------------------------------------------------------

    def router_area(self, config: SimConfig, extra_vcs: int = 0) -> float:
        params = self.params
        buffers = 5 * config.vcs_per_port() + extra_vcs
        return (
            params.a_buffer * buffers
            + params.a_crossbar
            + params.a_allocators
            + params.a_other
        )

    def network_area(self, config: SimConfig, scheme, num_routers: int) -> float:
        """Total router area for ``num_routers`` under ``scheme``.

        Scheme extras are queried per node id 0..num_routers-1 on the
        config's mesh (design-time area is a property of the full mesh,
        not of a particular fault pattern).
        """
        total = 0.0
        for node in range(num_routers):
            total += self.router_area(config, scheme.extra_vcs_per_router(node, config))
        return total

    def area_overhead(self, config: SimConfig, scheme, num_routers: int) -> float:
        """Fractional network router-area overhead of ``scheme`` vs. plain."""

        class _Plain:
            def extra_vcs_per_router(self, node: int, cfg: SimConfig) -> int:
                return 0

        base = self.network_area(config, _Plain(), num_routers)
        return self.network_area(config, scheme, num_routers) / base - 1.0
