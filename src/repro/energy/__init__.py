"""DSENT-substitute analytical energy, area, and EDP models."""

from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.energy.edp import network_edp

__all__ = ["EnergyBreakdown", "EnergyModel", "EnergyParams", "network_edp"]
