"""Run-loop helpers: warm-up/measure windows, drain runs, deadlock runs.

These wrap :class:`repro.sim.network.Network` with the measurement
discipline the experiments need (warm-up before measuring latency,
stop-at-first-deadlock for the state-space studies, run-to-drain for
application "runtime").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs import Observer, obs_enabled, proc_registry
from repro.sim.deadlock import DeadlockMonitor
from repro.sim.network import Network
from repro.topology.faults import FaultSchedule


def _auto_observer(obs) -> Optional[Observer]:
    """Resolve the effective observer for a run.

    An explicit observer wins; otherwise, when ``REPRO_OBS`` is set, a
    metrics-only observer bound to the per-process registry is created so
    sweep counters aggregate across pool workers with no tracing cost.
    """
    if obs is not None:
        return obs
    if obs_enabled():
        return Observer(trace=False, registry=proc_registry())
    return None


@dataclass
class WindowResult:
    """Measurement-window metrics of one simulation."""

    avg_latency: float
    throughput_flits_node_cycle: float
    packets_ejected: int
    deadlocked: bool
    cycles: int


def run_cycles(network: Network, cycles: int) -> None:
    network.run(cycles)


def run_with_window(
    network: Network,
    warmup: int,
    measure: int,
    monitor: Optional[DeadlockMonitor] = None,
    stop_on_deadlock: bool = False,
    obs=None,
) -> WindowResult:
    """Warm up, then measure latency/throughput over ``measure`` cycles.

    ``obs``: an optional :class:`repro.obs.Observer`; it is attached
    before the warm-up and finalized (terminal stats folded into its
    metrics registry) before returning.  With no explicit observer the
    ``REPRO_OBS`` switch attaches a metrics-only one (see
    :func:`_auto_observer`).
    """
    obs = _auto_observer(obs)
    if obs is not None:
        network.attach_obs(obs)
    try:
        deadlocked = False
        for _ in range(warmup):
            network.step()
            if monitor is not None and monitor.check(network, network.cycle):
                deadlocked = True
                if stop_on_deadlock:
                    return WindowResult(0.0, 0.0, 0, True, network.cycle)
        network.stats.begin_window(network.cycle)
        for _ in range(measure):
            network.step()
            if monitor is not None and monitor.check(network, network.cycle):
                deadlocked = True
                if stop_on_deadlock:
                    break
        stats = network.stats
        return WindowResult(
            avg_latency=stats.window_avg_latency(),
            throughput_flits_node_cycle=stats.window_throughput(
                network.cycle, len(network.nis)
            ),
            packets_ejected=stats.window_packets_ejected,
            deadlocked=deadlocked,
            cycles=network.cycle,
        )
    finally:
        if obs is not None:
            obs.finalize(network)


def run_to_drain(
    network: Network, max_cycles: int, obs=None
) -> Optional[int]:
    """Run until all traffic is delivered; cycle count, or None on timeout.

    Requires a finite traffic source (a trace); checks the source is
    exhausted and the network empty.
    """
    obs = _auto_observer(obs)
    if obs is not None:
        network.attach_obs(obs)
    try:
        idle_check_every = 8
        for _ in range(max_cycles):
            network.step()
            if network.cycle % idle_check_every == 0:
                traffic_done = network.traffic is None or network.traffic.exhausted(
                    network.cycle
                )
                if traffic_done and network.is_drained():
                    return network.cycle
        return None
    finally:
        if obs is not None:
            obs.finalize(network)


@dataclass
class FaultRunResult:
    """Outcome + packet accounting of one live-fault (chaos) run.

    The conservation invariant every run must satisfy — each created
    packet is delivered, explicitly dropped by a reconfiguration, or still
    in the network when the run ends — is exposed as :attr:`unaccounted`,
    which must be zero.
    """

    cycles: int
    drained: bool
    reconfig_events: int
    created: int
    ejected: int
    dropped_reconfig: int
    rerouted: int
    specials_dropped: int
    occupancy: int
    queued: int

    @property
    def unaccounted(self) -> int:
        return (
            self.created
            - self.ejected
            - self.dropped_reconfig
            - self.occupancy
            - self.queued
        )


def run_with_faults(
    network: Network,
    schedule: FaultSchedule,
    max_cycles: int,
    stop_traffic_at: Optional[int] = None,
    obs=None,
) -> FaultRunResult:
    """Run ``network`` while applying ``schedule``'s live topology changes.

    Each due :class:`~repro.topology.faults.FaultEvent` is applied *in
    place* through ``Network.apply_faults`` / ``Network.restore`` — the
    network object is never rebuilt.  After ``stop_traffic_at`` cycles
    (if given) the traffic source is detached so the run can drain; the
    run ends when the network is empty (``drained=True``) or at
    ``max_cycles``.
    """
    obs = _auto_observer(obs)
    if obs is not None:
        network.attach_obs(obs)
    try:
        events = list(schedule)
        idx = 0
        reconfigs = 0
        drained = False
        for _ in range(max_cycles):
            while idx < len(events) and events[idx].cycle <= network.cycle:
                event = events[idx]
                idx += 1
                if event.action == "fail":
                    network.apply_faults(links=event.links, routers=event.routers)
                else:
                    network.restore(links=event.links, routers=event.routers)
                reconfigs += 1
            if (
                stop_traffic_at is not None
                and network.traffic is not None
                and network.cycle >= stop_traffic_at
            ):
                network.traffic = None
            network.step()
            if idx >= len(events) and network.cycle % 8 == 0:
                traffic_done = network.traffic is None or network.traffic.exhausted(
                    network.cycle
                )
                if traffic_done and network.is_drained():
                    drained = True
                    break
        stats = network.stats
        return FaultRunResult(
            cycles=network.cycle,
            drained=drained,
            reconfig_events=reconfigs,
            created=stats.packets_created,
            ejected=stats.packets_ejected,
            dropped_reconfig=stats.packets_dropped_reconfig,
            rerouted=stats.packets_rerouted,
            specials_dropped=stats.specials_dropped,
            occupancy=network.total_occupancy(),
            queued=network.queued_packets(),
        )
    finally:
        if obs is not None:
            obs.finalize(network)


def deadlocks_within(
    network: Network,
    cycles: int,
    monitor: Optional[DeadlockMonitor] = None,
    obs=None,
) -> bool:
    """Does a true wait-for cycle appear within ``cycles``?  (Fig. 2/3)."""
    if monitor is None:
        monitor = DeadlockMonitor(interval=32)
    obs = _auto_observer(obs)
    if obs is not None:
        network.attach_obs(obs)
    try:
        for _ in range(cycles):
            network.step()
            if monitor.check(network, network.cycle):
                return True
        return False
    finally:
        if obs is not None:
            obs.finalize(network)
