"""Router microarchitecture: VCs, output links, and switch allocation.

Model (Section "DESIGN.md §4"):

* ``radix + 1`` ports — the topology's network ports plus the local
  injection/ejection port (E/N/W/S/Local on the 2D mesh, whose port
  count of 5 is the default); ``vnets * vcs_per_vnet`` packet-deep VCs
  per input port (virtual cut-through).
* 1-cycle router + 1-cycle link: a packet granted the switch at cycle
  ``t`` becomes switchable at the downstream router at ``t + 2``; its
  tail occupies the upstream VC and the link for ``size`` cycles.
* Separable round-robin switch allocation: one grant per input port and
  per output port per cycle.
* Scheme hooks: the ``is_deadlock`` / IO-priority injection restriction
  (Static Bubble disables), the activated static-bubble VC, and escape
  VCs are all modelled here so that every scheme shares one router.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.turns import Port
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network

#: VC kinds.
VC_NORMAL = 0
VC_ESCAPE = 1
VC_BUBBLE = 2


class VirtualChannel:
    """One packet-deep virtual channel at an input port."""

    __slots__ = ("port", "index", "vnet", "kind", "packet", "ready_at", "free_at")

    def __init__(self, port: int, index: int, vnet: int, kind: int = VC_NORMAL):
        self.port = port
        self.index = index
        self.vnet = vnet
        self.kind = kind
        self.packet: Optional[Packet] = None
        #: Cycle from which the resident packet may be switched onward.
        self.ready_at = 0
        #: Cycle from which an empty VC may be re-reserved (tail drain).
        self.free_at = 0

    def is_free(self, now: int) -> bool:
        return self.packet is None and now >= self.free_at

    def has_switchable_packet(self, now: int) -> bool:
        return self.packet is not None and now >= self.ready_at

    def __repr__(self) -> str:
        kind = {VC_NORMAL: "N", VC_ESCAPE: "E", VC_BUBBLE: "B"}[self.kind]
        name = Port(self.port).name if 0 <= self.port < 5 else str(self.port)
        return f"VC(p={name},i={self.index},{kind},pkt={self.packet})"


class OutputLink:
    """The unidirectional channel behind one output port."""

    __slots__ = ("dest_node", "dest_in_port", "busy_until", "special_blocked_at")

    def __init__(self, dest_node: Optional[int], dest_in_port: int = -1):
        #: Downstream router id; ``None`` for the ejection (local) port.
        self.dest_node = dest_node
        #: Input port at the downstream router this link feeds — the
        #: per-edge generalization of the mesh's ``OPPOSITE_PORT`` table
        #: (-1 for the ejection port).
        self.dest_in_port = dest_in_port
        self.busy_until = 0
        #: Cycle in which a special message claimed this link (flits lose
        #: switch arbitration for that cycle, paper footnote 10).
        self.special_blocked_at = -1

    def is_free(self, now: int) -> bool:
        return now >= self.busy_until and self.special_blocked_at != now


class Router:
    """One router (any topology; the 2D mesh's 5 ports are the default)."""

    def __init__(
        self, node: int, vnets: int, vcs_per_vnet: int, num_ports: int = 5
    ) -> None:
        self.node = node
        self.vnets = vnets
        self.vcs_per_vnet = vcs_per_vnet
        #: Ports including local; ``local`` is always the last port index.
        self.num_ports = num_ports
        self.local = num_ports - 1
        #: input_vcs[port] -> list of VirtualChannel (normal, then escape).
        self.input_vcs: List[List[VirtualChannel]] = [[] for _ in range(num_ports)]
        for port in range(num_ports):
            for vnet in range(vnets):
                for i in range(vcs_per_vnet):
                    self.input_vcs[port].append(
                        VirtualChannel(port, len(self.input_vcs[port]), vnet)
                    )
        #: output_links[port] -> OutputLink or None when no active link.
        self.output_links: List[Optional[OutputLink]] = [None] * num_ports
        #: Round-robin pointers for input-side and output-side arbiters.
        self._in_rr = [0] * num_ports
        self._out_rr = [0] * num_ports
        #: Per-input-port round-robin pointer breaking credit ties in the
        #: adaptive outport selection (unused by deterministic schemes).
        self._adapt_rr = [0] * num_ports
        #: Number of packets resident in this router (fast idle skip).
        self._occupancy = 0
        #: Wake hook installed by the owning network: called with this
        #: router's node id whenever occupancy becomes positive, so the
        #: network's active-router set tracks every occupancy mutation
        #: (including hand-placed packets in tests) without a full scan.
        self._wake: Optional[Callable[[int], None]] = None
        #: Lazily built ``tuple(port_vcs(port))`` per port; invalidated on
        #: bubble activation/deactivation, bubble drain, and escape-VC
        #: provisioning — the only events that change VC membership.
        self._vc_cache: List[Optional[Tuple[VirtualChannel, ...]]] = [None] * num_ports
        #: Membership-change hook installed by a fast engine: called with
        #: this router's node id from ``invalidate_vc_cache`` so mirrored
        #: state can be resynchronized lazily.
        self._dirty_hook: Optional[Callable[[int], None]] = None
        #: Structure hook, also installed by a fast engine: fired when VC
        #: *membership or classing* changes (``add_escape_vcs`` /
        #: ``add_static_bubble`` running post-warm), which a value-level
        #: resync cannot absorb — the mirror must rebuild its slot layout.
        self._structure_hook: Optional[Callable[[int], None]] = None
        #: Seal hook installed by the Static Bubble scheme: called with the
        #: node id from ``set_io_restriction`` so the scheme's sealed-router
        #: set tracks every install site (including direct calls in tests).
        self._seal_hook: Optional[Callable[[int], None]] = None
        #: Flat tuple of all compass-port (E/N/W/S) input VCs, rebuilt with
        #: the class index — the SB watch logic walks this every cycle.
        self.compass_vcs: Tuple[VirtualChannel, ...] = ()
        #: Per-port map (kind, vnet) -> VCs in index order, so the free-VC
        #: search touches only candidates of the right class.
        self._class_vcs: List[Dict[Tuple[int, int], Tuple[VirtualChannel, ...]]] = []
        self._rebuild_class_index()

        # -- deadlock-scheme state (Section IV) --
        #: Injection restriction installed by a disable message.
        self.is_deadlock = False
        self.io_in_port: Optional[int] = None
        self.io_out_port: Optional[int] = None
        self.source_id: Optional[int] = None
        #: Cycle at which the current IO restriction was installed.
        self.io_set_at = 0
        #: The static bubble VC (only on SB routers; None elsewhere).
        self.bubble: Optional[VirtualChannel] = None
        self.bubble_active = False

    # -- occupancy / activity tracking -------------------------------------

    @property
    def occupancy(self) -> int:
        """Packets resident in this router (fast idle skip)."""
        return self._occupancy

    @occupancy.setter
    def occupancy(self, value: int) -> None:
        self._occupancy = value
        if value > 0 and self._wake is not None:
            self._wake(self.node)

    # -- VC caches ----------------------------------------------------------

    def invalidate_vc_cache(self) -> None:
        """Drop the cached per-port VC tuples (bubble/provisioning change)."""
        cache = self._vc_cache
        for port in range(self.num_ports):
            cache[port] = None
        if self._dirty_hook is not None:
            self._dirty_hook(self.node)

    def cached_port_vcs(self, port: int) -> Tuple[VirtualChannel, ...]:
        """``tuple(port_vcs(port))``, cached until VC membership changes."""
        vcs = self._vc_cache[port]
        if vcs is None:
            vcs = tuple(self.port_vcs(port))
            self._vc_cache[port] = vcs
        return vcs

    def _rebuild_class_index(self) -> None:
        self._class_vcs = []
        for port in range(self.num_ports):
            by_class: Dict[Tuple[int, int], List[VirtualChannel]] = {}
            for vc in self.input_vcs[port]:
                by_class.setdefault((vc.kind, vc.vnet), []).append(vc)
            self._class_vcs.append(
                {key: tuple(vcs) for key, vcs in by_class.items()}
            )
        self.compass_vcs = tuple(
            vc for port in range(self.num_ports - 1) for vc in self.input_vcs[port]
        )

    # -- construction helpers ---------------------------------------------

    def add_escape_vcs(self, reserve_existing: bool = True) -> None:
        """Provision one escape VC per vnet at every input port.

        With ``reserve_existing`` (the paper's framing: "one VC per message
        class per input port always needs to be kept reserved"), the last
        normal VC of each vnet is converted into the escape VC, so normal
        traffic sees one VC less.  Otherwise an extra VC is appended.
        """
        for port in range(self.num_ports):
            if reserve_existing:
                converted = set()
                for vc in reversed(self.input_vcs[port]):
                    if vc.kind == VC_NORMAL and vc.vnet not in converted:
                        vc.kind = VC_ESCAPE
                        converted.add(vc.vnet)
                if len(converted) != self.vnets:
                    raise RuntimeError("not enough VCs to reserve escapes")
            else:
                for vnet in range(self.vnets):
                    self.input_vcs[port].append(
                        VirtualChannel(port, len(self.input_vcs[port]), vnet, VC_ESCAPE)
                    )
        self._rebuild_class_index()
        self.invalidate_vc_cache()
        if self._structure_hook is not None:
            self._structure_hook(self.node)

    def add_static_bubble(self) -> None:
        """Attach the (initially off) static bubble buffer."""
        self.bubble = VirtualChannel(-1, -1, 0, VC_BUBBLE)
        self.invalidate_vc_cache()
        if self._structure_hook is not None:
            self._structure_hook(self.node)

    def activate_bubble(self, in_port: int) -> None:
        if self.bubble is None:
            raise RuntimeError(f"router {self.node} has no static bubble")
        self.bubble.port = in_port
        self.bubble_active = True
        self.invalidate_vc_cache()

    def deactivate_bubble(self) -> None:
        self.bubble_active = False
        self.invalidate_vc_cache()

    # -- queries ------------------------------------------------------------

    def all_vcs(self):
        for port_vcs in self.input_vcs:
            for vc in port_vcs:
                yield vc
        if self.bubble is not None and (self.bubble_active or self.bubble.packet):
            yield self.bubble

    def occupied_vcs(self, now: int) -> List[VirtualChannel]:
        return [vc for vc in self.all_vcs() if vc.has_switchable_packet(now)]

    def port_vcs(self, port: int, include_bubble: bool = True):
        """VCs logically attached to ``port``.

        The static bubble counts while it is active or still holds a
        packet (a resident must stay switchable even after the bubble is
        administratively switched off).
        """
        yield from self.input_vcs[port]
        if (
            include_bubble
            and self.bubble is not None
            and (self.bubble_active or self.bubble.packet is not None)
            and self.bubble.port == port
        ):
            yield self.bubble

    def free_vc_for(self, port: int, packet: Packet, now: int) -> Optional[VirtualChannel]:
        """A free VC at input port ``port`` usable by ``packet``.

        Escape packets use escape VCs only; normal packets use normal VCs,
        falling back to an *active* static bubble attached to this port.
        """
        wanted_kind = VC_ESCAPE if packet.is_escape else VC_NORMAL
        for vc in self._class_vcs[port].get((wanted_kind, packet.vnet), ()):
            if vc.packet is None and now >= vc.free_at:
                return vc
        if (
            not packet.is_escape
            and self.bubble is not None
            and self.bubble_active
            and self.bubble.port == port
            and self.bubble.is_free(now)
        ):
            return self.bubble
        return None

    def injection_allowed(self, in_port: int, out_port: int) -> bool:
        """Apply the IO-priority restriction installed by a disable.

        When ``is_deadlock`` is set, only the chain's input port may send
        into the chain's output port (no new packets enter the sealed
        dependence cycle; local injection into it is also stopped).
        """
        if not self.is_deadlock:
            return True
        if out_port != self.io_out_port:
            return True
        return in_port == self.io_in_port

    def set_io_restriction(
        self, in_port: int, out_port: int, source: int, now: int = 0
    ) -> None:
        self.is_deadlock = True
        self.io_in_port = in_port
        self.io_out_port = out_port
        self.source_id = source
        self.io_set_at = now
        if self._seal_hook is not None:
            self._seal_hook(self.node)

    def clear_io_restriction(self) -> None:
        self.is_deadlock = False
        self.io_in_port = None
        self.io_out_port = None
        self.source_id = None

    def vc_wants_output(self, port: int, out_port: int, now: int) -> bool:
        """Buffer Dependency Check unit: any VC at ``port`` wanting ``out_port``?"""
        for vc in self.cached_port_vcs(port):
            if vc.has_switchable_packet(now):
                pkt = vc.packet
                if self._requested_output(pkt) == out_port:
                    return True
        return False

    def _requested_output(self, packet: Packet) -> int:
        """Output port the packet wants at this router (escape-aware).

        Adaptive packets report the preference cached by the last
        allocation scan (``packet.adapt_out``); before any scan has run
        at this router, the lowest-numbered minimal candidate stands in.
        The single-outport view is what probes, seal checks, and trace
        events consume — the allocator itself uses the full candidate
        set via :meth:`adaptive_order`.
        """
        if packet.is_escape and self._escape_lookup is not None:
            return self._escape_lookup(self.node, packet.dst)
        if self._adaptive_lookup is not None:
            out = packet.adapt_out
            if out >= 0:
                return out
            candidates = self._adaptive_lookup(self.node, packet.dst)
            return candidates[0] if candidates else self.local
        return packet.route[packet.hop]

    # -- adaptive outport selection ----------------------------------------

    def downstream_credits(self, out: int, vnet: int, routers, now: int) -> int:
        """Free non-escape VCs of ``vnet`` at the downstream input port.

        This is the credit signal the adaptive selection scores with: the
        count of immediately claimable normal VCs behind outport ``out``.
        Escape VCs never count (they belong to the recovery layer) and
        neither does a static bubble (claimable, but only as a last
        resort through :meth:`free_vc_for` — scoring it would steer load
        *into* the recovery resource).  Returns 0 for a dead link.
        """
        link = self.output_links[out]
        if link is None or link.dest_node is None:
            return 0
        downstream = routers[link.dest_node]
        credits = 0
        in_port = link.dest_in_port
        for vc in downstream._class_vcs[in_port].get((VC_NORMAL, vnet), ()):
            if vc.packet is None and now >= vc.free_at:
                credits += 1
        return credits

    def adaptive_order(
        self, in_port: int, packet: Packet, routers, now: int
    ) -> List[int]:
        """Minimal outport candidates for ``packet``, best-first.

        Order: downstream credit count descending, ties broken by the
        per-input-port round-robin pointer ``_adapt_rr[in_port]`` (the
        pointer advances only when a grant lands, mirroring the switch
        arbiters).  Candidates whose output link is torn down are
        dropped; the ejection port (destination reached) is always the
        sole candidate and shortcuts the scoring walk.
        """
        candidates = self._adaptive_lookup(self.node, packet.dst)
        if len(candidates) <= 1:
            return list(candidates)
        rr = self._adapt_rr[in_port]
        scored = []
        for out in candidates:
            if self.output_links[out] is None:
                continue
            scored.append(
                (
                    -self.downstream_credits(out, packet.vnet, routers, now),
                    (out - rr) % self.num_ports,
                    out,
                )
            )
        scored.sort()
        return [entry[2] for entry in scored]

    #: Installed by the escape-VC scheme: (node, dst) -> output port.
    _escape_lookup: Optional[Callable[[int, int], int]] = None
    #: Installed by an adaptive scheme: (node, dst) -> tuple of minimal
    #: outport candidates (ascending).  ``None`` under deterministic
    #: schemes, which keeps the allocation hot path branch-free for them.
    _adaptive_lookup: Optional[Callable[[int, int], Tuple[int, ...]]] = None

    def __repr__(self) -> str:
        return f"Router({self.node}, occ={self.occupancy}, dl={self.is_deadlock})"
