"""The network: routers + links + NIs + scheme, advanced cycle by cycle.

Per-cycle order (one ``step()``):

1. Deliver special messages due this cycle (Static Bubble protocol);
   forwarded copies are scheduled ``now + 2`` (1-cycle process + 1-cycle
   link) and claim their output link for the cycle (flits lose switch
   arbitration to them, paper footnote 10).
2. Inject traffic: ask the traffic generator for new packets, then move
   queued packets into free local-port VCs.
3. Switch allocation at every occupied router (separable round-robin,
   one grant per input and output port) and the granted transfers.
4. Scheme per-cycle work (SB counter FSMs / escape-VC diversion timers).
   Specials launched here claim their link for the *next* cycle — this
   cycle's switch allocation has already run (footnote 10 timing).

An attached ``repro.obs.Observer`` (see ``attach_obs``) receives typed
events from every phase plus an end-of-cycle sampling hook; when no
observer is attached each emission site costs one attribute check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.messages import MsgType, SpecialMessage
from repro.obs.events import (
    PACKET_DROP,
    PACKET_REROUTE,
    PACKET_TRANSFER,
    RECONFIG_APPLY,
    RECONFIG_RESTORE,
    SPECIAL_DELIVER,
    SPECIAL_DROP,
    SPECIAL_SEND,
    VERIFY_CERTIFICATE,
)
from repro.routing.table import RoutingTable
from repro.sim.config import SimConfig
from repro.sim.ni import NetworkInterface
from repro.sim.packet import Packet
from repro.sim.router import Router, VC_BUBBLE, VirtualChannel, OutputLink
from repro.sim.stats import NetworkStats
from repro.topology.base import BaseTopology as Topology
from repro.utils.rng import spawn_rng

_SPECIAL_STAT_KEY = {
    MsgType.PROBE: "probe",
    MsgType.DISABLE: "disable",
    MsgType.ENABLE: "enable",
    MsgType.CHECK_PROBE: "check_probe",
}


#: Engines selectable at :class:`Network` construction.
ENGINES = ("reference", "fast")


class Network:
    """A simulated NoC over one (possibly irregular) topology.

    ``engine`` selects the cycle-loop implementation:

    * ``"reference"`` (default): the object-per-VC engine in this module —
      the semantic ground truth every other engine must match bit-for-bit.
    * ``"fast"``: the struct-of-arrays engine in :mod:`repro.sim.fastcore`
      (requires numpy).  ``Network(..., engine="fast")`` transparently
      constructs a :class:`~repro.sim.fastcore.FastNetwork`.
    """

    def __new__(
        cls,
        topo=None,
        config=None,
        scheme=None,
        traffic=None,
        seed: int = 1,
        engine: str = "reference",
    ):
        if cls is Network and engine == "fast":
            try:
                from repro.sim.fastcore import FastNetwork
            except ImportError as exc:  # pragma: no cover - numpy is a dep
                raise RuntimeError(
                    "engine='fast' requires numpy; install it or use "
                    "engine='reference'"
                ) from exc
            return super().__new__(FastNetwork)
        return super().__new__(cls)

    def __init__(
        self,
        topo: Topology,
        config: SimConfig,
        scheme,
        traffic=None,
        seed: int = 1,
        engine: str = "reference",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")
        self.engine = engine
        config.validate()
        if topo.kind == "mesh" and (topo.width, topo.height) != (
            config.width,
            config.height,
        ):
            raise ValueError("topology and config dimensions disagree")
        self.topo = topo
        #: Port geometry, fixed per topology: ``_local`` is the ejection
        #: port (the last port index), ``_port_names`` the display names.
        self._num_ports = topo.num_ports
        self._local = topo.local_port
        self._port_names = tuple(topo.port_name(p) for p in range(topo.num_ports))
        self.config = config
        self.scheme = scheme
        self.traffic = traffic
        self.stats = NetworkStats()
        self.cycle = 0
        self._seed = seed
        self._rng = spawn_rng(seed, "network")
        #: Attached observer (``repro.obs.Observer``) or None.  Every
        #: emission site is gated on one ``is not None`` check, so an
        #: unobserved network pays nothing beyond the attribute load.
        self.obs = None
        #: True while ``step()`` is past switch allocation for the current
        #: cycle: a special launched then must claim the *next* cycle's
        #: mux, because this cycle's arbitration has already happened
        #: (paper footnote 10).
        self._post_alloc = False

        # Routers for active nodes only.
        self.routers: Dict[int, Router] = {}
        for node in topo.active_nodes():
            self.routers[node] = Router(
                node, config.vnets, config.vcs_per_vnet, self._num_ports
            )
        self._router_list: List[Router] = list(self.routers.values())

        #: Nodes whose router currently holds (or just received) a packet.
        #: Routers enter on injection/arrival (via the occupancy wake hook)
        #: and leave lazily when the allocation sweep sees ``occupancy == 0``
        #: — so switch allocation skips idle routers without a full scan.
        self._active_nodes: Set[int] = set()
        for router in self._router_list:
            router._wake = self._active_nodes.add
        #: Verification escape hatch: force the pre-active-set full scan of
        #: every router each cycle (bit-identical results, slower).
        self.full_scan = False
        #: Re-certify the scheme's deadlock-freedom claim after every
        #: ``apply_faults`` / ``restore`` (chaos campaigns opt in).
        self.verify_on_reconfig = False
        #: Most recent certificate produced by :meth:`certify`.
        self.last_certificate = None
        #: Failed certificates accumulated over this network's lifetime.
        self.cert_failures = 0

        # Output links (ejection link on every router; inter-router links
        # only where the topology is active).
        for node, router in self.routers.items():
            router.output_links[self._local] = OutputLink(None)
            for direction, neighbor in topo.active_neighbors(node):
                router.output_links[direction] = OutputLink(
                    neighbor, topo.arrival_port(node, direction)
                )

        # Routing tables + NIs.
        tables = scheme.build_tables(topo, config)
        self.nis: Dict[int, NetworkInterface] = {}
        for node, router in self.routers.items():
            table = tables.get(node)
            if table is None:
                continue
            self.nis[node] = NetworkInterface(
                node,
                table,
                router,
                self.stats,
                spawn_rng(seed, "ni", node),
                queue_cap=config.injection_queue_cap,
            )
        self._ni_list: List[NetworkInterface] = list(self.nis.values())

        #: Special messages in flight: arrival cycle -> [(node, in_port, msg)].
        self._special_arrivals: Dict[int, List[Tuple[int, int, SpecialMessage]]] = {}

        # Closed-loop traffic sources react to packet deliveries.
        if traffic is not None and hasattr(traffic, "on_packet_ejected"):
            hook = traffic.on_packet_ejected
            for ni in self._ni_list:
                ni.eject_hook = hook

        scheme.setup(self)
        self._engine_setup()

    def _engine_setup(self) -> None:
        """Engine-specific post-construction hook (mirror build in fastcore)."""

    # -- access --------------------------------------------------------

    def router_at(self, node: int) -> Router:
        return self.routers[node]

    def attach_obs(self, observer) -> None:
        """Attach a ``repro.obs.Observer`` to this network.

        Wires the observer into the NIs (inject/eject events, latency
        histogram), the scheme (FSM transition tracing), and the per-cycle
        sampling hook.  Detach by assigning ``network.obs = None``.
        """
        self.obs = observer
        for ni in self._ni_list:
            ni.obs = observer
        observer.bind(self)
        self.scheme.attach_obs(self, observer)

    def active_routers(self) -> List[Router]:
        return self._router_list

    def total_occupancy(self) -> int:
        return sum(router.occupancy for router in self._router_list)

    def queued_packets(self) -> int:
        return sum(len(ni.queue) for ni in self._ni_list)

    def is_drained(self) -> bool:
        return self.total_occupancy() == 0 and self.queued_packets() == 0

    # -- special message transport ---------------------------------------

    def send_special(self, from_node: int, out_port: int, msg: SpecialMessage) -> bool:
        """Launch a special message; False if the output link is absent.

        The link is claimed for this message's allocation opportunity
        (specials beat flits at the output mux, paper footnote 10) and
        delivery is scheduled ``now + 2``.  The claimed cycle depends on
        where in the cycle the send happens: before switch allocation
        (special forwarding, phase 1) the claim covers the *current*
        cycle; after it (``scheme.on_cycle``, phase 4 — FSM timeouts and
        watchdog sends) the current cycle's arbitration has already run,
        so the claim covers the next cycle instead — otherwise it would
        expire without ever blocking a flit.
        """
        router = self.routers[from_node]
        link = router.output_links[out_port]
        if link is None or link.dest_node is None:
            return False
        link.special_blocked_at = self.cycle + 1 if self._post_alloc else self.cycle
        self.stats.link_special_cycles[_SPECIAL_STAT_KEY[msg.mtype]] += 1
        arrival = self.cycle + 2
        self._special_arrivals.setdefault(arrival, []).append(
            (link.dest_node, link.dest_in_port, msg)
        )
        if self.obs is not None:
            self.obs.emit(
                self.cycle,
                SPECIAL_SEND,
                from_node,
                {
                    "mtype": msg.mtype.name,
                    "sender": msg.sender,
                    "out": self._port_names[out_port],
                    "turns": len(msg.turns),
                    "arrival": arrival,
                },
            )
        return True

    def _deliver_specials(self, now: int) -> None:
        arrivals = self._special_arrivals.pop(now, None)
        if not arrivals:
            return
        obs = self.obs
        by_router: Dict[int, List[Tuple[int, SpecialMessage]]] = {}
        for node, in_port, msg in arrivals:
            if node in self.routers:
                by_router.setdefault(node, []).append((in_port, msg))
                if obs is not None:
                    obs.emit(
                        now,
                        SPECIAL_DELIVER,
                        node,
                        {
                            "mtype": msg.mtype.name,
                            "sender": msg.sender,
                            "in_port": self._port_names[in_port],
                            "turns": len(msg.turns),
                        },
                    )
            else:
                # The target router died mid-flight (live reconfiguration):
                # the message is lost exactly like a dropped special — the
                # sender FSM recovers via its timeout — but the loss must
                # be visible, not silent.
                self.stats.specials_dropped += 1
                if obs is not None:
                    obs.emit(
                        now,
                        SPECIAL_DROP,
                        node,
                        {
                            "mtype": msg.mtype.name,
                            "sender": msg.sender,
                            "reason": "dead_router",
                        },
                    )
        for node, messages in by_router.items():
            self.scheme.process_specials(self, self.routers[node], messages, now)

    # -- live reconfiguration ----------------------------------------------

    def apply_faults(
        self,
        links: Iterable[Tuple[int, int]] = (),
        routers: Iterable[int] = (),
    ) -> Dict[str, int]:
        """Deactivate links/routers *mid-run* without rebuilding the network.

        Models the paper's Section II-D reconfiguration (faults and
        power-gating carving an irregular graph out of the mesh) happening
        while traffic is in flight, rather than between runs:

        1. the shared :class:`Topology` is mutated in place;
        2. dead routers are torn down — every resident packet and every
           packet queued at their NI is dropped and counted
           (``packets_dropped_reconfig``);
        3. surviving routers' output links are re-synced to the topology;
        4. routing tables are rebuilt in place via ``scheme.build_tables``
           and swapped into every NI (the "reconfiguration software" step
           the paper assumes costs zero cycles);
        5. in-flight special messages crossing a dead link or addressed to
           a dead router are cancelled (the sender FSM times out);
        6. the scheme reconciles its protocol state
           (:meth:`~repro.protocols.base.DeadlockScheme.on_topology_changed`):
           seals whose chain crosses a dead element are cleared and the
           owning recovery FSMs reset;
        7. salvage: packets (buffered or queued) whose remaining route
           crosses a dead element are re-stamped with a fresh route from
           their current router, or dropped-and-counted when their
           destination became unreachable.

        Returns a summary dict (also emitted as a ``reconfig.apply``
        event when an observer is attached).
        """
        now = self.cycle
        dead_routers = sorted(
            {n for n in routers if self.topo.node_is_active(n)}
        )
        link_list = [tuple(link) for link in links]
        for node in dead_routers:
            self.topo.deactivate_node(node)
        for u, v in link_list:
            self.topo.deactivate_link(u, v)

        dropped = 0
        for node in dead_routers:
            router = self.routers.pop(node)
            self._active_nodes.discard(node)
            for vc in router.all_vcs():
                if vc.packet is not None:
                    dropped += self._count_drop(vc.packet, "dead_router", now)
                    vc.packet = None
            ni = self.nis.pop(node, None)
            if ni is not None:
                for packet in ni.queue:
                    dropped += self._count_drop(packet, "dead_router", now)
                ni.queue.clear()
        self._router_list = list(self.routers.values())
        self._ni_list = list(self.nis.values())

        self._sync_links()
        tables = self._rebuild_tables()
        specials_cancelled = self._purge_dead_specials(now)
        scheme_summary = self.scheme.on_topology_changed(
            self, added=(), removed=dead_routers, now=now
        ) or {}

        rerouted = 0
        for router in self._router_list:
            table = tables.get(router.node)
            for vc in list(router.all_vcs()):
                packet = vc.packet
                if packet is None:
                    continue
                reachable = packet.dst == router.node or (
                    table is not None and table.has_route(packet.dst)
                )
                if not reachable:
                    dropped += self._count_drop(
                        packet, "reconfig_unreachable", now
                    )
                    vc.packet = None
                    router.occupancy -= 1
                    continue
                if packet.is_escape:
                    continue  # follows the (rebuilt) per-router escape tables
                if router._adaptive_lookup is not None:
                    # Adaptive packets carry no committed route — the
                    # reachability check above is the whole salvage story.
                    # Drop the cached preference (it may point at a
                    # torn-down link); the next scan re-chooses from the
                    # rebuilt candidate sets.
                    packet.adapt_out = -1
                    continue
                if self._route_intact(router.node, packet.route, packet.hop):
                    continue
                if packet.dst == router.node:
                    packet.route = (self._local,)
                else:
                    packet.route = table.pick_route(packet.dst, self._rng)
                packet.hop = 0
                rerouted += 1
                self.stats.packets_rerouted += 1
                if self.obs is not None:
                    self.obs.emit(
                        now,
                        PACKET_REROUTE,
                        router.node,
                        {"pid": packet.pid, "dst": packet.dst},
                    )
        for ni in self._ni_list:
            ni_rerouted, ni_dropped = ni.reroute_queued(
                now, lambda node, route: self._route_intact(node, route, 0)
            )
            rerouted += ni_rerouted
            dropped += ni_dropped
        for router in self._router_list:
            router.invalidate_vc_cache()

        summary = {
            "links": len(link_list),
            "routers": len(dead_routers),
            "dropped": dropped,
            "rerouted": rerouted,
            "specials_cancelled": specials_cancelled,
            "seals_cleared": scheme_summary.get("seals_cleared", 0),
            "fsms_reset": scheme_summary.get("fsms_reset", 0),
        }
        if self.obs is not None:
            self.obs.emit(now, RECONFIG_APPLY, -1, summary)
        if self.verify_on_reconfig:
            self.certify()
        return summary

    def restore(
        self,
        links: Iterable[Tuple[int, int]] = (),
        routers: Iterable[int] = (),
    ) -> Dict[str, int]:
        """Reactivate power-gated links/routers mid-run (un-gating).

        The inverse of :meth:`apply_faults`: restored routers come back
        with fresh (empty) buffers and a fresh NI — exactly the state a
        rebuilt network would give them — the scheme re-provisions any
        augmentation (static bubble + FSM, escape VCs) through
        ``on_topology_changed``, and routing tables are rebuilt so traffic
        immediately uses the recovered paths.
        """
        now = self.cycle
        new_routers = sorted(
            {n for n in routers if not self.topo.node_is_active(n)}
        )
        link_list = [tuple(link) for link in links]
        for node in new_routers:
            self.topo.activate_node(node)
        for u, v in link_list:
            self.topo.activate_link(u, v)

        config = self.config
        for node in new_routers:
            router = Router(node, config.vnets, config.vcs_per_vnet, self._num_ports)
            router._wake = self._active_nodes.add
            router.output_links[self._local] = OutputLink(None)
            self.routers[node] = router
        self.routers = dict(sorted(self.routers.items()))
        self._router_list = list(self.routers.values())

        self._sync_links()
        tables = self._rebuild_tables()
        eject_hook = None
        if self.traffic is not None and hasattr(self.traffic, "on_packet_ejected"):
            eject_hook = self.traffic.on_packet_ejected
        for node in new_routers:
            ni = NetworkInterface(
                node,
                tables.get(node) or RoutingTable(node),
                self.routers[node],
                self.stats,
                spawn_rng(self._seed, "ni", node),
                queue_cap=config.injection_queue_cap,
            )
            if eject_hook is not None:
                ni.eject_hook = eject_hook
            ni.obs = self.obs
            self.nis[node] = ni
        self.nis = dict(sorted(self.nis.items()))
        self._ni_list = list(self.nis.values())

        self.scheme.on_topology_changed(
            self, added=new_routers, removed=(), now=now
        )
        for router in self._router_list:
            router.invalidate_vc_cache()

        summary = {"links": len(link_list), "routers": len(new_routers)}
        if self.obs is not None:
            self.obs.emit(now, RECONFIG_RESTORE, -1, summary)
        if self.verify_on_reconfig:
            self.certify()
        return summary

    def certify(self):
        """Machine-check the scheme's deadlock-freedom claim right now.

        Delegates to :meth:`repro.protocols.base.DeadlockScheme.verify`
        against the *current* (possibly faulted) topology, stores the
        certificate in :attr:`last_certificate`, and emits a
        ``verify.certificate`` event when an observer is attached.
        """
        cert = self.scheme.verify(self.topo, self.config)
        self.last_certificate = cert
        if not cert.ok:
            self.cert_failures += 1
        if self.obs is not None:
            self.obs.emit(
                self.cycle,
                VERIFY_CERTIFICATE,
                -1,
                {
                    "kind": cert.kind,
                    "scheme": cert.scheme,
                    "ok": cert.ok,
                    "channels": cert.channels,
                    "edges": cert.edges,
                    "counterexample": cert.counterexample_text,
                },
            )
        return cert

    def _count_drop(self, packet: Packet, reason: str, now: int) -> int:
        self.stats.packets_dropped_reconfig += 1
        if self.obs is not None:
            self.obs.emit(
                now, PACKET_DROP, packet.src, {"reason": reason, "dst": packet.dst}
            )
        return 1

    def _sync_links(self) -> None:
        """Re-derive every router's output links from the topology.

        Links that stayed active keep their :class:`OutputLink` object
        (preserving ``busy_until`` for tails still draining); dead links
        drop to ``None``; restored links get a fresh object.
        """
        for node, router in self.routers.items():
            active = {port: peer for port, peer in self.topo.active_neighbors(node)}
            for port in range(self._local):
                peer = active.get(port)
                if peer is None:
                    router.output_links[port] = None
                elif router.output_links[port] is None:
                    router.output_links[port] = OutputLink(
                        peer, self.topo.arrival_port(node, port)
                    )
            # Re-home the arbiters.  Stale round-robin pointers would keep
            # biasing arbitration toward ports that no longer exist after
            # a reconfiguration — and a network rebuilt from the same
            # faulted topology starts from zero, so in-place must too.
            router._in_rr = [0] * self._num_ports
            router._out_rr = [0] * self._num_ports
            router._adapt_rr = [0] * self._num_ports

    def _rebuild_tables(self) -> Dict[int, RoutingTable]:
        """Re-run the scheme's table construction and swap tables in place."""
        tables = self.scheme.build_tables(self.topo, self.config)
        for node, ni in self.nis.items():
            ni.table = tables.get(node) or RoutingTable(node)
        return tables

    def _route_intact(self, node: int, route: Sequence[int], hop: int) -> bool:
        """Does the remaining source route cross only live links/routers?"""
        topo = self.topo
        local = self._local
        current = node
        for port in route[hop:]:
            if port == local:
                continue  # ejection exists at every live router
            nxt = topo.neighbor(current, port)
            if nxt is None or not topo.link_is_active(current, nxt):
                return False
            current = nxt
        return True

    def _purge_dead_specials(self, now: int) -> int:
        """Cancel scheduled special arrivals that crossed a dead element."""
        cancelled = 0
        obs = self.obs
        for arrival in list(self._special_arrivals):
            kept: List[Tuple[int, int, SpecialMessage]] = []
            for node, in_port, msg in self._special_arrivals[arrival]:
                upstream = self.topo.neighbor(node, in_port)
                if node not in self.routers:
                    reason = "dead_router"
                elif upstream is None or not self.topo.link_is_active(
                    upstream, node
                ):
                    reason = "dead_link"
                else:
                    kept.append((node, in_port, msg))
                    continue
                cancelled += 1
                self.stats.specials_dropped += 1
                if obs is not None:
                    obs.emit(
                        now,
                        SPECIAL_DROP,
                        node,
                        {
                            "mtype": msg.mtype.name,
                            "sender": msg.sender,
                            "reason": reason,
                        },
                    )
            if kept:
                self._special_arrivals[arrival] = kept
            else:
                del self._special_arrivals[arrival]
        return cancelled

    # -- per-cycle machinery -----------------------------------------------

    def step(self) -> None:
        now = self.cycle
        self._deliver_specials(now)
        self._inject_traffic(now)
        for ni in self._ni_list:
            if ni.queue:
                ni.try_inject(now)
        if self.full_scan:
            for router in self._router_list:
                if router._occupancy:
                    self._allocate_router(router, now)
        elif self._active_nodes:
            # Node order matches the full scan (active_nodes() ascends),
            # so both paths are bit-identical.  Routers drained to zero
            # are evicted here; mid-sweep arrivals re-wake their router
            # for the next cycle (their packets are not yet switchable).
            active = self._active_nodes
            routers = self.routers
            for node in sorted(active):
                router = routers[node]
                if router._occupancy:
                    self._allocate_router(router, now)
                else:
                    active.discard(node)
        self._post_alloc = True
        self.scheme.on_cycle(self, now)
        self._post_alloc = False
        obs = self.obs
        if obs is not None:
            obs.end_cycle(self, now)
        self.stats.cycles += 1
        self.cycle += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def _inject_traffic(self, now: int) -> None:
        if self.traffic is None:
            return
        for src, dst, vnet, size in self.traffic.packets_at(now):
            ni = self.nis.get(src)
            if ni is None:
                self.stats.packets_dropped_unreachable += 1
                if self.obs is not None:
                    self.obs.emit(
                        now, PACKET_DROP, src, {"reason": "unreachable_src", "dst": dst}
                    )
                continue
            ni.create_packet(dst, vnet, size, now)

    # -- switch allocation ---------------------------------------------------

    def _allocate_router(self, router: Router, now: int) -> None:
        requests: List[Tuple[int, VirtualChannel, Packet, int, object, int]] = []
        # Input arbitration: one candidate VC per input port (round-robin).
        # This is the simulator's hottest loop — it runs once per occupied
        # router per cycle — so it works off the router's cached per-port
        # VC tuples and plain-int port arithmetic (no enum construction).
        routers = self.routers
        vc_cache = router._vc_cache
        in_rr = router._in_rr
        output_links = router.output_links
        restricted = router.is_deadlock
        adaptive = router._adaptive_lookup is not None
        num_ports = self._num_ports
        local = self._local
        for port in range(num_ports):
            vcs = vc_cache[port]
            if vcs is None:
                vcs = router.cached_port_vcs(port)
            n = len(vcs)
            if n == 0:
                continue
            start = in_rr[port] % n
            for k in range(n):
                vc = vcs[(start + k) % n]
                packet = vc.packet
                if packet is None or now < vc.ready_at:
                    continue
                if adaptive and not packet.is_escape:
                    grant = self._adaptive_request(router, port, packet, now)
                    if grant is None:
                        continue
                    out, target = grant
                    requests.append(
                        (port, vc, packet, out, target, (start + k + 1) % n)
                    )
                    break
                if packet.is_escape:
                    out = router._requested_output(packet)
                else:
                    out = packet.route[packet.hop]
                link = output_links[out]
                if (
                    link is None
                    or now < link.busy_until
                    or link.special_blocked_at == now
                ):
                    continue
                if restricted and not router.injection_allowed(port, out):
                    continue
                if out == local:
                    target = None
                else:
                    downstream = routers[link.dest_node]
                    target = downstream.free_vc_for(link.dest_in_port, packet, now)
                    if target is None:
                        continue
                requests.append((port, vc, packet, out, target, (start + k + 1) % n))
                break
        if not requests:
            return
        # Output arbitration: one grant per output port (round-robin on
        # input port index).  The input pointer advances only for *granted*
        # requests: a VC that loses here must stay first in line at its
        # port, or it can starve behind fresher arrivals.
        by_out: Dict[int, List[Tuple[int, VirtualChannel, Packet, object, int]]] = {}
        for port, vc, packet, out, target, advance in requests:
            by_out.setdefault(out, []).append((port, vc, packet, target, advance))
        for out, contenders in by_out.items():
            if len(contenders) == 1:
                winner = contenders[0]
            else:
                rr = router._out_rr[out]
                winner = min(contenders, key=lambda c: (c[0] - rr) % num_ports)
            router._out_rr[out] = (winner[0] + 1) % num_ports
            in_rr[winner[0]] = winner[4]
            if adaptive and not winner[2].is_escape:
                # The adaptive tie-break pointer advances past the port
                # that just won, like the switch arbiters: grants rotate
                # preference, losses keep it.
                router._adapt_rr[winner[0]] = (out + 1) % num_ports
            self._transfer(router, winner[1], winner[2], out, winner[3], now)

    def _adaptive_request(
        self, router: Router, port: int, packet: Packet, now: int
    ) -> Optional[Tuple[int, Optional[VirtualChannel]]]:
        """One adaptive packet's switch request: first grantable candidate.

        Walks the credit-ordered minimal candidates
        (:meth:`Router.adaptive_order`) and returns ``(out, target_vc)``
        for the first one that clears every grant condition the
        deterministic path checks (live link, IO-priority seal,
        downstream free VC), or ``None`` when the packet cannot move this
        cycle.  ``packet.adapt_out`` is updated to the winning candidate
        — or the top preference when nothing is grantable — so probes,
        the deadlock oracle, and seal checks see a concrete outport.

        Shared verbatim by both engines: the fast engine's scalar grant
        stage calls this method too, which is what keeps adaptive outport
        choice bit-identical across engines.
        """
        order = router.adaptive_order(port, packet, self.routers, now)
        if not order:
            return None
        packet.adapt_out = order[0]
        output_links = router.output_links
        restricted = router.is_deadlock
        for out in order:
            link = output_links[out]
            if (
                link is None
                or now < link.busy_until
                or link.special_blocked_at == now
            ):
                continue
            if restricted and not router.injection_allowed(port, out):
                continue
            if out == router.local:
                packet.adapt_out = out
                return out, None
            target = self.routers[link.dest_node].free_vc_for(
                link.dest_in_port, packet, now
            )
            if target is None:
                continue
            packet.adapt_out = out
            return out, target
        return None

    def _transfer(
        self,
        router: Router,
        vc: VirtualChannel,
        packet: Packet,
        out: int,
        target: Optional[VirtualChannel],
        now: int,
    ) -> None:
        link = router.output_links[out]
        size = packet.size
        link.busy_until = now + size
        vc.packet = None
        vc.free_at = now + size
        router.occupancy -= 1
        self.stats.buffer_reads += size
        self.stats.crossbar_flits += size
        if out == router.local:
            self.nis[router.node].eject(packet, now)
        else:
            self.stats.link_flit_cycles += size
            self.stats.buffer_writes += size
            target.packet = packet
            target.ready_at = now + 2
            self.routers[link.dest_node].occupancy += 1
            if not packet.is_escape:
                packet.hop += 1
                # Any cached adaptive preference referred to the router
                # just left; the next allocation scan re-chooses here.
                packet.adapt_out = -1
            if self.obs is not None:
                self.obs.emit(
                    now,
                    PACKET_TRANSFER,
                    router.node,
                    {
                        "pid": packet.pid,
                        "to": link.dest_node,
                        "out": self._port_names[out],
                        "size": size,
                    },
                )
        if vc.kind == VC_BUBBLE:
            # A drained bubble may leave the port's VC membership (it is
            # only attached while active or occupied).
            router.invalidate_vc_cache()
            self.scheme.on_bubble_drained(self, router, now)
