"""The network: routers + links + NIs + scheme, advanced cycle by cycle.

Per-cycle order (one ``step()``):

1. Deliver special messages due this cycle (Static Bubble protocol);
   forwarded copies are scheduled ``now + 2`` (1-cycle process + 1-cycle
   link) and claim their output link for the cycle (flits lose switch
   arbitration to them, paper footnote 10).
2. Inject traffic: ask the traffic generator for new packets, then move
   queued packets into free local-port VCs.
3. Switch allocation at every occupied router (separable round-robin,
   one grant per input and output port) and the granted transfers.
4. Scheme per-cycle work (SB counter FSMs / escape-VC diversion timers).
   Specials launched here claim their link for the *next* cycle — this
   cycle's switch allocation has already run (footnote 10 timing).

An attached ``repro.obs.Observer`` (see ``attach_obs``) receives typed
events from every phase plus an end-of-cycle sampling hook; when no
observer is attached each emission site costs one attribute check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.messages import MsgType, SpecialMessage
from repro.core.turns import OPPOSITE_PORT, Port
from repro.obs.events import (
    PACKET_DROP,
    PACKET_TRANSFER,
    SPECIAL_DELIVER,
    SPECIAL_SEND,
)
from repro.sim.config import SimConfig
from repro.sim.ni import NetworkInterface
from repro.sim.packet import Packet
from repro.sim.router import Router, VC_BUBBLE, VirtualChannel, OutputLink
from repro.sim.stats import NetworkStats
from repro.topology.mesh import Topology
from repro.utils.rng import spawn_rng

_SPECIAL_STAT_KEY = {
    MsgType.PROBE: "probe",
    MsgType.DISABLE: "disable",
    MsgType.ENABLE: "enable",
    MsgType.CHECK_PROBE: "check_probe",
}


class Network:
    """A simulated NoC over one (possibly irregular) topology."""

    def __init__(
        self,
        topo: Topology,
        config: SimConfig,
        scheme,
        traffic=None,
        seed: int = 1,
    ) -> None:
        config.validate()
        if (topo.width, topo.height) != (config.width, config.height):
            raise ValueError("topology and config dimensions disagree")
        self.topo = topo
        self.config = config
        self.scheme = scheme
        self.traffic = traffic
        self.stats = NetworkStats()
        self.cycle = 0
        self._rng = spawn_rng(seed, "network")
        #: Attached observer (``repro.obs.Observer``) or None.  Every
        #: emission site is gated on one ``is not None`` check, so an
        #: unobserved network pays nothing beyond the attribute load.
        self.obs = None
        #: True while ``step()`` is past switch allocation for the current
        #: cycle: a special launched then must claim the *next* cycle's
        #: mux, because this cycle's arbitration has already happened
        #: (paper footnote 10).
        self._post_alloc = False

        # Routers for active nodes only.
        self.routers: Dict[int, Router] = {}
        for node in topo.active_nodes():
            self.routers[node] = Router(node, config.vnets, config.vcs_per_vnet)
        self._router_list: List[Router] = list(self.routers.values())

        #: Nodes whose router currently holds (or just received) a packet.
        #: Routers enter on injection/arrival (via the occupancy wake hook)
        #: and leave lazily when the allocation sweep sees ``occupancy == 0``
        #: — so switch allocation skips idle routers without a full scan.
        self._active_nodes: Set[int] = set()
        for router in self._router_list:
            router._wake = self._active_nodes.add
        #: Verification escape hatch: force the pre-active-set full scan of
        #: every router each cycle (bit-identical results, slower).
        self.full_scan = False

        # Output links (ejection link on every router; inter-router links
        # only where the topology is active).
        for node, router in self.routers.items():
            router.output_links[Port.LOCAL] = OutputLink(None)
            for direction, neighbor in topo.active_neighbors(node):
                router.output_links[direction] = OutputLink(neighbor)

        # Routing tables + NIs.
        tables = scheme.build_tables(topo, config)
        self.nis: Dict[int, NetworkInterface] = {}
        for node, router in self.routers.items():
            table = tables.get(node)
            if table is None:
                continue
            self.nis[node] = NetworkInterface(
                node,
                table,
                router,
                self.stats,
                spawn_rng(seed, "ni", node),
                queue_cap=config.injection_queue_cap,
            )
        self._ni_list: List[NetworkInterface] = list(self.nis.values())

        #: Special messages in flight: arrival cycle -> [(node, in_port, msg)].
        self._special_arrivals: Dict[int, List[Tuple[int, int, SpecialMessage]]] = {}

        # Closed-loop traffic sources react to packet deliveries.
        if traffic is not None and hasattr(traffic, "on_packet_ejected"):
            hook = traffic.on_packet_ejected
            for ni in self._ni_list:
                ni.eject_hook = hook

        scheme.setup(self)

    # -- access --------------------------------------------------------

    def router_at(self, node: int) -> Router:
        return self.routers[node]

    def attach_obs(self, observer) -> None:
        """Attach a ``repro.obs.Observer`` to this network.

        Wires the observer into the NIs (inject/eject events, latency
        histogram), the scheme (FSM transition tracing), and the per-cycle
        sampling hook.  Detach by assigning ``network.obs = None``.
        """
        self.obs = observer
        for ni in self._ni_list:
            ni.obs = observer
        observer.bind(self)
        self.scheme.attach_obs(self, observer)

    def active_routers(self) -> List[Router]:
        return self._router_list

    def total_occupancy(self) -> int:
        return sum(router.occupancy for router in self._router_list)

    def queued_packets(self) -> int:
        return sum(len(ni.queue) for ni in self._ni_list)

    def is_drained(self) -> bool:
        return self.total_occupancy() == 0 and self.queued_packets() == 0

    # -- special message transport ---------------------------------------

    def send_special(self, from_node: int, out_port: int, msg: SpecialMessage) -> bool:
        """Launch a special message; False if the output link is absent.

        The link is claimed for this message's allocation opportunity
        (specials beat flits at the output mux, paper footnote 10) and
        delivery is scheduled ``now + 2``.  The claimed cycle depends on
        where in the cycle the send happens: before switch allocation
        (special forwarding, phase 1) the claim covers the *current*
        cycle; after it (``scheme.on_cycle``, phase 4 — FSM timeouts and
        watchdog sends) the current cycle's arbitration has already run,
        so the claim covers the next cycle instead — otherwise it would
        expire without ever blocking a flit.
        """
        router = self.routers[from_node]
        link = router.output_links[out_port]
        if link is None or link.dest_node is None:
            return False
        link.special_blocked_at = self.cycle + 1 if self._post_alloc else self.cycle
        self.stats.link_special_cycles[_SPECIAL_STAT_KEY[msg.mtype]] += 1
        arrival = self.cycle + 2
        self._special_arrivals.setdefault(arrival, []).append(
            (link.dest_node, OPPOSITE_PORT[out_port], msg)
        )
        if self.obs is not None:
            self.obs.emit(
                self.cycle,
                SPECIAL_SEND,
                from_node,
                {
                    "mtype": msg.mtype.name,
                    "sender": msg.sender,
                    "out": Port(out_port).name,
                    "turns": len(msg.turns),
                    "arrival": arrival,
                },
            )
        return True

    def _deliver_specials(self, now: int) -> None:
        arrivals = self._special_arrivals.pop(now, None)
        if not arrivals:
            return
        obs = self.obs
        by_router: Dict[int, List[Tuple[int, SpecialMessage]]] = {}
        for node, in_port, msg in arrivals:
            if node in self.routers:
                by_router.setdefault(node, []).append((in_port, msg))
                if obs is not None:
                    obs.emit(
                        now,
                        SPECIAL_DELIVER,
                        node,
                        {
                            "mtype": msg.mtype.name,
                            "sender": msg.sender,
                            "in_port": Port(in_port).name,
                            "turns": len(msg.turns),
                        },
                    )
        for node, messages in by_router.items():
            self.scheme.process_specials(self, self.routers[node], messages, now)

    # -- per-cycle machinery -----------------------------------------------

    def step(self) -> None:
        now = self.cycle
        self._deliver_specials(now)
        self._inject_traffic(now)
        for ni in self._ni_list:
            ni.try_inject(now)
        if self.full_scan:
            for router in self._router_list:
                if router._occupancy:
                    self._allocate_router(router, now)
        elif self._active_nodes:
            # Node order matches the full scan (active_nodes() ascends),
            # so both paths are bit-identical.  Routers drained to zero
            # are evicted here; mid-sweep arrivals re-wake their router
            # for the next cycle (their packets are not yet switchable).
            active = self._active_nodes
            routers = self.routers
            for node in sorted(active):
                router = routers[node]
                if router._occupancy:
                    self._allocate_router(router, now)
                else:
                    active.discard(node)
        self._post_alloc = True
        self.scheme.on_cycle(self, now)
        self._post_alloc = False
        obs = self.obs
        if obs is not None:
            obs.end_cycle(self, now)
        self.stats.cycles += 1
        self.cycle += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def _inject_traffic(self, now: int) -> None:
        if self.traffic is None:
            return
        for src, dst, vnet, size in self.traffic.packets_at(now):
            ni = self.nis.get(src)
            if ni is None:
                self.stats.packets_dropped_unreachable += 1
                if self.obs is not None:
                    self.obs.emit(
                        now, PACKET_DROP, src, {"reason": "unreachable_src", "dst": dst}
                    )
                continue
            ni.create_packet(dst, vnet, size, now)

    # -- switch allocation ---------------------------------------------------

    def _allocate_router(self, router: Router, now: int) -> None:
        requests: List[Tuple[int, VirtualChannel, Packet, int, object]] = []
        # Input arbitration: one candidate VC per input port (round-robin).
        # This is the simulator's hottest loop — it runs once per occupied
        # router per cycle — so it works off the router's cached per-port
        # VC tuples and plain-int port arithmetic (no enum construction).
        routers = self.routers
        vc_cache = router._vc_cache
        in_rr = router._in_rr
        output_links = router.output_links
        restricted = router.is_deadlock
        for port in range(5):
            vcs = vc_cache[port]
            if vcs is None:
                vcs = router.cached_port_vcs(port)
            n = len(vcs)
            if n == 0:
                continue
            start = in_rr[port] % n
            for k in range(n):
                vc = vcs[(start + k) % n]
                packet = vc.packet
                if packet is None or now < vc.ready_at:
                    continue
                if packet.is_escape:
                    out = router._requested_output(packet)
                else:
                    out = packet.route[packet.hop]
                link = output_links[out]
                if (
                    link is None
                    or now < link.busy_until
                    or link.special_blocked_at == now
                ):
                    continue
                if restricted and not router.injection_allowed(port, out):
                    continue
                if out == 4:  # Port.LOCAL
                    target = None
                else:
                    downstream = routers[link.dest_node]
                    target = downstream.free_vc_for(OPPOSITE_PORT[out], packet, now)
                    if target is None:
                        continue
                requests.append((port, vc, packet, out, target))
                in_rr[port] = (start + k + 1) % n
                break
        if not requests:
            return
        # Output arbitration: one grant per output port (round-robin on
        # input port index).
        by_out: Dict[int, List[Tuple[int, VirtualChannel, Packet, object]]] = {}
        for port, vc, packet, out, target in requests:
            by_out.setdefault(out, []).append((port, vc, packet, target))
        for out, contenders in by_out.items():
            if len(contenders) == 1:
                winner = contenders[0]
            else:
                rr = router._out_rr[out]
                winner = min(contenders, key=lambda c: (c[0] - rr) % 5)
            router._out_rr[out] = (winner[0] + 1) % 5
            self._transfer(router, winner[1], winner[2], out, winner[3], now)

    def _transfer(
        self,
        router: Router,
        vc: VirtualChannel,
        packet: Packet,
        out: int,
        target: Optional[VirtualChannel],
        now: int,
    ) -> None:
        link = router.output_links[out]
        size = packet.size
        link.busy_until = now + size
        vc.packet = None
        vc.free_at = now + size
        router.occupancy -= 1
        self.stats.buffer_reads += size
        self.stats.crossbar_flits += size
        if out == Port.LOCAL:
            self.nis[router.node].eject(packet, now)
        else:
            self.stats.link_flit_cycles += size
            self.stats.buffer_writes += size
            target.packet = packet
            target.ready_at = now + 2
            self.routers[link.dest_node].occupancy += 1
            if not packet.is_escape:
                packet.hop += 1
            if self.obs is not None:
                self.obs.emit(
                    now,
                    PACKET_TRANSFER,
                    router.node,
                    {
                        "pid": packet.pid,
                        "to": link.dest_node,
                        "out": Port(out).name,
                        "size": size,
                    },
                )
        if vc.kind == VC_BUBBLE:
            # A drained bubble may leave the port's VC membership (it is
            # only attached while active or occupied).
            router.invalidate_vc_cache()
            self.scheme.on_bubble_drained(self, router, now)
