"""Diagnostics: inspect deadlocks, FSM state, and special-message traffic.

These are the tools used to debug the recovery protocol itself; they are
shipped because anyone extending the scheme (new placements, new message
types, different flow control) will need exactly them.

* :func:`describe_wait_cycle` — locate every packet of a wait-for cycle
  (router, input port, requested output, seal state).
* :func:`fsm_snapshot` — one line per static-bubble router: FSM state,
  counter, watch target, bubble occupancy.
* :class:`SpecialMessageTracer` — wrap a network to log every special
  message launch (optionally filtered by sender).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.messages import MsgType, SpecialMessage
from repro.core.turns import Port
from repro.sim.deadlock import find_wait_cycle
from repro.sim.network import Network


@dataclass
class WaitingPacket:
    """One packet of a wait-for cycle, located in the network."""

    pid: int
    node: int
    in_port: Port
    wants: Port
    vc_kind: int
    router_sealed: bool
    seal_source: Optional[int]

    def describe(self) -> str:
        seal = f" sealed(src={self.seal_source})" if self.router_sealed else ""
        return (
            f"pid={self.pid} node={self.node} in={self.in_port.name} "
            f"wants={self.wants.name}{seal}"
        )


def locate_packets(network: Network) -> Dict[int, Tuple]:
    """Map pid -> (router, vc) for every packet resident in a VC."""
    located = {}
    for router in network.active_routers():
        for vc in router.all_vcs():
            if vc.packet is not None:
                located[vc.packet.pid] = (router, vc)
    return located


def describe_wait_cycle(network: Network) -> List[WaitingPacket]:
    """The current wait-for cycle as located packets ([] if none)."""
    cycle = find_wait_cycle(network, network.cycle)
    if cycle is None:
        return []
    located = locate_packets(network)
    result = []
    for pid in cycle:
        router, vc = located[pid]
        result.append(
            WaitingPacket(
                pid=pid,
                node=router.node,
                in_port=Port(vc.port),
                wants=Port(router._requested_output(vc.packet)),
                vc_kind=vc.kind,
                router_sealed=router.is_deadlock,
                seal_source=router.source_id,
            )
        )
    return result


def fsm_snapshot(network: Network) -> List[str]:
    """One status line per static-bubble router (empty for other schemes)."""
    scheme = network.scheme
    states = getattr(scheme, "states", None)
    if not states:
        return []
    lines = []
    for node in sorted(states):
        state = states[node]
        router = network.routers[node]
        bubble = router.bubble
        occupied = bubble is not None and bubble.packet is not None
        lines.append(
            f"SB {node:3d}: {state.fsm.state.name:13s} "
            f"count={state.fsm.count:3d}/{state.fsm.threshold:3d} "
            f"watch_idx={state.watch_index:2d} "
            f"bubble={'occupied' if occupied else 'active' if router.bubble_active else 'off'} "
            f"sealed={router.is_deadlock}"
        )
    return lines


class SpecialMessageTracer:
    """Log every special-message launch of a network.

    Usage::

        tracer = SpecialMessageTracer(net, senders={50})
        net.run(200)
        for line in tracer.lines: print(line)

    The tracer wraps ``network.send_special``; call :meth:`detach` to
    restore the original.
    """

    def __init__(
        self,
        network: Network,
        senders: Optional[set] = None,
        sink: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.network = network
        self.senders = senders
        self.sink = sink
        self.lines: List[str] = []
        self.counts: Dict[MsgType, int] = {t: 0 for t in MsgType}
        self._original = network.send_special
        self._installed = self._traced
        network.send_special = self._installed  # type: ignore[method-assign]

    def _traced(self, from_node: int, out_port: int, msg: SpecialMessage) -> bool:
        ok = self._original(from_node, out_port, msg)
        if self.senders is None or msg.sender in self.senders:
            self.counts[msg.mtype] += 1
            line = (
                f"cycle {self.network.cycle:5d}: {msg.mtype.name:11s} "
                f"sender={msg.sender:3d} at node {from_node:3d} "
                f"out {Port(out_port).name:5s} turns={len(msg.turns)} "
                f"{'sent' if ok else 'no-link'}"
            )
            self.lines.append(line)
            if self.sink is not None:
                self.sink(line)
        return ok

    def detach(self) -> None:
        original_func = getattr(self._original, "__func__", None)
        if original_func is type(self.network).send_special:
            # The original was the plain class method: drop our override.
            self.network.__dict__.pop("send_special", None)
        else:
            # The original was itself an override (stacked tracer, test
            # harness, ...): reinstall it.
            self.network.send_special = self._original  # type: ignore[method-assign]


def seal_census(network: Network) -> List[Tuple[int, int, Port, Port]]:
    """All currently sealed routers: (node, source, in_port, out_port)."""
    result = []
    for router in network.active_routers():
        if router.is_deadlock:
            result.append(
                (
                    router.node,
                    router.source_id,
                    Port(router.io_in_port),
                    Port(router.io_out_port),
                )
            )
    return result
