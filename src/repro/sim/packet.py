"""Packets.

The simulator works at packet granularity with virtual cut-through flow
control (exactly the abstraction the paper's own walk-through uses); a
packet's flit count still matters for link serialization and energy.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.turns import Port


class Packet:
    """One packet in flight.

    ``route`` is the source route embedded at injection (Section II-D);
    ``hop`` indexes the next output port to take.  A packet diverted into
    the escape layer sets ``is_escape`` and thereafter ignores ``route``,
    following the per-router escape tables instead.  Under an adaptive
    scheme the stamped route is likewise advisory: the router re-chooses
    among all minimal next hops each cycle and caches its current
    preference in ``adapt_out``.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "vnet",
        "size",
        "route",
        "hop",
        "injected_at",
        "ejected_at",
        "is_escape",
        "created_at",
        "adapt_out",
    )

    def __init__(
        self,
        pid: int,
        src: int,
        dst: int,
        vnet: int,
        size: int,
        route: Tuple[Port, ...],
        created_at: int,
    ) -> None:
        self.pid = pid
        self.src = src
        self.dst = dst
        self.vnet = vnet
        self.size = size
        self.route = route
        self.hop = 0
        self.injected_at: Optional[int] = None
        self.ejected_at: Optional[int] = None
        self.is_escape = False
        self.created_at = created_at
        # Outport preference cached by the adaptive allocation scan; -1
        # when no choice has been made at the current router.  Only
        # meaningful under an adaptive scheme — deterministic schemes
        # never read it.
        self.adapt_out = -1

    def next_port(self) -> Port:
        """Next output port per the embedded source route."""
        return self.route[self.hop]

    @property
    def latency(self) -> Optional[int]:
        if self.injected_at is None or self.ejected_at is None:
            return None
        return self.ejected_at - self.injected_at

    @property
    def queueing_latency(self) -> Optional[int]:
        if self.injected_at is None:
            return None
        return self.injected_at - self.created_at

    def __repr__(self) -> str:
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, vnet={self.vnet},"
            f" size={self.size}, hop={self.hop}, escape={self.is_escape})"
        )
