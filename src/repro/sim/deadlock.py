"""Ground-truth deadlock detection (the experiment oracle).

Independent of any recovery scheme, the monitor builds the packet
wait-for graph — packet P (at the head of a VC, wanting output port
``o``) waits on the packets occupying *all* VCs it could use at the next
hop — and searches it for a cycle.  A cycle of buffer waits that cannot
be broken by any drain is precisely a routing deadlock.

Used by the Fig. 2 / Fig. 3 state-space studies (does this topology
deadlock at this injection rate?) and by the test-suite as the oracle
that Static Bubble recovery really clears deadlocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.core.turns import OPPOSITE_PORT, Port
from repro.obs.events import ORACLE_DEADLOCK

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network


def build_wait_graph(network: "Network", now: int) -> Dict[int, List[int]]:
    """The packet wait-for graph: blocked pid -> pids it waits on.

    A packet is *blocked on buffers* when its requested output link is
    healthy and every VC it could occupy at the next hop is held by a
    packet (VCs merely draining their tail are transiently busy and do
    not count — they will free without any dependency).
    """
    # adjacency: pid -> list of pids it waits on
    adjacency: Dict[int, List[int]] = {}
    for router in network.active_routers():
        if router.occupancy == 0:
            continue
        adaptive = router._adaptive_lookup is not None
        for vc in router.all_vcs():
            if not vc.has_switchable_packet(now):
                continue
            packet = vc.packet
            if adaptive and not packet.is_escape:
                # An adaptive packet waits only if EVERY minimal candidate
                # is blocked; its wait set is the union across candidates.
                # Scoring the single cached preference instead would
                # report deadlock while another candidate drains freely.
                outs = router._adaptive_lookup(router.node, packet.dst)
            else:
                outs = (router._requested_output(packet),)
            waits_on: List[int] = []
            blocked = True
            live_candidates = False
            for out in outs:
                if out == Port.LOCAL:
                    blocked = False  # ejection always drains
                    break
                link = router.output_links[out]
                if link is None:
                    # Stuck on a dead link: a routing bug, not deadlock.
                    continue
                live_candidates = True
                downstream = network.router_at(link.dest_node)
                in_port = OPPOSITE_PORT[out]
                wanted_kind = 1 if packet.is_escape else 0  # ESCAPE / NORMAL
                port_free = False
                for cand in downstream.cached_port_vcs(in_port):
                    if cand.kind == 2:  # bubble: usable by normal packets
                        usable = not packet.is_escape
                    elif cand.kind == wanted_kind and cand.vnet == packet.vnet:
                        usable = True
                    else:
                        usable = False
                    if not usable:
                        continue
                    if cand.packet is None:
                        # Free now or merely draining: the wait resolves.
                        port_free = True
                        break
                    waits_on.append(cand.packet.pid)
                if port_free:
                    blocked = False
                    break
            if blocked and live_candidates and waits_on:
                adjacency[packet.pid] = waits_on
    return adjacency


def find_wait_cycle(network: "Network", now: int) -> Optional[List[int]]:
    """Return the pids of one wait-for cycle, or None."""
    return _find_cycle(build_wait_graph(network, now))


def _find_cycle(adjacency: Dict[int, List[int]]) -> Optional[List[int]]:
    """Iterative DFS cycle search over the wait-for graph."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {pid: WHITE for pid in adjacency}
    for start in adjacency:
        if color[start] != WHITE:
            continue
        stack: List[tuple] = [(start, iter(adjacency[start]))]
        path: List[int] = [start]
        #: pid -> position in ``path`` (O(1) cycle slicing on GRAY hits).
        pos: Dict[int, int] = {start: 0}
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in adjacency:
                    continue  # waits on a packet that is itself unblocked
                if color[nxt] == GRAY:
                    # cycle: slice the current path from nxt onward
                    return path[pos[nxt]:]
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(adjacency[nxt])))
                    pos[nxt] = len(path)
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
                del pos[node]
    return None


class DeadlockMonitor:
    """Periodically checks the network for true wait-for cycles.

    ``interval`` spaces out the (O(VCs)) graph construction; the cheap
    progress pre-check (`no transfer since last check`) skips the build
    entirely while traffic is flowing.  Movement does not *prove* the
    absence of a deadlock (a partial deadlock coexists with live traffic
    elsewhere), so after ``max_skips`` consecutive movement-skips the
    graph is built regardless — detection latency is bounded by
    ``(max_skips + 1) * interval`` cycles.
    """

    def __init__(self, interval: int = 64, max_skips: int = 2) -> None:
        self.interval = interval
        self.max_skips = max_skips
        self.deadlocked_pids: Set[int] = set()
        self.first_deadlock_cycle: Optional[int] = None
        self._last_check = 0
        self._last_crossbar_flits: Optional[int] = None
        self._skips = 0
        #: Verdict of the most recent graph build, repeated on skip cycles
        #: so the return value honours the contract below.
        self._last_result = False
        #: Last cycle at which a graph build found *no* wait cycle; bounds
        #: how far back the deadlock could have formed unobserved.
        self._last_clear_cycle: Optional[int] = None

    def check(self, network: "Network", now: int) -> bool:
        """True iff a (new or old) wait cycle exists, as of the last build.

        The graph is only rebuilt when the check is due (``interval``) and
        the movement pre-check does not skip it; on skip cycles the verdict
        of the most recent build is repeated, so a caller polling every
        cycle keeps seeing True once a deadlock has been observed (until a
        later build finds the network clear again).
        """
        if now - self._last_check < self.interval:
            return self._last_result
        self._last_check = now
        flits = network.stats.crossbar_flits
        moved = (
            self._last_crossbar_flits is not None
            and flits != self._last_crossbar_flits
        )
        self._last_crossbar_flits = flits
        if moved and self._skips < self.max_skips:
            self._skips += 1
            return self._last_result
        self._skips = 0
        adjacency = build_wait_graph(network, now)
        cycle = _find_cycle(adjacency)
        if cycle is None:
            self._last_clear_cycle = now
            self._last_result = False
            # The network is cycle-free: any later wait cycle — even one
            # re-forming among previously-seen pids after a successful
            # recovery — is a *new* deadlock and must be counted as such.
            self.deadlocked_pids.clear()
            return False
        # Forget pids that are no longer blocked (recovered and moved on,
        # or ejected): a cycle they re-join later is a fresh deadlock, and
        # the set stays bounded by the in-flight packet population.
        self.deadlocked_pids.intersection_update(adjacency)
        new = [pid for pid in cycle if pid not in self.deadlocked_pids]
        if new:
            network.stats.deadlocks_observed += 1
            self.deadlocked_pids.update(cycle)
            obs = getattr(network, "obs", None)
            if obs is not None:
                obs.emit(now, ORACLE_DEADLOCK, -1, {"pids": list(cycle), "new": new})
        if self.first_deadlock_cycle is None:
            # The cycle formed somewhere between the last clear build and
            # now; backdate to the start of that blind window rather than
            # stamping the (up to ``(max_skips + 1) * interval`` cycles
            # late) detection time.
            if self._last_clear_cycle is not None:
                self.first_deadlock_cycle = self._last_clear_cycle + 1
            else:
                self.first_deadlock_cycle = 0
        self._last_result = True
        return True
