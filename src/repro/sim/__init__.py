"""Cycle-level NoC simulator (virtual cut-through, packet granularity)."""

from repro.sim.config import SimConfig
from repro.sim.packet import Packet
from repro.sim.router import Router, VirtualChannel, OutputLink
from repro.sim.ni import NetworkInterface
from repro.sim.network import Network
from repro.sim.stats import NetworkStats
from repro.sim.deadlock import DeadlockMonitor, find_wait_cycle
from repro.sim.engine import (
    WindowResult,
    deadlocks_within,
    run_cycles,
    run_to_drain,
    run_with_window,
)

__all__ = [
    "SimConfig",
    "Packet",
    "Router",
    "VirtualChannel",
    "OutputLink",
    "NetworkInterface",
    "Network",
    "NetworkStats",
    "DeadlockMonitor",
    "find_wait_cycle",
    "WindowResult",
    "deadlocks_within",
    "run_cycles",
    "run_to_drain",
    "run_with_window",
]
