"""Simulation configuration (the paper's Table II, as a dataclass).

Defaults follow the paper where a choice matters for the reproduced
trends (8x8 mesh, 4 VCs/vnet/port, 1-cycle router + 1-cycle link,
128-bit flits, 1-flit control / 5-flit data packets, ``t_DD = 34``).
``vnets`` defaults to 1 rather than the paper's 3: the paper's vnets
separate coherence message classes, which are orthogonal to the
deadlock phenomena reproduced here, and a single vnet keeps the pure
Python simulator fast; every experiment can override it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SimConfig:
    """Network and protocol parameters for one simulation."""

    width: int = 8
    height: int = 8
    #: Virtual networks (message classes) and VCs per vnet per input port.
    vnets: int = 1
    vcs_per_vnet: int = 4
    #: Packet sizes in flits (mixed traffic uses both).
    data_packet_flits: int = 5
    ctrl_packet_flits: int = 1
    #: Deadlock-detection threshold of the Static Bubble FSM (Table II).
    sb_t_dd: int = 34
    #: Robustness extensions (DESIGN.md §4): give up waiting for an
    #: unclaimed bubble after this many cycles in S_SB_ACTIVE; garbage-
    #: collect a stale IO restriction whose chain has dissolved and whose
    #: enable never arrived after this many cycles; abort a recovery whose
    #: enable keeps getting lost after this many retransmissions.
    sb_bubble_timeout: int = 128
    sb_seal_timeout: int = 256
    sb_enable_retries: int = 16
    #: Stall threshold after which the escape-VC baseline diverts a packet
    #: into the escape layer.  Unlike Static Bubble's t_DD (whose probe
    #: *verifies* a deadlock before acting, so false positives are free),
    #: a timer-based diversion is irrevocable — real designs set it well
    #: above worst-case congestion stalls.
    escape_t_detect: int = 128
    #: Maximum minimal routes stored per (src, dst) pair at the NI.
    max_minimal_routes: int = 4
    #: Per-node injection queue bound; 0 means unbounded.  A bounded queue
    #: models finite NI buffering; experiments that measure accepted
    #: throughput at saturation keep it bounded so offered load backs up.
    injection_queue_cap: int = 64
    #: RNG seed for route choice inside the network.
    seed: int = 1

    def vcs_per_port(self) -> int:
        return self.vnets * self.vcs_per_vnet

    def validate(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.vnets < 1 or self.vcs_per_vnet < 1:
            raise ValueError("need at least one VC per vnet")
        if self.data_packet_flits < 1 or self.ctrl_packet_flits < 1:
            raise ValueError("packet sizes must be >= 1 flit")
        if self.sb_t_dd < 1:
            raise ValueError("t_DD must be >= 1")
