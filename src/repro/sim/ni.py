"""Network interface: source-routing table + injection/ejection queues.

Each active node has an NI that stamps a route onto every packet at
injection (Section II-D).  Packets whose destination is unreachable in
the current topology are dropped at the NI, as in the paper's synthetic
sweeps.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from repro.obs.events import PACKET_DROP, PACKET_INJECT, PACKET_REROUTE
from repro.routing.table import RoutingTable
from repro.sim.packet import Packet
from repro.sim.stats import NetworkStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.router import Router


class NetworkInterface:
    """Injection queue + routing table of one node."""

    def __init__(
        self,
        node: int,
        table: RoutingTable,
        router: "Router",
        stats: NetworkStats,
        rng: random.Random,
        queue_cap: int = 0,
    ) -> None:
        self.node = node
        self.table = table
        self.router = router
        self.stats = stats
        self.rng = rng
        self.queue_cap = queue_cap
        self.queue: Deque[Packet] = deque()
        self._next_pid = node * 10_000_000
        self.packets_refused = 0
        #: Optional callback invoked on every delivery (closed-loop traffic).
        self.eject_hook = None
        #: Attached observer (set by ``Network.attach_obs``) or None.
        self.obs = None

    def create_packet(
        self, dst: int, vnet: int, size: int, now: int
    ) -> Optional[Packet]:
        """Route and enqueue a new packet; None if dropped/refused.

        Drops (unreachable destination) and refusals (queue full) are
        counted separately: refusals are back-pressure at saturation, not
        losses.
        """
        route = self.table.pick_route(dst, self.rng)
        if route is None:
            self.stats.packets_dropped_unreachable += 1
            if self.obs is not None:
                self.obs.emit(
                    now, PACKET_DROP, self.node, {"reason": "unreachable", "dst": dst}
                )
            return None
        if self.queue_cap and len(self.queue) >= self.queue_cap:
            self.packets_refused += 1
            return None
        self._next_pid += 1
        packet = Packet(self._next_pid, self.node, dst, vnet, size, route, now)
        self.queue.append(packet)
        self.stats.packets_created += 1
        return packet

    def try_inject(self, now: int) -> bool:
        """Move the queue head into a free local-port VC (one per cycle)."""
        if not self.queue:
            return False
        packet = self.queue[0]
        local = self.router.local
        vc = self.router.free_vc_for(local, packet, now)
        if vc is None:
            return False
        if not self.router.injection_allowed(local, packet.route[0]):
            # The local port is sealed out of a deadlocked chain; hold the
            # packet at the NI rather than occupying a VC it cannot leave.
            return False
        self.queue.popleft()
        vc.packet = packet
        vc.ready_at = now + 1
        self.router.occupancy += 1
        packet.injected_at = now
        self.stats.packets_injected += 1
        self.stats.flits_injected += packet.size
        self.stats.buffer_writes += packet.size
        if self.obs is not None:
            self.obs.emit(
                now,
                PACKET_INJECT,
                self.node,
                {
                    "pid": packet.pid,
                    "src": packet.src,
                    "dst": packet.dst,
                    "size": packet.size,
                    "vnet": packet.vnet,
                },
            )
        return True

    def reroute_queued(self, now: int, route_ok) -> tuple:
        """Revalidate queued (not-yet-injected) packets after a live
        topology change (``Network.apply_faults``).

        ``route_ok(node, route)`` reports whether a stamped route still
        crosses only live elements.  Packets with a broken route are
        re-stamped from the (already rebuilt) table, or dropped and
        counted when their destination became unreachable.  Returns
        ``(rerouted, dropped)``.
        """
        rerouted = dropped = 0
        survivors: Deque[Packet] = deque()
        for packet in self.queue:
            if route_ok(self.node, packet.route):
                survivors.append(packet)
                continue
            route = self.table.pick_route(packet.dst, self.rng)
            if route is None:
                dropped += 1
                self.stats.packets_dropped_reconfig += 1
                if self.obs is not None:
                    self.obs.emit(
                        now,
                        PACKET_DROP,
                        self.node,
                        {"reason": "reconfig_unreachable", "dst": packet.dst},
                    )
                continue
            packet.route = route
            survivors.append(packet)
            rerouted += 1
            self.stats.packets_rerouted += 1
            if self.obs is not None:
                self.obs.emit(
                    now,
                    PACKET_REROUTE,
                    self.node,
                    {"pid": packet.pid, "dst": packet.dst},
                )
        self.queue = survivors
        return rerouted, dropped

    def eject(self, packet: Packet, now: int) -> None:
        """Sink an arriving packet and record its latency."""
        packet.ejected_at = now + packet.size
        self.stats.packets_ejected += 1
        self.stats.flits_ejected += packet.size
        self.stats.window_packets_ejected += 1
        self.stats.window_flits_ejected += packet.size
        latency = packet.ejected_at - packet.injected_at
        self.stats.latency_sum += latency
        self.stats.total_latency_sum += packet.ejected_at - packet.created_at
        self.stats.window_latency_sum += latency
        if self.obs is not None:
            self.obs.packet_ejected(packet, latency, now)
        if self.eject_hook is not None:
            self.eject_hook(packet, now)
