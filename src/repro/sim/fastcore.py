"""Struct-of-arrays fast engine (``Network(..., engine="fast")``).

The reference engine in :mod:`repro.sim.network` walks every occupied
router and every VC as Python objects each cycle.  At saturation most of
that walk rejects candidates: the VC is empty, its packet is not yet
switchable, the output link is busy, or the downstream port has no free
buffer.  :class:`FastNetwork` keeps the object model as the source of
truth but mirrors the *rejection tests* into flat preallocated numpy
arrays — a packet/VC side table indexed by slot — so each cycle opens
with a handful of masked array ops over all slots at once:

``ready[slot]``
    ``vc.ready_at`` while occupied, else a ``BIG`` sentinel (so plain
    ``<= now`` folds "is there a switchable packet" into one compare).
``outc[slot] -> lbusy[cell]``
    Gather index into per-output-link "free from" times.  A special
    message claiming the link for cycle ``c`` is folded in as
    ``max(busy_until, c + 1)`` — one array answers both rejection tests.
``downc[slot] -> comb[cell]``
    Gather index into per-(router, port, kind, vnet) class availability:
    the min ``free_at`` over the class's empty VCs, pre-merged with the
    attached static bubble's availability for normal classes.  One
    compare answers "does the downstream port have a usable buffer".

The surviving mask is an *over-approximation* of the grantable set:
during the reference engine's ascending-node allocation sweep,
availability only shrinks (grants fill downstream buffers, specials
claim links, bubbles deactivate — nothing mid-sweep creates new
candidates; ``CounterFsm.on_bubble_reclaimed`` never activates a
bubble).  So a cycle-start filter never *misses* a grantable VC, and the
scalar grant stage — a verbatim restriction of
``Network._allocate_router`` to the surviving ports, re-checking every
condition against the live objects — produces bit-identical grants,
round-robin pointer movement, and stats.  IO-priority restrictions
(Static Bubble seals) are deliberately *not* vectorized: they are
re-checked live only, so seal churn needs no mirror maintenance.

Mid-cycle bookkeeping never touches numpy: every mutable plane has a
plain-list shadow updated in place (transfers, injections, resyncs), and
dirtied indices are pushed into the real arrays in one fancy-indexed
batch right before the next filter (``_apply_pending``) — the filter is
the only reader of the arrays, so one batch per cycle is exact.

Scheme hooks need no changes: membership mutations funnel through
``Router.invalidate_vc_cache`` which fires ``Router._dirty_hook`` — the
narrow adapter — and dirtied routers are resynced at the next cycle
start.  In-place packet mutations (the escape-VC scheme flipping
``packet.is_escape`` on buffered packets) fire the same hook directly,
so only the affected routers resync.

Fallbacks: a tracing observer (``Observer(trace=True)``), or
``full_scan``, permanently route ``step()`` through the reference path
(the mirror is rebuilt if the fast path resumes).  ``apply_faults`` /
``restore`` rebuild the mirror wholesale.  Set ``REPRO_FAST_PARANOID=1``
to resync every router every cycle (slow; for debugging mirror drift).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.messages import SpecialMessage
from repro.obs.events import PACKET_TRANSFER
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.sim.router import Router, VC_BUBBLE, VC_ESCAPE, VC_NORMAL, VirtualChannel

#: Time sentinel: larger than any reachable cycle count, small enough to
#: survive int64 arithmetic headroom.
BIG = 1 << 60

class FastNetwork(Network):
    """Struct-of-arrays engine; constructed via ``Network(..., engine="fast")``."""

    # -- construction -------------------------------------------------------

    def _engine_setup(self) -> None:
        self.engine = "fast"
        #: Permanent fallback to the reference step (tracing observer).
        self._force_reference = False
        #: The mirror no longer matches the objects (delegated steps,
        #: escape flips); triggers a full resync at the next fast step.
        self._mirror_stale = False
        self._paranoid = os.environ.get("REPRO_FAST_PARANOID", "") not in ("", "0")
        #: Node ids whose router mutated VC membership since the last sync.
        self._dirty: set = set()
        #: VC *structure* changed post-warm (``add_escape_vcs`` /
        #: ``add_static_bubble`` outside apply_faults/restore): the slot
        #: layout and class cells are wrong, not just their values, so a
        #: value-level resync cannot help — rebuild wholesale.
        self._structure_stale = False
        self._build_mirror()

    def _build_mirror(self) -> None:
        """(Re)build the slot layout, shadows, and value arrays."""
        P = self._num_ports
        local = self._local
        routers = self.routers
        rlist = [routers[node] for node in sorted(routers)]
        self._mrouters: List[Router] = rlist
        self._rpos: Dict[int, int] = {r.node: i for i, r in enumerate(rlist)}
        R = len(rlist)

        slot_vcs: List[VirtualChannel] = []
        slot_rpos: List[int] = []
        slot_port: List[int] = []
        rslots: List[Tuple[int, int]] = []
        ravail: List[Tuple[int, int]] = []
        rlocal: List[Tuple[int, int]] = []
        avail_index: Dict[Tuple[int, int, int, int], int] = {}
        avail_members: List[List[int]] = []
        avail_kind: List[int] = []
        avail_port: List[int] = []
        avail_rpos: List[int] = []
        avail_of_slot: List[int] = []

        pstart: List[int] = []
        bslot: List[int] = []

        for rpos, router in enumerate(rlist):
            slot_lo = len(slot_vcs)
            alo = len(avail_members)
            local_lo = local_hi = 0
            for port in range(P):
                pstart.append(len(slot_vcs))
                if port == local:
                    local_lo = len(slot_vcs)
                for vc in router.input_vcs[port]:
                    key = (rpos, port, vc.kind, vc.vnet)
                    c = avail_index.get(key)
                    if c is None:
                        c = len(avail_members)
                        avail_index[key] = c
                        avail_members.append([])
                        avail_kind.append(vc.kind)
                        avail_port.append(port)
                        avail_rpos.append(rpos)
                    avail_members[c].append(len(slot_vcs))
                    avail_of_slot.append(c)
                    slot_vcs.append(vc)
                    slot_rpos.append(rpos)
                    slot_port.append(port)
                if port == local:
                    local_hi = len(slot_vcs)
            if router.bubble is not None:
                # The bubble gets its own slot with port -1: its attachment
                # port is resolved live at grant time.
                avail_of_slot.append(-1)
                bslot.append(len(slot_vcs))
                slot_vcs.append(router.bubble)
                slot_rpos.append(rpos)
                slot_port.append(-1)
            else:
                bslot.append(-1)
            rslots.append((slot_lo, len(slot_vcs)))
            ravail.append((alo, len(avail_members)))
            rlocal.append((local_lo, local_hi))

        S = len(slot_vcs)
        C = len(avail_members)
        L = R * P  # sentinel link/bubble cell (always unavailable)
        self._S = S
        self._slot_vcs = slot_vcs
        self._slot_rpos = slot_rpos
        self._slot_port = slot_port
        self._avail_members = [tuple(m) for m in avail_members]
        self._avail_of_slot = avail_of_slot
        self._avail_index = avail_index
        self._rslots = rslots
        self._ravail = ravail
        self._rlocal = rlocal
        #: Slot of ``input_vcs[port][0]`` per (rpos, port); with a VC's
        #: stable ``index`` this recovers its slot without a dict lookup.
        self._pstart = pstart
        #: The bubble's slot per router (-1 when it has none).
        self._bslot = bslot
        self._sent_link = L
        self._sent_true = C  # always-available comb cell (LOCAL ejection)
        self._sent_false = C + 1
        #: Always-free link cell: adaptive slots point here so the filter
        #: reduces to ``ready <= now`` — a multi-candidate request has no
        #: single (outc, downc) pair, so stage 2 evaluates it live.
        self._sent_pass = L + 1

        # Which bubble-availability cell folds into each class cell (the
        # class's own (router, port) for normal classes; escape packets
        # never use the bubble).  Inverse map for bubble-side updates.
        self._comb_bub: List[int] = [
            avail_rpos[c] * P + avail_port[c] if avail_kind[c] == VC_NORMAL else -1
            for c in range(C)
        ]
        bub_combs: List[List[int]] = [[] for _ in range(L)]
        for c, b in enumerate(self._comb_bub):
            if b >= 0:
                bub_combs[b].append(c)
        self._bub_combs = [tuple(cs) for cs in bub_combs]

        # Shadows (plain lists; the numpy arrays below mirror them).
        self._ready_py: List[int] = [BIG] * S
        self._outc_py: List[int] = [L] * S
        self._downc_py: List[int] = [C + 1] * S
        self._free_py: List[int] = [0] * S
        self._lbusy_py: List[int] = [0] * L + [BIG, 0]
        self._avail_py: List[int] = [0] * C
        self._bubav_py: List[int] = [BIG] * (L + 1)
        self._comb_py: List[int] = [0] * C + [0, BIG]

        self._ready = np.full(S, BIG, dtype=np.int64)
        self._outc = np.full(S, L, dtype=np.intp)
        self._downc = np.full(S, C + 1, dtype=np.intp)
        self._lbusy = np.zeros(L + 2, dtype=np.int64)
        self._lbusy[L] = BIG  # [L + 1] stays 0: the always-free cell
        self._comb = np.zeros(C + 2, dtype=np.int64)
        self._comb[C + 1] = BIG
        self._t1 = np.empty(S, dtype=np.int64)
        self._t2 = np.empty(S, dtype=np.int64)
        self._b0 = np.empty(S, dtype=bool)

        # Indices whose shadow changed since the last batch apply (plain
        # lists, duplicates allowed: the apply reads values from the
        # shadows, so writing an index twice is harmless and appending is
        # cheaper than set insertion on the hot path).
        self._tslots: List[int] = []
        self._tlinks: List[int] = []
        self._tcomb: List[int] = []

        for router in rlist:
            router._dirty_hook = self._dirty.add
            router._structure_hook = self._on_structure_change

        # Injection prefilter: with one vnet every queued packet wants the
        # (LOCAL, normal, vnet 0) class, so the class cell decides "is a
        # VC free" exactly and `try_inject` is only entered when it can
        # succeed (its failure path is side-effect- and RNG-free).
        if self.config.vnets == 1:
            cells = []
            for ni in self._ni_list:
                rp = self._rpos.get(ni.node)
                cells.append(
                    avail_index.get((rp, local, VC_NORMAL, 0), C + 1)
                    if rp is not None
                    else C + 1
                )
            self._inj_cells: Optional[List[int]] = cells
        else:
            self._inj_cells = None

        for rpos in range(R):
            self._resync_router(rpos)
        self._dirty.clear()
        self._structure_stale = False
        self._apply_pending()

    # -- mirror synchronization ---------------------------------------------

    def _apply_pending(self) -> None:
        """Push shadow changes into the numpy planes (one batch per cycle)."""
        idx = self._tslots
        if idx:
            ready = self._ready_py
            outc = self._outc_py
            downc = self._downc_py
            self._ready[idx] = [ready[i] for i in idx]
            self._outc[idx] = [outc[i] for i in idx]
            self._downc[idx] = [downc[i] for i in idx]
            self._tslots = []
        idx = self._tlinks
        if idx:
            lbusy = self._lbusy_py
            self._lbusy[idx] = [lbusy[i] for i in idx]
            self._tlinks = []
        idx = self._tcomb
        if idx:
            comb = self._comb_py
            self._comb[idx] = [comb[i] for i in idx]
            self._tcomb = []

    def _sync_slot(self, i: int) -> None:
        """Refresh one slot's shadow values from its live VC."""
        vc = self._slot_vcs[i]
        packet = vc.packet
        self._tslots.append(i)
        if packet is None:
            self._ready_py[i] = BIG
            self._free_py[i] = vc.free_at
            self._outc_py[i] = self._sent_link
            self._downc_py[i] = self._sent_false
            return
        self._ready_py[i] = vc.ready_at
        self._free_py[i] = BIG
        rpos = self._slot_rpos[i]
        router = self._mrouters[rpos]
        if not packet.is_escape and router._adaptive_lookup is not None:
            # Multi-candidate request: no single (outc, downc) pair can
            # express "grantable via any minimal hop", so the filter
            # passes whenever the packet is switchable and stage 2 walks
            # the candidates live (the shared ``_adaptive_request``).
            self._outc_py[i] = self._sent_pass
            self._downc_py[i] = self._sent_true
            return
        out = router._requested_output(packet)
        link = router.output_links[out]
        if link is None:
            # Dead link (transient mid-reconfig state): never a candidate.
            self._outc_py[i] = self._sent_link
            self._downc_py[i] = self._sent_false
            return
        self._outc_py[i] = rpos * self._num_ports + out
        if out == self._local:
            self._downc_py[i] = self._sent_true
            return
        kind = VC_ESCAPE if packet.is_escape else VC_NORMAL
        self._downc_py[i] = self._avail_index.get(
            (self._rpos[link.dest_node], link.dest_in_port, kind, packet.vnet),
            self._sent_false,
        )

    def _set_avail(self, c: int) -> None:
        """Recompute one class cell's availability (and its comb merge)."""
        free = self._free_py
        best = BIG
        for s in self._avail_members[c]:
            v = free[s]
            if v < best:
                best = v
        self._avail_py[c] = best
        b = self._comb_bub[c]
        if b >= 0:
            bv = self._bubav_py[b]
            if bv < best:
                best = bv
        self._comb_py[c] = best
        self._tcomb.append(c)

    def _set_bubav(self, b: int, value: int) -> None:
        self._bubav_py[b] = value
        avail = self._avail_py
        comb = self._comb_py
        touched = self._tcomb
        for c in self._bub_combs[b]:
            comb[c] = value if value < avail[c] else avail[c]
            touched.append(c)

    def _resync_router(self, rpos: int) -> None:
        """Refresh every mirrored value owned by one router."""
        lo, hi = self._rslots[rpos]
        for i in range(lo, hi):
            self._sync_slot(i)
        router = self._mrouters[rpos]
        now = self.cycle
        P = self._num_ports
        base = rpos * P
        lbusy = self._lbusy_py
        tlinks = self._tlinks
        for port in range(P):
            cell = base + port
            link = router.output_links[port]
            if link is None:
                lbusy[cell] = BIG
            else:
                # Fold a live special-message claim (for this cycle or a
                # later one) into the busy time; past claims are inert.
                busy = link.busy_until
                sblock = link.special_blocked_at
                if sblock >= now and sblock + 1 > busy:
                    busy = sblock + 1
                lbusy[cell] = busy
            tlinks.append(cell)
        bubble = router.bubble
        bub_port = -1
        if (
            bubble is not None
            and router.bubble_active
            and bubble.packet is None
            and 0 <= bubble.port <= self._local
        ):
            bub_port = bubble.port
        for port in range(P):
            self._bubav_py[base + port] = (
                bubble.free_at if port == bub_port else BIG
            )
        alo, ahi = self._ravail[rpos]
        for c in range(alo, ahi):
            self._set_avail(c)

    def _resync_all(self) -> None:
        for rpos in range(len(self._mrouters)):
            self._resync_router(rpos)

    def _on_structure_change(self, node: int) -> None:
        """``Router._structure_hook``: VC membership/classing mutated.

        ``add_escape_vcs`` / ``add_static_bubble`` running post-warm
        (e.g. scheme reconciliation outside the apply_faults/restore
        rebuild path) change the slot *layout* — ``avail_members`` and
        ``avail_index`` still class converted VCs under their old kind,
        which a value-level ``_resync_router`` cannot repair.  Schedule a
        wholesale mirror rebuild for the next step.
        """
        self._structure_stale = True

    def _flush_dirty(self) -> None:
        if self._paranoid or self._mirror_stale:
            self._resync_all()
            self._mirror_stale = False
        elif self._dirty:
            rpos_of = self._rpos
            for node in self._dirty:
                rpos = rpos_of.get(node)
                if rpos is not None:
                    self._resync_router(rpos)
        self._dirty.clear()

    # -- per-cycle machinery -------------------------------------------------

    def step(self) -> None:
        if self._force_reference or self.full_scan:
            # Reference path shares all state with this engine, so results
            # stay bit-identical; the mirror is rebuilt on resumption.
            super().step()
            self._mirror_stale = True
            return
        now = self.cycle
        self._deliver_specials(now)
        if self._structure_stale:
            self._build_mirror()
        if self._dirty or self._mirror_stale or self._paranoid:
            self._flush_dirty()
        if self._tslots or self._tlinks or self._tcomb:
            self._apply_pending()
        self._inject_traffic(now)
        self._fast_inject(now)
        if self._active_nodes:
            self._fast_alloc(now)
        self._post_alloc = True
        self.scheme.on_cycle(self, now)
        self._post_alloc = False
        # In-place packet mutations (escape diversions) fire the router's
        # ``_dirty_hook``, queuing a targeted resync for the next cycle.
        obs = self.obs
        if obs is not None:
            obs.end_cycle(self, now)
        self.stats.cycles += 1
        self.cycle += 1

    def _fast_inject(self, now: int) -> None:
        nis = self._ni_list
        if not nis:
            return
        cells = self._inj_cells
        if cells is None:
            # Multi-vnet: no exact single-cell test; fall back to per-NI
            # attempts, resyncing only after an actual injection (the
            # failure path of ``try_inject`` mutates nothing).
            for ni in nis:
                if ni.queue and ni.try_inject(now):
                    self._after_injection(ni)
            return
        comb = self._comb_py
        for k, ni in enumerate(nis):
            queue = ni.queue
            if not queue:
                continue
            # Heads on a nonzero vnet (defensive; vnets == 1 here) bypass
            # the prefilter rather than trust the vnet-0 cell.
            if comb[cells[k]] <= now or queue[0].vnet:
                if ni.try_inject(now):
                    self._after_injection(ni)

    def _after_injection(self, ni) -> None:
        # Exactly one VC gained a packet; its shadow still shows the
        # empty-slot sentinel, so a scan of the local span finds it and
        # only that slot (plus its class cell) needs a resync.
        rpos = self._rpos[ni.node]
        lo, hi = self._rlocal[rpos]
        ready = self._ready_py
        slot_vcs = self._slot_vcs
        for i in range(lo, hi):
            if ready[i] == BIG and slot_vcs[i].packet is not None:
                self._sync_slot(i)
                c = self._avail_of_slot[i]
                if c >= 0:
                    self._set_avail(c)
                return
        # The claimed VC sits outside the local span (an attached bubble,
        # possible only if one is ever parked on the local port): fall back
        # to a full-router resync.
        self._resync_router(rpos)

    def _fast_alloc(self, now: int) -> None:
        """Filter + switch allocation + transfer, fused into one frame.

        Stage 1 (vector): ``max(ready, lbusy[outc], comb[downc]) <= now``
        over every slot at once; the survivors are an exact superset of
        the grantable VCs (see the module docstring).

        Stage 2 (scalar): a verbatim restriction of
        ``Network._allocate_router`` + ``Network._transfer`` to the
        surviving slots, grouped per router in ascending node order.  The
        live objects are still consulted for every grant condition the
        mirror cannot answer exactly mid-sweep (seals, mid-sweep link
        claims, bubble deactivation).  Everything is inlined into this
        one frame so the per-grant cost is list indexing and attribute
        writes, not method dispatch; the sweep-wide flit counters are
        accumulated in locals and flushed to ``stats`` once at the end
        (nothing reads them mid-sweep: ``NetworkInterface.eject`` and the
        scheme hooks touch disjoint fields).

        Grant semantics proven equal to the reference:

        * requests are latched per port in round-robin order before any
          grant of the same router executes, and rejected scans have no
          side effects — identical pointer movement;
        * output arbitration per ``out`` only reads ``_out_rr[out]`` and
          the latched requests, so selecting every winner before running
          the transfers cannot change any outcome (a transfer never
          touches another output's rr pointer or its contender list);
        * transfers execute in the same ``by_out`` insertion order as the
          reference's interleaved loop.
        """
        if not self._S:
            return
        t1 = self._t1
        t2 = self._t2
        b0 = self._b0
        np.take(self._lbusy, self._outc, out=t1)
        np.maximum(t1, self._ready, out=t1)
        np.take(self._comb, self._downc, out=t2)
        np.maximum(t1, t2, out=t1)
        np.less_equal(t1, now, out=b0)
        hits = np.nonzero(b0)[0]
        if not hits.size:
            return
        hits = hits.tolist()

        # Sweep-wide locals (bound once per cycle, not per router/grant).
        slot_rpos = self._slot_rpos
        slot_port = self._slot_port
        slot_vcs = self._slot_vcs
        rlist = self._mrouters
        routers = self.routers
        rpos_map = self._rpos
        nis = self.nis
        scheme = self.scheme
        obs = self.obs
        dirty = self._dirty
        pstart = self._pstart
        bslot = self._bslot
        avail_of_slot = self._avail_of_slot
        avail_members = self._avail_members
        avail_index_get = self._avail_index.get
        comb_bub = self._comb_bub
        sent_link = self._sent_link
        sent_true = self._sent_true
        sent_false = self._sent_false
        sent_pass = self._sent_pass
        tslots = self._tslots
        tlinks = self._tlinks
        tcomb = self._tcomb
        P = self._num_ports
        local = self._local
        port_names = self._port_names
        ready = self._ready_py
        free = self._free_py
        outc = self._outc_py
        downc = self._downc_py
        lbusy = self._lbusy_py
        avail_py = self._avail_py
        bubav = self._bubav_py
        comb = self._comb_py
        now2 = now + 2
        b_reads = b_xbar = b_linkc = b_writes = 0

        idx = 0
        nhits = len(hits)
        while idx < nhits:
            s = hits[idx]
            rpos = slot_rpos[s]
            slots = [s]
            idx += 1
            while idx < nhits and slot_rpos[hits[idx]] == rpos:
                slots.append(hits[idx])
                idx += 1
            router = rlist[rpos]
            pbase = rpos * P

            # -- partition this router's candidates by input port --------
            by_port: Dict[int, List[int]] = {}
            saw_bubble = False
            for s in slots:
                p = slot_port[s]
                if p < 0:
                    # The bubble competes under its live attachment port,
                    # as the last entry of that port's VC tuple.
                    bubble = router.bubble
                    if bubble is None:
                        continue
                    p = bubble.port
                    if not 0 <= p <= local:
                        continue
                    k = -1  # resolved to len(vcs) - 1 below
                    saw_bubble = True
                else:
                    k = s - pstart[pbase + p]
                ks = by_port.get(p)
                if ks is None:
                    by_port[p] = [k]
                else:
                    ks.append(k)
            nports = len(by_port)
            if nports == 0:
                continue

            # -- request latch: first grantable VC per port, rr order ----
            vc_cache = router._vc_cache
            in_rr = router._in_rr
            output_links = router.output_links
            restricted = router.is_deadlock
            adaptive = router._adaptive_lookup is not None
            requests = None
            # Slots ascend within a router, so insertion order is already
            # port-ascending unless a bubble candidate (whose port is
            # resolved live) landed out of sequence.
            for port, ks in (
                sorted(by_port.items())
                if saw_bubble and nports > 1
                else by_port.items()
            ):
                vcs = vc_cache[port]
                if vcs is None:
                    vcs = router.cached_port_vcs(port)
                n = len(vcs)
                if n == 0:
                    continue
                start = in_rr[port] % n
                if len(ks) > 1:
                    ks = sorted(
                        ((k if k >= 0 else n - 1) for k in ks),
                        key=lambda k: (k - start) % n,
                    )
                elif ks[0] < 0:
                    ks = (n - 1,)
                for k in ks:
                    vc = vcs[k]
                    packet = vc.packet
                    if packet is None or now < vc.ready_at:
                        continue
                    if adaptive and not packet.is_escape:
                        # The shared multi-candidate scan: same method,
                        # same live objects, same side effects as the
                        # reference engine (adapt_out caching included).
                        grant = self._adaptive_request(router, port, packet, now)
                        if grant is None:
                            continue
                        out, target = grant
                        if requests is None:
                            requests = [
                                (port, vc, packet, out, target, (k + 1) % n)
                            ]
                        else:
                            requests.append(
                                (port, vc, packet, out, target, (k + 1) % n)
                            )
                        break
                    if packet.is_escape:
                        out = router._requested_output(packet)
                    else:
                        out = packet.route[packet.hop]
                    link = output_links[out]
                    if (
                        link is None
                        or now < link.busy_until
                        or link.special_blocked_at == now
                    ):
                        continue
                    if restricted and not router.injection_allowed(port, out):
                        continue
                    if out == local:
                        target = None
                    else:
                        # Downstream re-check off the shadow mirror: the
                        # comb cells are maintained synchronously and
                        # availability only shrinks mid-sweep, so a failing
                        # compare proves ``free_vc_for`` would return None.
                        i = pstart[pbase + port] + k if vc.index >= 0 else bslot[rpos]
                        c = downc[i]
                        if comb[c] > now:
                            continue
                        if dirty:
                            # A VC-membership mutation (e.g. a bubble
                            # deactivating mid-sweep) queued a lazy resync:
                            # the shadow may be stale-available, so defer
                            # to the live object scan.
                            target = routers[link.dest_node].free_vc_for(
                                link.dest_in_port, packet, now
                            )
                            if target is None:
                                continue
                        else:
                            # Shadows are exact: pick the same VC the live
                            # scan would — first free class member in VC
                            # order, else the attached active bubble whose
                            # availability is merged into this comb cell.
                            target = None
                            for s2 in avail_members[c]:
                                if free[s2] <= now:
                                    target = slot_vcs[s2]
                                    break
                            if target is None:
                                target = routers[link.dest_node].bubble
                    if requests is None:
                        requests = [(port, vc, packet, out, target, (k + 1) % n)]
                    else:
                        requests.append(
                            (port, vc, packet, out, target, (k + 1) % n)
                        )
                    break
            if requests is None:
                continue

            # -- output arbitration: pick every winner, move every rr
            # pointer, then run the transfers in the same order ----------
            if len(requests) == 1:
                port, vc, packet, out, target, advance = requests[0]
                router._out_rr[out] = (port + 1) % P
                in_rr[port] = advance
                if adaptive and not packet.is_escape:
                    router._adapt_rr[port] = (out + 1) % P
                winners = requests
            else:
                by_out: Dict[int, list] = {}
                for req in requests:
                    by_out.setdefault(req[3], []).append(req)
                winners = []
                for out, contenders in by_out.items():
                    if len(contenders) == 1:
                        winner = contenders[0]
                    else:
                        rr = router._out_rr[out]
                        winner = min(contenders, key=lambda c: (c[0] - rr) % P)
                    router._out_rr[out] = (winner[0] + 1) % P
                    in_rr[winner[0]] = winner[5]
                    if adaptive and not winner[2].is_escape:
                        router._adapt_rr[winner[0]] = (out + 1) % P
                    winners.append(winner)

            # -- transfer (``Network._transfer`` fused with the shadow
            # updates).  The object mutations are statement-for-statement
            # the reference's; the only deliberate difference is the
            # direct ``_occupancy`` decrement — the wake hook matters for
            # increments only, since any router with residents is already
            # in the active set. ----------------------------------------
            for port, vc, packet, out, target, advance in winners:
                link = output_links[out]
                size = packet.size
                end = now + size
                link.busy_until = end
                vc.packet = None
                vc.free_at = end
                router._occupancy -= 1
                b_reads += size
                b_xbar += size
                # Mirror: the source slot frees; its class cell can only
                # improve.
                vidx = vc.index
                i = pstart[pbase + vc.port] + vidx if vidx >= 0 else bslot[rpos]
                tslots.append(i)
                ready[i] = BIG
                free[i] = end
                outc[i] = sent_link
                downc[i] = sent_false
                c = avail_of_slot[i]
                if c >= 0:
                    if end < avail_py[c]:
                        avail_py[c] = end
                        if end < comb[c]:
                            comb[c] = end
                            tcomb.append(c)
                # else: the source was a bubble — its drain fires
                # invalidate_vc_cache below, so its bubav cell resyncs
                # next cycle.
                cell = pbase + out
                if end > lbusy[cell]:
                    lbusy[cell] = end
                tlinks.append(cell)
                if target is None:
                    nis[router.node].eject(packet, now)
                else:
                    b_linkc += size
                    b_writes += size
                    target.packet = packet
                    target.ready_at = now2
                    dest = link.dest_node
                    dpos = rpos_map[dest]
                    r2 = rlist[dpos]
                    r2._occupancy += 1
                    wake = r2._wake
                    if wake is not None:
                        wake(dest)
                    escape = packet.is_escape
                    if not escape:
                        packet.hop += 1
                        # Matches Network._transfer: the cached adaptive
                        # preference died with the router just left.
                        packet.adapt_out = -1
                    if obs is not None:
                        obs.emit(
                            now,
                            PACKET_TRANSFER,
                            router.node,
                            {
                                "pid": packet.pid,
                                "to": dest,
                                "out": port_names[out],
                                "size": size,
                            },
                        )
                    # Mirror: the target slot is now occupied.
                    tidx = target.index
                    j = (
                        pstart[dpos * P + target.port] + tidx
                        if tidx >= 0
                        else bslot[dpos]
                    )
                    tslots.append(j)
                    ready[j] = now2
                    free[j] = BIG
                    if not escape and r2._adaptive_lookup is not None:
                        # Adaptive arrival: always-pass sentinels, same
                        # as ``_sync_slot``.
                        outc[j] = sent_pass
                        downc[j] = sent_true
                    else:
                        out2 = (
                            r2._requested_output(packet)
                            if escape
                            else packet.route[packet.hop]
                        )
                        link2 = r2.output_links[out2]
                        if link2 is None:
                            outc[j] = sent_link
                            downc[j] = sent_false
                        else:
                            outc[j] = dpos * P + out2
                            if out2 == local:
                                downc[j] = sent_true
                            else:
                                downc[j] = avail_index_get(
                                    (
                                        rpos_map[link2.dest_node],
                                        link2.dest_in_port,
                                        VC_ESCAPE if escape else VC_NORMAL,
                                        packet.vnet,
                                    ),
                                    sent_false,
                                )
                    c2 = avail_of_slot[j]
                    if c2 >= 0:
                        # ``_set_avail`` inlined: class min, bubble merge.
                        best = BIG
                        for s2 in avail_members[c2]:
                            v = free[s2]
                            if v < best:
                                best = v
                        avail_py[c2] = best
                        b = comb_bub[c2]
                        if b >= 0:
                            bv = bubav[b]
                            if bv < best:
                                best = bv
                        comb[c2] = best
                        tcomb.append(c2)
                    else:
                        # Claimed the downstream static bubble.
                        self._set_bubav(dpos * P + target.port, BIG)
                if vc.kind == VC_BUBBLE:
                    # A drained bubble may leave the port's VC membership
                    # (it is only attached while active or occupied).
                    router.invalidate_vc_cache()
                    scheme.on_bubble_drained(self, router, now)

        if b_reads:
            stats = self.stats
            stats.buffer_reads += b_reads
            stats.crossbar_flits += b_xbar
            stats.link_flit_cycles += b_linkc
            stats.buffer_writes += b_writes
    # -- overrides that keep the mirror coherent -----------------------------

    def send_special(self, from_node: int, out_port: int, msg: SpecialMessage) -> bool:
        sent = super().send_special(from_node, out_port, msg)
        if sent:
            rpos = self._rpos.get(from_node)
            if rpos is not None:
                claimed = self.cycle + 1 if self._post_alloc else self.cycle
                cell = rpos * self._num_ports + out_port
                if claimed + 1 > self._lbusy_py[cell]:
                    self._lbusy_py[cell] = claimed + 1
                    self._tlinks.append(cell)
        return sent

    def attach_obs(self, observer) -> None:
        super().attach_obs(observer)
        if getattr(observer, "tracer", None) is not None:
            # Event *ordering* inside a cycle can differ between engines
            # even though grants are identical; traces must come from the
            # reference path.
            self._force_reference = True

    def apply_faults(self, links=(), routers=()):
        summary = super().apply_faults(links, routers)
        self._build_mirror()
        return summary

    def restore(self, links=(), routers=()):
        summary = super().restore(links, routers)
        self._build_mirror()
        return summary
