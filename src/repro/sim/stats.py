"""Statistics collection.

Counts every event the experiments and the energy model need: packet
latencies, per-class link utilization (flits vs. each special message
type), buffer/crossbar activity for the DSENT-style energy model, and
protocol counters (probes, recoveries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class NetworkStats:
    """Mutable counters updated by the network as it simulates."""

    cycles: int = 0
    packets_created: int = 0
    packets_injected: int = 0
    packets_ejected: int = 0
    packets_dropped_unreachable: int = 0
    #: Packets lost to a live topology change: resident in a router that
    #: died, or stranded when their destination became unreachable.
    packets_dropped_reconfig: int = 0
    #: In-flight packets whose source route was re-stamped after a live
    #: topology change (``Network.apply_faults`` salvage).
    packets_rerouted: int = 0
    #: Special messages discarded because their target router or the link
    #: they were crossing died (live reconfiguration).
    specials_dropped: int = 0
    flits_injected: int = 0
    flits_ejected: int = 0
    #: Sum of network latencies (injection -> ejection) of ejected packets.
    latency_sum: int = 0
    #: Sum including source-queueing time.
    total_latency_sum: int = 0
    #: Per-hop events (for the energy model).
    buffer_writes: int = 0
    buffer_reads: int = 0
    crossbar_flits: int = 0
    #: Link-cycle occupancy per traffic class.
    link_flit_cycles: int = 0
    link_special_cycles: Dict[str, int] = field(
        default_factory=lambda: {
            "probe": 0,
            "disable": 0,
            "enable": 0,
            "check_probe": 0,
        }
    )
    #: Protocol counters.
    probes_sent: int = 0
    disables_sent: int = 0
    enables_sent: int = 0
    check_probes_sent: int = 0
    bubble_activations: int = 0
    recoveries_completed: int = 0
    recoveries_aborted: int = 0
    escape_diversions: int = 0
    #: Ground-truth deadlock observations (DeadlockMonitor).
    deadlocks_observed: int = 0
    #: Measurement window bookkeeping.
    window_start_cycle: int = 0
    window_flits_ejected: int = 0
    window_packets_ejected: int = 0
    window_latency_sum: int = 0

    def begin_window(self, cycle: int) -> None:
        """Reset the measurement window (after warm-up)."""
        self.window_start_cycle = cycle
        self.window_flits_ejected = 0
        self.window_packets_ejected = 0
        self.window_latency_sum = 0

    # -- derived metrics --------------------------------------------------

    @property
    def avg_latency(self) -> float:
        """Mean network latency of all ejected packets (cycles)."""
        if self.packets_ejected == 0:
            return 0.0
        return self.latency_sum / self.packets_ejected

    @property
    def avg_total_latency(self) -> float:
        if self.packets_ejected == 0:
            return 0.0
        return self.total_latency_sum / self.packets_ejected

    def window_avg_latency(self) -> float:
        if self.window_packets_ejected == 0:
            return 0.0
        return self.window_latency_sum / self.window_packets_ejected

    def window_throughput(self, now: int, num_nodes: int) -> float:
        """Accepted throughput in flits/node/cycle over the window."""
        span = now - self.window_start_cycle
        if span <= 0 or num_nodes == 0:
            return 0.0
        return self.window_flits_ejected / (span * num_nodes)

    def link_utilization_by_class(self) -> Dict[str, float]:
        """Fraction of total used link-cycles per traffic class."""
        total = self.link_flit_cycles + sum(self.link_special_cycles.values())
        if total == 0:
            return {"flit": 0.0, **{k: 0.0 for k in self.link_special_cycles}}
        result = {"flit": self.link_flit_cycles / total}
        for key, value in self.link_special_cycles.items():
            result[key] = value / total
        return result

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "packets_injected": self.packets_injected,
            "packets_ejected": self.packets_ejected,
            "packets_dropped_unreachable": self.packets_dropped_unreachable,
            "packets_dropped_reconfig": self.packets_dropped_reconfig,
            "packets_rerouted": self.packets_rerouted,
            "specials_dropped": self.specials_dropped,
            "avg_latency": self.avg_latency,
            # Energy-model activity counters: stored payloads carrying
            # these can be re-priced (and surrogate-calibrated) without
            # re-simulating.
            "buffer_writes": self.buffer_writes,
            "buffer_reads": self.buffer_reads,
            "crossbar_flits": self.crossbar_flits,
            "link_flit_cycles": self.link_flit_cycles,
            "link_special_cycles": dict(self.link_special_cycles),
            "probes_sent": self.probes_sent,
            "bubble_activations": self.bubble_activations,
            "recoveries_completed": self.recoveries_completed,
            "recoveries_aborted": self.recoveries_aborted,
            "deadlocks_observed": self.deadlocks_observed,
        }
