"""Hand-constructed deadlock scenarios (library + CLI + test-suite).

These builders place packets directly into router VCs to create known
wait-for cycles deterministically — no traffic process, no warm-up, no
seed sensitivity.  They back three consumers:

* the test-suite (``tests/conftest.py`` re-exports them);
* ``repro trace`` — capture a complete probe -> disable -> activate ->
  check_probe -> enable recovery as a JSONL/Chrome trace;
* interactive exploration of the protocol.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.turns import Port
from repro.protocols.static_bubble import StaticBubbleScheme
from repro.sim.config import SimConfig
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.topology.mesh import mesh


def place_packet(
    net: Network,
    node: int,
    in_port: Port,
    pid: int,
    src: int,
    dst: int,
    route,
    size: int = 1,
    vc_index: int = 0,
) -> Packet:
    """Hand-place a packet into a router VC (for constructed deadlocks).

    ``route`` is the full source route; ``hop`` is advanced to point at
    the output port the packet wants at ``node``.
    """
    router = net.routers[node]
    vc = router.input_vcs[in_port][vc_index]
    assert vc.packet is None, "scenario VC already occupied"
    packet = Packet(pid, src, dst, 0, size, tuple(route), 0)
    packet.injected_at = 0
    packet.hop = 1
    vc.packet = packet
    vc.ready_at = 0
    router.occupancy += 1
    return packet


def build_2x2_ring_deadlock(
    scheme=None, t_dd: int = 5, vcs: int = 1
) -> Tuple[Network, object]:
    """The canonical 4-packet clockwise ring deadlock on a 2x2 mesh.

    Node layout: 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1); node 3 is the single
    static-bubble router of a 2x2 mesh.  Each packet occupies the VC the
    next one needs, so nothing can move without an extra buffer.
    """
    E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
    topo = mesh(2, 2)
    config = SimConfig(width=2, height=2, vcs_per_vnet=vcs, sb_t_dd=t_dd)
    if scheme is None:
        scheme = StaticBubbleScheme()
    net = Network(topo, config, scheme, traffic=None, seed=1)
    place_packet(net, 1, W, 100, 0, 3, (E, N, L))   # at node 1, wants N
    place_packet(net, 3, S, 101, 1, 2, (N, W, L))   # at node 3, wants W
    place_packet(net, 2, E, 102, 3, 0, (W, S, L))   # at node 2, wants S
    place_packet(net, 0, N, 103, 2, 1, (S, E, L))   # at node 0, wants E
    return net, scheme


def build_fig6_walkthrough(t_dd: int = 6) -> Tuple[Network, StaticBubbleScheme]:
    """The paper's Fig. 6 walk-through: a 6-router ring on a 4x2 mesh.

    Two-deep ports (the paper's VC configuration for the example); the
    only on-ring static-bubble router is node 5, matching the paper.  The
    ring's geometry makes the probe record the walk-through's exact turn
    sequence — (L, L, S, L, L) — before returning to its sender, after
    which the disable/bubble/check_probe/enable sequence drains all
    twelve packets.

    Ring (clockwise): 0 -E-> 1 -E-> 2 -N-> 6 -W-> 5 -W-> 4 -S-> 0.
    """
    E, N, W, S, L = Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL
    topo = mesh(4, 2)
    config = SimConfig(width=4, height=2, vcs_per_vnet=2, sb_t_dd=t_dd)
    scheme = StaticBubbleScheme()
    net = Network(topo, config, scheme, traffic=None, seed=1)
    assert set(scheme.states) == {5, 7}

    # (node, in_port, wants) around the ring; each port carries two
    # packets (the paper's (A,B) / (E,F) / ... pairs).
    ring = [
        (1, W, E),  # packets A, B
        (2, W, N),  # packets C, D
        (6, S, W),  # packets E, F
        (5, E, W),  # packets G, H  <- the static-bubble router
        (4, E, S),  # packets I, J
        (0, N, E),  # packets K, Z
    ]
    pid = 500
    for node, in_port, wants in ring:
        dst = topo.neighbor(node, wants)
        for vc_index in range(2):
            place_packet(
                net, node, in_port, pid, src=node, dst=dst,
                route=(E, wants, L), vc_index=vc_index,
            )
            pid += 1
    return net, scheme


#: Scenario registry for ``repro trace --scenario``.
SCENARIOS = {
    "ring2x2": build_2x2_ring_deadlock,
    "fig6": build_fig6_walkthrough,
}


def build_scenario(name: str, t_dd: Optional[int] = None):
    """Instantiate a named scenario; returns ``(network, scheme)``."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; have {sorted(SCENARIOS)}"
        ) from None
    return builder(t_dd=t_dd) if t_dd is not None else builder()
