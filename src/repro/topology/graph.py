"""Graph-theoretic analysis of (irregular) topologies.

Used by the Fig. 2 state-space study (a topology is *deadlock-prone* iff
its graph contains a cycle — footnote 1 of the paper: with unrestricted
minimal routing, any cycle can be exercised into a buffer-dependency
cycle at a sufficient injection rate) and by routing-table construction
(connectivity, components).
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

import networkx as nx

from repro.topology.mesh import Topology


def to_networkx(topo: Topology) -> "nx.Graph":
    """Undirected graph of the active nodes and links."""
    graph = nx.Graph()
    graph.add_nodes_from(topo.active_nodes())
    for link in topo.active_links():
        u, v = tuple(link)
        graph.add_edge(u, v)
    return graph


def connected_components(topo: Topology) -> List[Set[int]]:
    """Connected components of the active topology, largest first."""
    graph = to_networkx(topo)
    return sorted(nx.connected_components(graph), key=len, reverse=True)


def largest_component(topo: Topology) -> Set[int]:
    components = connected_components(topo)
    return components[0] if components else set()


def is_connected(topo: Topology) -> bool:
    return len(connected_components(topo)) <= 1


def has_cycle(topo: Topology) -> bool:
    """True iff any component of the topology contains a cycle.

    A component with ``edges >= nodes`` necessarily contains a cycle; a
    forest has ``edges == nodes - 1`` per component.
    """
    graph = to_networkx(topo)
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        if sub.number_of_edges() >= sub.number_of_nodes():
            return True
    return False


def cycle_count_upper_bound(topo: Topology) -> int:
    """Size of the cycle space (independent cycles) of the topology."""
    graph = to_networkx(topo)
    n_components = nx.number_connected_components(graph) if len(graph) else 0
    return graph.number_of_edges() - graph.number_of_nodes() + n_components


def simple_cycles(
    topo: Topology, length_bound: int
) -> List[List[int]]:
    """All simple cycles of the active topology up to ``length_bound`` nodes.

    Exponential in general — use only for small meshes / tight bounds
    (the lemma tests bound the length).  Each cycle is a node list without
    the repeated closing node.
    """
    graph = to_networkx(topo)
    return [list(c) for c in nx.simple_cycles(graph, length_bound=length_bound)]


def nodes_reachable_from(topo: Topology, source: int) -> Set[int]:
    graph = to_networkx(topo)
    if source not in graph:
        return set()
    return set(nx.node_connected_component(graph, source))


def reachable_pairs(topo: Topology) -> Iterable[Tuple[int, int]]:
    """All ordered (src, dst) pairs with src != dst in the same component."""
    for component in connected_components(topo):
        members = sorted(component)
        for src in members:
            for dst in members:
                if src != dst:
                    yield (src, dst)
