"""Random fault / power-gating injection (Section V-A fault model).

Two models, matching the paper: random *link* removal and random
*router* removal from an underlying mesh.  "Fault" and "power-gated"
are interchangeable here — both remove the component from the topology
graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.topology.mesh import Topology, mesh
from repro.topology import graph as tgraph


@dataclass(frozen=True)
class FaultEvent:
    """One scripted topology change: at ``cycle``, fail or restore the
    listed links/routers (consumed by ``repro.sim.engine.run_with_faults``
    via ``Network.apply_faults`` / ``Network.restore``)."""

    cycle: int
    action: str  # "fail" | "restore"
    links: Tuple[Tuple[int, int], ...] = ()
    routers: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.action not in ("fail", "restore"):
            raise ValueError(f"unknown fault action {self.action!r}")


class FaultSchedule:
    """An ordered script of live topology changes ("at cycle N, fail X").

    Immutable once built; iteration yields events in cycle order (stable
    for ties, so "fail then restore at the same cycle" keeps its meaning).
    """

    def __init__(self, events: Iterator[FaultEvent] = ()) -> None:
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.cycle)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def last_cycle(self) -> int:
        return self.events[-1].cycle if self.events else 0

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self.events)} events, last={self.last_cycle})"


def random_fault_schedule(
    topo: Topology,
    n_events: int,
    rng: random.Random,
    first_cycle: int = 100,
    spacing: int = 200,
    p_router: float = 0.25,
    p_restore: float = 0.35,
    min_active_routers: Optional[int] = None,
) -> FaultSchedule:
    """A random live-fault script for chaos campaigns (``repro chaos``).

    Events land at increasing random cycles (1..``spacing`` apart,
    starting after ``first_cycle``).  Each event either fails one random
    currently-active link or router, or (with ``p_restore``, once
    something has failed) restores one previously failed element —
    gate/un-gate round trips included.  A shadow copy of ``topo`` tracks
    the evolving state so the script is always applicable; ``topo`` itself
    is not modified.  Router kills stop once only ``min_active_routers``
    (default: half) would remain, so the network never degenerates to
    nothing.
    """
    shadow = topo.copy()
    if min_active_routers is None:
        min_active_routers = max(2, len(shadow.active_nodes()) // 2)
    failed_links: List[Tuple[int, int]] = []
    failed_routers: List[int] = []
    events: List[FaultEvent] = []
    cycle = first_cycle
    for _ in range(n_events):
        cycle += rng.randrange(1, spacing + 1)
        if (failed_links or failed_routers) and rng.random() < p_restore:
            pool = [("link", link) for link in failed_links]
            pool += [("router", node) for node in failed_routers]
            kind, target = pool[rng.randrange(len(pool))]
            if kind == "link":
                failed_links.remove(target)
                shadow.activate_link(*target)
                events.append(FaultEvent(cycle, "restore", links=(target,)))
            else:
                failed_routers.remove(target)
                shadow.activate_node(target)
                events.append(FaultEvent(cycle, "restore", routers=(target,)))
            continue
        kill_router = (
            rng.random() < p_router
            and len(shadow.active_nodes()) > min_active_routers
        )
        if kill_router:
            candidates = shadow.active_nodes()
            node = candidates[rng.randrange(len(candidates))]
            shadow.deactivate_node(node)
            failed_routers.append(node)
            events.append(FaultEvent(cycle, "fail", routers=(node,)))
        else:
            links = [
                tuple(sorted(link))
                for link in shadow.all_links()
                if shadow.link_is_active(*tuple(link))
            ]
            if not links:
                continue
            link = links[rng.randrange(len(links))]
            shadow.deactivate_link(*link)
            failed_links.append(link)
            events.append(FaultEvent(cycle, "fail", links=(link,)))
    return FaultSchedule(events)


def inject_link_faults(
    topo: Topology, count: int, rng: random.Random
) -> Topology:
    """Return a copy of ``topo`` with ``count`` random links deactivated."""
    result = topo.copy()
    candidates = [link for link in result.all_links()
                  if result.link_is_active(*tuple(link))]
    if count > len(candidates):
        raise ValueError(
            f"cannot fail {count} links; only {len(candidates)} active"
        )
    for link in rng.sample(candidates, count):
        u, v = tuple(link)
        result.deactivate_link(u, v)
    return result


def inject_router_faults(
    topo: Topology, count: int, rng: random.Random
) -> Topology:
    """Return a copy of ``topo`` with ``count`` random routers deactivated."""
    result = topo.copy()
    candidates = result.active_nodes()
    if count > len(candidates):
        raise ValueError(
            f"cannot fail {count} routers; only {len(candidates)} active"
        )
    for node in rng.sample(candidates, count):
        result.deactivate_node(node)
    return result


def sample_topologies(
    width: int,
    height: int,
    fault_kind: str,
    fault_count: int,
    n_samples: int,
    seed: int,
    require_memory_controllers: Optional[List[int]] = None,
) -> Iterator[Topology]:
    """Yield ``n_samples`` random irregular topologies.

    ``fault_kind`` is ``"link"`` or ``"router"``.  When
    ``require_memory_controllers`` is given (a list of node ids), only
    topologies whose largest component contains *all* those nodes are
    yielded (the paper only considers topologies that do not disconnect
    the memory controllers for application runs); sampling retries until
    enough qualifying topologies are found (bounded retries).
    """
    if fault_kind not in ("link", "router"):
        raise ValueError("fault_kind must be 'link' or 'router'")
    base = mesh(width, height)
    produced = 0
    attempt = 0
    max_attempts = max(50, n_samples * 50)
    while produced < n_samples and attempt < max_attempts:
        rng = random.Random((seed * 1_000_003 + attempt) & 0xFFFFFFFF)
        attempt += 1
        if fault_kind == "link":
            topo = inject_link_faults(base, fault_count, rng)
        else:
            topo = inject_router_faults(base, fault_count, rng)
        if require_memory_controllers is not None:
            component = tgraph.largest_component(topo)
            if not all(mc in component for mc in require_memory_controllers):
                continue
        produced += 1
        yield topo
    if produced < n_samples:
        raise RuntimeError(
            f"could not sample {n_samples} qualifying topologies "
            f"({fault_kind} faults={fault_count}) after {max_attempts} tries"
        )


def default_memory_controllers(
    width: int, height: int, topo: Optional[Topology] = None
) -> List[int]:
    """Corner-node memory controllers (the usual 4-MC 8x8 configuration).

    Without ``topo`` this is the design-time placement: the four grid
    corners of a healthy ``width`` x ``height`` mesh.  With ``topo`` (the
    caller's possibly faulted instance), each corner MC relocates to the
    nearest *active* router (Manhattan distance to the corner, ties to
    the lower node id), never reusing a node — an MC pinned to a dead
    corner router would make every request to it undeliverable.
    """
    corners = [(0, 0), (width - 1, 0), (0, height - 1), (width - 1, height - 1)]
    base = mesh(width, height)
    if topo is None:
        return [base.node_id(x, y) for x, y in corners]
    active = sorted(topo.active_nodes())
    if len(active) < len(corners):
        raise ValueError(
            f"need {len(corners)} active routers for memory controllers, "
            f"topology has {len(active)}"
        )
    chosen: List[int] = []
    taken: set = set()
    for cx, cy in corners:
        best = min(
            (n for n in active if n not in taken),
            key=lambda n: (
                abs(topo.coords(n)[0] - cx) + abs(topo.coords(n)[1] - cy),
                n,
            ),
        )
        chosen.append(best)
        taken.add(best)
    return chosen
