"""Random fault / power-gating injection (Section V-A fault model).

Two models, matching the paper: random *link* removal and random
*router* removal from an underlying mesh.  "Fault" and "power-gated"
are interchangeable here — both remove the component from the topology
graph.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.topology.mesh import Topology, mesh
from repro.topology import graph as tgraph


def inject_link_faults(
    topo: Topology, count: int, rng: random.Random
) -> Topology:
    """Return a copy of ``topo`` with ``count`` random links deactivated."""
    result = topo.copy()
    candidates = [link for link in result.all_links()
                  if result.link_is_active(*tuple(link))]
    if count > len(candidates):
        raise ValueError(
            f"cannot fail {count} links; only {len(candidates)} active"
        )
    for link in rng.sample(candidates, count):
        u, v = tuple(link)
        result.deactivate_link(u, v)
    return result


def inject_router_faults(
    topo: Topology, count: int, rng: random.Random
) -> Topology:
    """Return a copy of ``topo`` with ``count`` random routers deactivated."""
    result = topo.copy()
    candidates = result.active_nodes()
    if count > len(candidates):
        raise ValueError(
            f"cannot fail {count} routers; only {len(candidates)} active"
        )
    for node in rng.sample(candidates, count):
        result.deactivate_node(node)
    return result


def sample_topologies(
    width: int,
    height: int,
    fault_kind: str,
    fault_count: int,
    n_samples: int,
    seed: int,
    require_memory_controllers: Optional[List[int]] = None,
) -> Iterator[Topology]:
    """Yield ``n_samples`` random irregular topologies.

    ``fault_kind`` is ``"link"`` or ``"router"``.  When
    ``require_memory_controllers`` is given (a list of node ids), only
    topologies whose largest component contains *all* those nodes are
    yielded (the paper only considers topologies that do not disconnect
    the memory controllers for application runs); sampling retries until
    enough qualifying topologies are found (bounded retries).
    """
    if fault_kind not in ("link", "router"):
        raise ValueError("fault_kind must be 'link' or 'router'")
    base = mesh(width, height)
    produced = 0
    attempt = 0
    max_attempts = max(50, n_samples * 50)
    while produced < n_samples and attempt < max_attempts:
        rng = random.Random((seed * 1_000_003 + attempt) & 0xFFFFFFFF)
        attempt += 1
        if fault_kind == "link":
            topo = inject_link_faults(base, fault_count, rng)
        else:
            topo = inject_router_faults(base, fault_count, rng)
        if require_memory_controllers is not None:
            component = tgraph.largest_component(topo)
            if not all(mc in component for mc in require_memory_controllers):
                continue
        produced += 1
        yield topo
    if produced < n_samples:
        raise RuntimeError(
            f"could not sample {n_samples} qualifying topologies "
            f"({fault_kind} faults={fault_count}) after {max_attempts} tries"
        )


def default_memory_controllers(width: int, height: int) -> List[int]:
    """Corner-node memory controllers (the usual 4-MC 8x8 configuration)."""
    corners = [(0, 0), (width - 1, 0), (0, height - 1), (width - 1, height - 1)]
    topo = mesh(width, height)
    return [topo.node_id(x, y) for x, y in corners]
