"""Mesh-derived topologies, regular and irregular.

A :class:`Topology` always starts from an underlying ``width x height``
mesh (the design-time substrate of the paper) from which routers and
links can be deactivated — modelling design-time heterogeneity, faults,
or power-gating.  Node ids are ``y * width + x``.

The mesh is one generator of the :class:`repro.topology.base.BaseTopology`
graph interface (see :mod:`repro.topology.generators` for the others);
its network ports coincide numerically with the compass :class:`Port`
enum, its opposite-port relation is the classic ``OPPOSITE_PORT`` table,
and its probe hop codec is the paper's 2-bit relative-turn encoding.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.turns import (
    DELTA,
    DIRECTIONS,
    OPPOSITE_PORT,
    Port,
    apply_turn,
    turn_between,
)
from repro.topology.base import BaseTopology, _require_spec_fields, register_topology

Coord = Tuple[int, int]
Link = FrozenSet[int]


class Topology(BaseTopology):
    """A (possibly irregular) topology derived from an n x m mesh.

    Links are bidirectional: deactivating a link removes both channel
    directions (the dominant fault model in the paper's evaluation;
    unidirectional failures a la uDIREC can be modelled by composing two
    topologies but are not needed to reproduce the results).
    """

    kind = "mesh"
    radix = 4

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be >= 1")
        self.width = width
        self.height = height
        self._node_active: List[bool] = [True] * (width * height)
        self._link_active: Dict[Link, bool] = {}
        for node in self.all_nodes():
            x, y = self.coords(node)
            for direction in (Port.EAST, Port.NORTH):
                dx, dy = DELTA[direction]
                nx_, ny_ = x + dx, y + dy
                if 0 <= nx_ < width and 0 <= ny_ < height:
                    self._link_active[frozenset((node, self.node_id(nx_, ny_)))] = True

    # -- identity ------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def node_id(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def coords(self, node: int) -> Coord:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside mesh")
        return node % self.width, node // self.width

    # -- adjacency -------------------------------------------------------

    def neighbor(self, node: int, direction: Port) -> Optional[int]:
        """Neighbor id in ``direction`` on the *underlying mesh* (or None)."""
        x, y = self.coords(node)
        dx, dy = DELTA[direction]
        nx_, ny_ = x + dx, y + dy
        if 0 <= nx_ < self.width and 0 <= ny_ < self.height:
            return self.node_id(nx_, ny_)
        return None

    def active_neighbors(self, node: int) -> List[Tuple[Port, int]]:
        """Active (direction, neighbor) pairs reachable over active links."""
        if not self._node_active[node]:
            return []
        result = []
        for direction in DIRECTIONS:
            other = self.neighbor(node, direction)
            if other is not None and self.link_is_active(node, other):
                result.append((direction, other))
        return result

    def port_between(self, u: int, v: int) -> Port:
        """Output port at ``u`` that leads to adjacent node ``v``."""
        ux, uy = self.coords(u)
        vx, vy = self.coords(v)
        delta = (vx - ux, vy - uy)
        for direction, d in DELTA.items():
            if d == delta:
                return direction
        raise ValueError(f"nodes {u} and {v} are not mesh-adjacent")

    def arrival_port(self, node: int, out_port: int) -> Port:
        """Mesh specialization: arrival port is the global opposite."""
        return OPPOSITE_PORT[out_port]

    # -- graph-interface specializations ---------------------------------

    def port_name(self, port: int) -> str:
        return Port(port).name

    def describe_node(self, node: int) -> str:
        x, y = self.coords(node)
        return f"({x},{y})"

    def describe(self) -> str:
        return f"{self.width}x{self.height} mesh"

    def encode_hop(self, in_port: int, out_port: int) -> int:
        """The paper's codec: a 2-bit turn relative to the travel frame."""
        return int(turn_between(Port(in_port), Port(out_port)))

    def decode_hop(self, travel: int, code: int) -> int:
        return int(apply_turn(travel, code))

    def bubble_placement(self) -> List[int]:
        """The paper's closed-form Section III placement."""
        from repro.core.placement import placement_node_ids

        return sorted(placement_node_ids(self.width, self.height))

    def copy(self) -> "Topology":
        clone = Topology(self.width, self.height)
        clone._node_active = list(self._node_active)
        clone._link_active = dict(self._link_active)
        return clone

    # -- canonical serialization ----------------------------------------

    def to_spec(self) -> Dict[str, object]:
        """Canonical JSON-ready description (used for content addressing).

        Only the deviations from the healthy mesh are recorded, in sorted
        order, so two topologies constructed by different fault orders
        but ending in the same state serialize identically.
        """
        spec: Dict[str, object] = {"kind": "mesh", "width": self.width, "height": self.height}
        spec.update(self._fault_spec())
        return spec

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "Topology":
        """Rebuild a topology from :meth:`to_spec` output.

        Legacy (pre-``kind``) mesh specs remain accepted; malformed or
        cross-version specs fail with a clear ``ValueError``.
        """
        _require_spec_fields(spec, "mesh", ("width", "height"), ())
        topo = cls(int(spec["width"]), int(spec["height"]))
        topo._apply_fault_spec(spec)
        return topo

    def __repr__(self) -> str:
        return (
            f"Topology({self.width}x{self.height}, "
            f"faulty_nodes={self.num_faulty_nodes()}, "
            f"faulty_links={self.num_faulty_links()})"
        )


register_topology("mesh", Topology.from_spec)


def mesh(width: int, height: int) -> Topology:
    """A fully healthy ``width x height`` mesh."""
    return Topology(width, height)
