"""Mesh-derived topologies, regular and irregular.

A :class:`Topology` always starts from an underlying ``width x height``
mesh (the design-time substrate of the paper) from which routers and
links can be deactivated — modelling design-time heterogeneity, faults,
or power-gating.  Node ids are ``y * width + x``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.core.turns import DELTA, DIRECTIONS, Port

Coord = Tuple[int, int]
Link = FrozenSet[int]


class Topology:
    """A (possibly irregular) topology derived from an n x m mesh.

    Links are bidirectional: deactivating a link removes both channel
    directions (the dominant fault model in the paper's evaluation;
    unidirectional failures a la uDIREC can be modelled by composing two
    topologies but are not needed to reproduce the results).
    """

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be >= 1")
        self.width = width
        self.height = height
        self._node_active: List[bool] = [True] * (width * height)
        self._link_active: Dict[Link, bool] = {}
        for node in self.all_nodes():
            x, y = self.coords(node)
            for direction in (Port.EAST, Port.NORTH):
                dx, dy = DELTA[direction]
                nx_, ny_ = x + dx, y + dy
                if 0 <= nx_ < width and 0 <= ny_ < height:
                    self._link_active[frozenset((node, self.node_id(nx_, ny_)))] = True

    # -- identity ------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def node_id(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def coords(self, node: int) -> Coord:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside mesh")
        return node % self.width, node // self.width

    def all_nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def all_links(self) -> Iterator[Link]:
        return iter(self._link_active)

    # -- activation state -----------------------------------------------

    def node_is_active(self, node: int) -> bool:
        return self._node_active[node]

    def link_is_active(self, u: int, v: int) -> bool:
        """True iff the u-v link and both endpoints are active."""
        link = frozenset((u, v))
        if link not in self._link_active:
            return False
        return (
            self._link_active[link]
            and self._node_active[u]
            and self._node_active[v]
        )

    def deactivate_node(self, node: int) -> None:
        self._node_active[node] = False

    def activate_node(self, node: int) -> None:
        self._node_active[node] = True

    def deactivate_link(self, u: int, v: int) -> None:
        link = frozenset((u, v))
        if link not in self._link_active:
            raise ValueError(f"no mesh link between {u} and {v}")
        self._link_active[link] = False

    def activate_link(self, u: int, v: int) -> None:
        link = frozenset((u, v))
        if link not in self._link_active:
            raise ValueError(f"no mesh link between {u} and {v}")
        self._link_active[link] = True

    def active_nodes(self) -> List[int]:
        return [n for n in self.all_nodes() if self._node_active[n]]

    def active_links(self) -> List[Link]:
        return [
            link
            for link, on in self._link_active.items()
            if on and all(self._node_active[n] for n in link)
        ]

    def num_faulty_links(self) -> int:
        """Links explicitly deactivated (not counting router-induced loss)."""
        return sum(1 for on in self._link_active.values() if not on)

    def num_faulty_nodes(self) -> int:
        return sum(1 for on in self._node_active if not on)

    # -- adjacency -------------------------------------------------------

    def neighbor(self, node: int, direction: Port) -> Optional[int]:
        """Neighbor id in ``direction`` on the *underlying mesh* (or None)."""
        x, y = self.coords(node)
        dx, dy = DELTA[direction]
        nx_, ny_ = x + dx, y + dy
        if 0 <= nx_ < self.width and 0 <= ny_ < self.height:
            return self.node_id(nx_, ny_)
        return None

    def active_neighbors(self, node: int) -> List[Tuple[Port, int]]:
        """Active (direction, neighbor) pairs reachable over active links."""
        if not self._node_active[node]:
            return []
        result = []
        for direction in DIRECTIONS:
            other = self.neighbor(node, direction)
            if other is not None and self.link_is_active(node, other):
                result.append((direction, other))
        return result

    def port_between(self, u: int, v: int) -> Port:
        """Output port at ``u`` that leads to adjacent node ``v``."""
        ux, uy = self.coords(u)
        vx, vy = self.coords(v)
        delta = (vx - ux, vy - uy)
        for direction, d in DELTA.items():
            if d == delta:
                return direction
        raise ValueError(f"nodes {u} and {v} are not mesh-adjacent")

    def copy(self) -> "Topology":
        clone = Topology(self.width, self.height)
        clone._node_active = list(self._node_active)
        clone._link_active = dict(self._link_active)
        return clone

    # -- canonical serialization ----------------------------------------

    def to_spec(self) -> Dict[str, object]:
        """Canonical JSON-ready description (used for content addressing).

        Only the deviations from the healthy mesh are recorded, in sorted
        order, so two topologies constructed by different fault orders
        but ending in the same state serialize identically.
        """
        return {
            "width": self.width,
            "height": self.height,
            "inactive_nodes": [
                n for n in self.all_nodes() if not self._node_active[n]
            ],
            "inactive_links": sorted(
                sorted(link) for link, on in self._link_active.items() if not on
            ),
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "Topology":
        """Rebuild a topology from :meth:`to_spec` output."""
        topo = cls(int(spec["width"]), int(spec["height"]))
        for node in spec.get("inactive_nodes", ()):
            topo.deactivate_node(int(node))
        for u, v in spec.get("inactive_links", ()):
            topo.deactivate_link(int(u), int(v))
        return topo

    def __repr__(self) -> str:
        return (
            f"Topology({self.width}x{self.height}, "
            f"faulty_nodes={self.num_faulty_nodes()}, "
            f"faulty_links={self.num_faulty_links()})"
        )


def mesh(width: int, height: int) -> Topology:
    """A fully healthy ``width x height`` mesh."""
    return Topology(width, height)
