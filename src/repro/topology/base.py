"""Topology-agnostic graph interface shared by every generator.

The original reproduction hardcoded a faulted 2D mesh everywhere: node
ids were ``y*width + x``, ports were the compass :class:`Port` enum, and
the opposite-port relation was the global ``OPPOSITE_PORT`` table.  The
paper, however, frames Static Bubble as a framework for *irregular*
topologies, so the core now operates on :class:`BaseTopology` — an
adjacency-list graph with per-node port lists — and the mesh is just one
generator among several (see :mod:`repro.topology.generators`).

Port model
----------

Every topology has a fixed *radix* ``r``: ports ``0..r-1`` are network
ports (each either unwired or leading to exactly one neighbor over a
bidirectional link) and port ``r`` is the local ejection/injection port
(``local_port``).  For the 2D mesh ``r == 4`` and the network ports
coincide numerically with the legacy compass enum, which keeps the
existing engines' ``% 5`` arithmetic — and therefore their cycle-exact
behaviour — unchanged.

The opposite-port relation is per *edge*, not global:
``arrival_port(u, p)`` answers "a packet leaving ``u`` on port ``p``
arrives at the neighbor on which input port?".  On the mesh that is the
classic ``OPPOSITE_PORT`` table; on a full mesh (where each node ranks
its neighbors) the answer genuinely depends on both endpoints.

Probe hop codec
---------------

Static Bubble probes record their path one hop at a time in a fixed
128-bit flit.  On the mesh a hop is a *turn* relative to the travel
direction (2 bits, 59 hops per probe — the paper's encoding).  General
graphs have no global travel frame, so they record the absolute output
port per hop (``ceil(log2(radix))`` bits).  ``encode_hop`` /
``decode_hop`` / ``probe_hop_capacity`` abstract the codec; the protocol
precomputes the encode table per topology at setup.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

Link = FrozenSet[int]

#: Bits available for the recorded path in one 128-bit probe flit after
#: the fixed header (message type, sender id, travel port).  With the
#: mesh's 2-bit turn encoding this yields the paper's 59-hop capacity.
_PROBE_PATH_BITS = 118


class BaseTopology:
    """Adjacency-list graph with per-node port lists and fault state.

    Subclasses must provide ``num_nodes``, ``radix``, and the adjacency
    (:meth:`neighbor`, :meth:`port_between`), and must initialise the
    activation state ``_node_active`` (list of bools) and
    ``_link_active`` (dict ``frozenset{u, v} -> bool`` over the
    underlying links).  Links are bidirectional: deactivating one
    removes both channel directions.
    """

    #: Spec tag dispatched by :func:`topology_from_spec`.
    kind: str = "base"

    num_nodes: int
    #: Network ports per node (excluding the local port).
    radix: int
    _node_active: List[bool]
    _link_active: Dict[Link, bool]

    # -- port model ------------------------------------------------------

    @property
    def local_port(self) -> int:
        """The injection/ejection port index (always ``radix``)."""
        return self.radix

    @property
    def num_ports(self) -> int:
        """Ports per router including the local port."""
        return self.radix + 1

    def port_name(self, port: int) -> str:
        """Human-readable port label (observability / certificates)."""
        if port == self.radix:
            return "LOCAL"
        return f"P{port}"

    def describe_node(self, node: int) -> str:
        """Human-readable node label (observability / certificates)."""
        return str(node)

    def describe(self) -> str:
        """One-line topology description for certificates and logs."""
        return f"{self.kind}({self.num_nodes} nodes)"

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.describe()}, "
            f"faulty_nodes={self.num_faulty_nodes()}, "
            f"faulty_links={self.num_faulty_links()})"
        )

    # -- adjacency (subclass responsibility) -----------------------------

    def neighbor(self, node: int, port: int) -> Optional[int]:
        """Neighbor behind ``port`` on the *underlying* graph (or None)."""
        raise NotImplementedError

    def port_between(self, u: int, v: int) -> int:
        """Output port at ``u`` leading to adjacent node ``v``."""
        raise NotImplementedError

    def arrival_port(self, node: int, out_port: int) -> int:
        """Input port at the neighbor for traffic leaving on ``out_port``.

        This is the per-edge generalization of the mesh's global
        ``OPPOSITE_PORT`` table.  Raises if ``out_port`` is unwired.
        """
        other = self.neighbor(node, out_port)
        if other is None:
            raise ValueError(f"node {node} has no neighbor on port {out_port}")
        return self.port_between(other, node)

    def active_neighbors(self, node: int) -> List[Tuple[int, int]]:
        """Active ``(port, neighbor)`` pairs reachable over active links."""
        if not self._node_active[node]:
            return []
        result = []
        for port in range(self.radix):
            other = self.neighbor(node, port)
            if other is not None and self.link_is_active(node, other):
                result.append((port, other))
        return result

    def all_nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def all_links(self) -> Iterator[Link]:
        return iter(self._link_active)

    # -- activation state ------------------------------------------------

    def node_is_active(self, node: int) -> bool:
        return self._node_active[node]

    def link_is_active(self, u: int, v: int) -> bool:
        """True iff the u-v link and both endpoints are active."""
        link = frozenset((u, v))
        if link not in self._link_active:
            return False
        return (
            self._link_active[link]
            and self._node_active[u]
            and self._node_active[v]
        )

    def deactivate_node(self, node: int) -> None:
        self._node_active[node] = False

    def activate_node(self, node: int) -> None:
        self._node_active[node] = True

    def deactivate_link(self, u: int, v: int) -> None:
        link = frozenset((u, v))
        if link not in self._link_active:
            raise ValueError(f"no link between {u} and {v}")
        self._link_active[link] = False

    def activate_link(self, u: int, v: int) -> None:
        link = frozenset((u, v))
        if link not in self._link_active:
            raise ValueError(f"no link between {u} and {v}")
        self._link_active[link] = True

    def active_nodes(self) -> List[int]:
        return [n for n in self.all_nodes() if self._node_active[n]]

    def active_links(self) -> List[Link]:
        return [
            link
            for link, on in self._link_active.items()
            if on and all(self._node_active[n] for n in link)
        ]

    def num_faulty_links(self) -> int:
        """Links explicitly deactivated (not counting router-induced loss)."""
        return sum(1 for on in self._link_active.values() if not on)

    def num_faulty_nodes(self) -> int:
        return sum(1 for on in self._node_active if not on)

    # -- probe hop codec -------------------------------------------------

    def encode_hop(self, in_port: int, out_port: int) -> int:
        """Record one probe hop (default: the absolute output port)."""
        return out_port

    def decode_hop(self, travel: int, code: int) -> int:
        """Recover the output port from a recorded hop.

        ``travel`` is the output port the message took at the *previous*
        node; the absolute-port codec ignores it, the mesh turn codec
        rotates it.
        """
        return code

    def probe_hop_capacity(self) -> int:
        """Maximum hops recordable in one 128-bit probe flit."""
        bits = max(2, (max(self.radix, 2) - 1).bit_length())
        return max(4, _PROBE_PATH_BITS // bits)

    # -- static bubble placement -----------------------------------------

    def bubble_placement(self) -> List[int]:
        """Static-bubble node ids covering every u-turn-free cycle.

        The default is a greedy feedback-vertex-set style cover of the
        *underlying* graph (stable under faults and live reconfiguration);
        the mesh overrides this with the paper's closed-form placement.
        Callers certify the result post-hoc with
        :func:`repro.verify.certify.certify_cycle_cover`.
        """
        from repro.core.placement import greedy_cycle_cover

        return greedy_cycle_cover(self)

    # -- canonical serialization -----------------------------------------

    def _fault_spec(self) -> Dict[str, object]:
        """The shared fault-deviation portion of :meth:`to_spec`."""
        return {
            "inactive_nodes": [
                n for n in self.all_nodes() if not self._node_active[n]
            ],
            "inactive_links": sorted(
                sorted(link) for link, on in self._link_active.items() if not on
            ),
        }

    def _apply_fault_spec(self, spec: Dict[str, object]) -> None:
        for node in spec.get("inactive_nodes", ()):
            self.deactivate_node(int(node))
        for u, v in spec.get("inactive_links", ()):
            self.deactivate_link(int(u), int(v))

    def to_spec(self) -> Dict[str, object]:
        raise NotImplementedError

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "BaseTopology":
        raise NotImplementedError


# -- spec registry --------------------------------------------------------

#: kind -> constructor-from-spec.  Generators register themselves at
#: import; :func:`topology_from_spec` is the single dispatch point used
#: by the serializer, the ResultStore, and the campaign server.
_SPEC_REGISTRY: Dict[str, Callable[[Dict[str, object]], BaseTopology]] = {}


def register_topology(kind: str, from_spec: Callable[..., BaseTopology]) -> None:
    _SPEC_REGISTRY[kind] = from_spec


def topology_kinds() -> List[str]:
    return sorted(_SPEC_REGISTRY)


def topology_from_spec(spec: Dict[str, object]) -> BaseTopology:
    """Rebuild any registered topology from its :meth:`to_spec` output.

    Specs without a ``kind`` field are legacy 2D-mesh specs (every blob
    stored before the generalization).  Unknown kinds raise ``ValueError``
    with the known alternatives, so stale ResultStore blobs and
    cross-version ``repro submit`` payloads fail with a clear error
    instead of a ``KeyError`` mid-construction.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"topology spec must be a mapping, got {type(spec).__name__}")
    kind = spec.get("kind", "mesh")
    builder = _SPEC_REGISTRY.get(kind)
    if builder is None:
        raise ValueError(
            f"unknown topology kind {kind!r}; known kinds: {', '.join(topology_kinds())}"
        )
    return builder(spec)


def _require_spec_fields(
    spec: Dict[str, object], kind: str, required: Tuple[str, ...], optional: Tuple[str, ...]
) -> None:
    """Shared shape validation for every generator's ``from_spec``.

    Rejects missing required fields and unrecognized fields up front so a
    malformed or cross-version spec fails with a clear error rather than
    a ``KeyError`` (or silent misconstruction) partway through.
    """
    spec_kind = spec.get("kind", "mesh")
    if spec_kind != kind:
        raise ValueError(f"expected topology kind {kind!r}, got {spec_kind!r}")
    missing = [f for f in required if f not in spec]
    if missing:
        raise ValueError(f"{kind} spec missing fields: {', '.join(missing)}")
    known = set(required) | set(optional) | {"kind", "inactive_nodes", "inactive_links"}
    unknown = [f for f in spec if f not in known]
    if unknown:
        raise ValueError(f"{kind} spec has unrecognized fields: {', '.join(sorted(unknown))}")
