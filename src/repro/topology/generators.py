"""Non-mesh topology generators over the graph interface.

Each generator returns a :class:`GraphTopology` — an explicit
adjacency-list instance of :class:`repro.topology.base.BaseTopology` —
and registers a ``kind`` tag so :func:`repro.topology.base.topology_from_spec`
can round-trip it through the ResultStore, the campaign server, and the
fast-engine mirror:

* :func:`mesh3d` / :func:`torus3d` — 3D grids (XYZ dimension-ordered
  routing applies on the mesh; the torus needs an adaptive/recovery
  scheme, since DOR without datelines is cyclic on rings).
* :func:`circulant` — ring circulant ``C(n; s1, s2)`` (Romanov-style
  NoC rings: every node links to ``±s1`` and ``±s2`` mod ``n``).
* :func:`full_mesh` — the complete graph ``K_n``, whose per-node
  neighbor-rank ports are the case that forces per-edge opposite-port
  maps (there is no global opposite table when every node numbers its
  neighbors differently).

Ports ``0..radix-1`` are network ports, ``radix`` is the local port, as
everywhere else.  Every generator forbids self-loops and parallel edges
(one port per neighbor per node), which the fault model's
``frozenset{u, v}`` link keys require.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.base import (
    BaseTopology,
    Link,
    _require_spec_fields,
    register_topology,
)


class GraphTopology(BaseTopology):
    """Adjacency-list topology: per-node port lists over a fixed radix.

    ``neighbors[u][p]`` is the node behind port ``p`` of ``u`` (or None
    for an unwired port).  The adjacency is immutable after construction
    and shared by :meth:`copy`; only the activation state is per-copy.
    """

    def __init__(
        self,
        kind: str,
        neighbors: Sequence[Sequence[Optional[int]]],
        params: Dict[str, object],
    ) -> None:
        self.kind = kind
        self.num_nodes = len(neighbors)
        self.radix = max((len(row) for row in neighbors), default=0)
        self._params = dict(params)
        padded: List[Tuple[Optional[int], ...]] = []
        port_to: List[Dict[int, int]] = []
        links: Dict[Link, bool] = {}
        for u, row in enumerate(neighbors):
            full = tuple(row) + (None,) * (self.radix - len(row))
            padded.append(full)
            ports: Dict[int, int] = {}
            for p, v in enumerate(full):
                if v is None:
                    continue
                if not (0 <= v < self.num_nodes):
                    raise ValueError(f"port {p} of node {u} points outside the graph")
                if v == u:
                    raise ValueError(f"self-loop on node {u}")
                if v in ports:
                    raise ValueError(f"parallel edge {u}-{v} (ports {ports[v]} and {p})")
                ports[v] = p
                links[frozenset((u, v))] = True
            port_to.append(ports)
        for link in links:
            u, v = tuple(link)
            if u not in port_to[v] or v not in port_to[u]:
                raise ValueError(f"edge {u}-{v} is not bidirectional")
        self._neighbors = padded
        self._port_to = port_to
        self._node_active = [True] * self.num_nodes
        self._link_active = links

    # -- adjacency -------------------------------------------------------

    def neighbor(self, node: int, port: int) -> Optional[int]:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside graph")
        if not (0 <= port < self.radix):
            return None
        return self._neighbors[node][port]

    def port_between(self, u: int, v: int) -> int:
        port = self._port_to[u].get(v)
        if port is None:
            raise ValueError(f"nodes {u} and {v} are not adjacent")
        return port

    def describe(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in sorted(self._params.items()))
        return f"{self.kind}({inner})"

    def copy(self) -> "GraphTopology":
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        clone._params = dict(self._params)
        clone._node_active = list(self._node_active)
        clone._link_active = dict(self._link_active)
        return clone

    # -- canonical serialization -----------------------------------------

    def to_spec(self) -> Dict[str, object]:
        spec: Dict[str, object] = {"kind": self.kind}
        spec.update(self._params)
        spec.update(self._fault_spec())
        return spec


class Grid3D(GraphTopology):
    """Shared shape logic for the 3D mesh and torus generators.

    Ports pair up per dimension: ``2*d`` steps +1 along dimension ``d``,
    ``2*d + 1`` steps -1.  Node ids are ``x + X*(y + Y*z)``.
    """

    _PORT_NAMES = ("X+", "X-", "Y+", "Y-", "Z+", "Z-")

    def __init__(self, kind: str, dims: Tuple[int, int, int], wrap: bool) -> None:
        X, Y, Z = dims
        self.dims = (X, Y, Z)
        self.wrap = wrap
        neighbors: List[List[Optional[int]]] = []
        for z in range(Z):
            for y in range(Y):
                for x in range(X):
                    row: List[Optional[int]] = []
                    for (cx, cy, cz), size in (((1, 0, 0), X), ((0, 1, 0), Y), ((0, 0, 1), Z)):
                        for step in (1, -1):
                            nx = x + cx * step
                            ny = y + cy * step
                            nz = z + cz * step
                            if wrap:
                                nx, ny, nz = nx % X, ny % Y, nz % Z
                            if 0 <= nx < X and 0 <= ny < Y and 0 <= nz < Z:
                                row.append(nx + X * (ny + Y * nz))
                            else:
                                row.append(None)
                    neighbors.append(row)
        super().__init__(kind, neighbors, {"x": X, "y": Y, "z": Z})

    def coords3(self, node: int) -> Tuple[int, int, int]:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside grid")
        X, Y, _ = self.dims
        return node % X, (node // X) % Y, node // (X * Y)

    def node_id3(self, x: int, y: int, z: int) -> int:
        X, Y, Z = self.dims
        if not (0 <= x < X and 0 <= y < Y and 0 <= z < Z):
            raise ValueError(f"({x},{y},{z}) outside {X}x{Y}x{Z} grid")
        return x + X * (y + Y * z)

    def port_name(self, port: int) -> str:
        if 0 <= port < 6:
            return self._PORT_NAMES[port]
        return super().port_name(port)

    def describe_node(self, node: int) -> str:
        x, y, z = self.coords3(node)
        return f"({x},{y},{z})"

    def describe(self) -> str:
        X, Y, Z = self.dims
        return f"{X}x{Y}x{Z} {'torus' if self.wrap else 'mesh'}"


def mesh3d(x: int, y: int, z: int) -> Grid3D:
    """A healthy ``x * y * z`` 3D mesh (XYZ dimension-ordered routable)."""
    if min(x, y, z) < 1:
        raise ValueError("3D mesh dimensions must be >= 1")
    return Grid3D("mesh3d", (x, y, z), wrap=False)


def torus3d(x: int, y: int, z: int) -> Grid3D:
    """A healthy ``x * y * z`` 3D torus.

    Each dimension must be >= 3: a size-2 ring would wire two parallel
    ports to the same neighbor, which the bidirectional-link fault model
    cannot represent.
    """
    if min(x, y, z) < 3:
        raise ValueError("3D torus dimensions must be >= 3 (no parallel edges)")
    return Grid3D("torus3d", (x, y, z), wrap=True)


def circulant(n: int, s1: int, s2: int) -> GraphTopology:
    """Ring circulant ``C(n; s1, s2)``: node ``i`` links to ``i +- s1, i +- s2``.

    Ports: 0 = ``+s1``, 1 = ``-s1``, 2 = ``+s2``, 3 = ``-s2`` — the same
    radix as the 2D mesh.  Requires ``0 < s1 < s2 < n/2`` (distinct
    generators, no self-loops, no parallel edges) and
    ``gcd(n, s1, s2) == 1`` (connectivity).
    """
    if n < 5:
        raise ValueError("circulant needs n >= 5")
    if not (0 < s1 < s2):
        raise ValueError("circulant generators must satisfy 0 < s1 < s2")
    if 2 * s2 >= n:
        raise ValueError("circulant needs s2 < n/2 (no parallel edges)")
    if gcd(gcd(n, s1), s2) != 1:
        raise ValueError(f"C({n};{s1},{s2}) is disconnected (gcd != 1)")
    neighbors = [
        [(i + s1) % n, (i - s1) % n, (i + s2) % n, (i - s2) % n] for i in range(n)
    ]
    return GraphTopology("circulant", neighbors, {"n": n, "s1": s1, "s2": s2})


def full_mesh(n: int) -> GraphTopology:
    """The complete graph ``K_n``: every node links to every other.

    Port ``p`` of node ``u`` leads to its ``p``-th neighbor in ascending
    id order (``v if v < u else v + 1`` inverted) — node-local numbering,
    so the opposite-port relation is genuinely per-edge.
    """
    if n < 2:
        raise ValueError("full mesh needs n >= 2")
    neighbors = [[v for v in range(n) if v != u] for u in range(n)]
    return GraphTopology("full_mesh", neighbors, {"n": n})


# -- spec round-trip -------------------------------------------------------


def _grid3d_from_spec(kind: str, builder, spec: Dict[str, object]) -> Grid3D:
    _require_spec_fields(spec, kind, ("x", "y", "z"), ())
    topo = builder(int(spec["x"]), int(spec["y"]), int(spec["z"]))
    topo._apply_fault_spec(spec)
    return topo


def _mesh3d_from_spec(spec: Dict[str, object]) -> Grid3D:
    return _grid3d_from_spec("mesh3d", mesh3d, spec)


def _torus3d_from_spec(spec: Dict[str, object]) -> Grid3D:
    return _grid3d_from_spec("torus3d", torus3d, spec)


def _circulant_from_spec(spec: Dict[str, object]) -> GraphTopology:
    _require_spec_fields(spec, "circulant", ("n", "s1", "s2"), ())
    topo = circulant(int(spec["n"]), int(spec["s1"]), int(spec["s2"]))
    topo._apply_fault_spec(spec)
    return topo


def _full_mesh_from_spec(spec: Dict[str, object]) -> GraphTopology:
    _require_spec_fields(spec, "full_mesh", ("n",), ())
    topo = full_mesh(int(spec["n"]))
    topo._apply_fault_spec(spec)
    return topo


register_topology("mesh3d", _mesh3d_from_spec)
register_topology("torus3d", _torus3d_from_spec)
register_topology("circulant", _circulant_from_spec)
register_topology("full_mesh", _full_mesh_from_spec)


def parse_topology(text: str) -> BaseTopology:
    """Build a healthy topology from a CLI string.

    Accepted forms: ``WxH`` or ``mesh:WxH``; ``mesh3d:XxYxZ``;
    ``torus3d:XxYxZ``; ``circulant:N,S1,S2``; ``fullmesh:N`` (alias
    ``full_mesh:N``).
    """
    from repro.topology.mesh import mesh

    text = text.strip().lower()
    if ":" in text:
        kind, _, arg = text.partition(":")
    else:
        kind, arg = "mesh", text
    try:
        if kind == "mesh":
            w, h = (int(p) for p in arg.split("x"))
            return mesh(w, h)
        if kind in ("mesh3d", "torus3d"):
            x, y, z = (int(p) for p in arg.split("x"))
            return (mesh3d if kind == "mesh3d" else torus3d)(x, y, z)
        if kind == "circulant":
            n, s1, s2 = (int(p) for p in arg.replace(",", " ").split())
            return circulant(n, s1, s2)
        if kind in ("fullmesh", "full_mesh"):
            return full_mesh(int(arg))
    except ValueError as exc:
        raise ValueError(f"bad topology argument {text!r}: {exc}") from exc
    raise ValueError(
        f"unknown topology {kind!r}; try mesh:8x8, mesh3d:4x4x4, "
        f"torus3d:4x4x4, circulant:16,1,5, or fullmesh:8"
    )
