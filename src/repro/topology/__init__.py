"""Topologies (mesh and beyond), fault models, and graph analysis."""

from repro.topology.base import (
    BaseTopology,
    register_topology,
    topology_from_spec,
    topology_kinds,
)
from repro.topology.mesh import Topology, mesh
from repro.topology.generators import (
    GraphTopology,
    Grid3D,
    circulant,
    full_mesh,
    mesh3d,
    parse_topology,
    torus3d,
)
from repro.topology.faults import (
    default_memory_controllers,
    inject_link_faults,
    inject_router_faults,
    sample_topologies,
)
from repro.topology.graph import (
    connected_components,
    has_cycle,
    is_connected,
    largest_component,
    nodes_reachable_from,
    simple_cycles,
    to_networkx,
)

__all__ = [
    "BaseTopology",
    "GraphTopology",
    "Grid3D",
    "Topology",
    "mesh",
    "mesh3d",
    "torus3d",
    "circulant",
    "full_mesh",
    "parse_topology",
    "register_topology",
    "topology_from_spec",
    "topology_kinds",
    "default_memory_controllers",
    "inject_link_faults",
    "inject_router_faults",
    "sample_topologies",
    "connected_components",
    "has_cycle",
    "is_connected",
    "largest_component",
    "nodes_reachable_from",
    "simple_cycles",
    "to_networkx",
]
