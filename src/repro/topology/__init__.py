"""Mesh-derived topologies, fault models, and graph analysis."""

from repro.topology.mesh import Topology, mesh
from repro.topology.faults import (
    default_memory_controllers,
    inject_link_faults,
    inject_router_faults,
    sample_topologies,
)
from repro.topology.graph import (
    connected_components,
    has_cycle,
    is_connected,
    largest_component,
    nodes_reachable_from,
    simple_cycles,
    to_networkx,
)

__all__ = [
    "Topology",
    "mesh",
    "default_memory_controllers",
    "inject_link_faults",
    "inject_router_faults",
    "sample_topologies",
    "connected_components",
    "has_cycle",
    "is_connected",
    "largest_component",
    "nodes_reachable_from",
    "simple_cycles",
    "to_networkx",
]
