"""XY dimension-ordered routing as a scheme (regular-mesh reference).

The conventional deadlock-avoidance baseline for *healthy* meshes
(Section II-A): X first, then Y; the Y->X turns are forbidden, which
breaks all channel-dependency cycles.  Included as the reference the
paper contrasts against — it is provably deadlock-free on a full mesh
and provably *unusable* on irregular topologies (destinations whose XY
route crosses a fault become unreachable even when healthy paths exist;
the routing tables simply omit them and the NI drops such packets).
"""

from __future__ import annotations

from typing import Dict

from repro.protocols.base import DeadlockScheme
from repro.routing.table import RoutingTable
from repro.routing.xy import xy_route, xy_route_is_usable
from repro.sim.config import SimConfig
from repro.topology.mesh import Topology


class XyRouting(DeadlockScheme):
    """Dimension-ordered XY source routing."""

    name = "xy"

    def build_tables(
        self, topo: Topology, config: SimConfig
    ) -> Dict[int, RoutingTable]:
        tables = {node: RoutingTable(node) for node in topo.active_nodes()}
        for src in topo.active_nodes():
            for dst in topo.active_nodes():
                if src == dst:
                    continue
                if xy_route_is_usable(topo, src, dst):
                    tables[src].add_route(dst, xy_route(topo, src, dst))
        return tables

    def unreachable_pairs(self, topo: Topology) -> int:
        """How many (src, dst) pairs XY cannot serve on this topology."""
        count = 0
        for src in topo.active_nodes():
            for dst in topo.active_nodes():
                if src != dst and not xy_route_is_usable(topo, src, dst):
                    count += 1
        return count
