"""Deadlock recovery with escape VCs (baseline 2).

Models the Router Parking / NoRD style (Section V-B): packets normally
follow minimal, deadlock-prone routes in the regular VCs; every input
port additionally carries one reserved *escape* VC per vnet.  A packet
whose head-of-VC wait exceeds a detection threshold is diverted into the
escape layer, which routes hop-by-hop over a spanning tree (per-router
escape tables) — deadlock-free but non-minimal.  Once in the escape
layer a packet stays there until ejection.

Costs modelled, as in Table I: one extra VC per vnet per input port at
*every* router (vs. Static Bubble's one buffer at a few routers), and
throughput loss from the permanently reserved VC.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.protocols.base import DeadlockScheme
from repro.routing.spanning_tree import build_spanning_trees, tree_next_hop_tables
from repro.routing.table import RoutingTable, build_minimal_tables
from repro.sim.config import SimConfig
from repro.topology.base import BaseTopology as Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network


class EscapeVcRecovery(DeadlockScheme):
    """Minimal routes + per-router spanning-tree escape VCs."""

    name = "escape-vc"

    def __init__(self, reserve_existing: bool = True) -> None:
        #: ``reserve_existing``: the paper's model — one of the router's
        #: VCs per vnet per port is permanently reserved as the escape VC
        #: (this is where the throughput loss vs. Static Bubble comes
        #: from).  Set False to *add* escape VCs on top instead.
        self.reserve_existing = reserve_existing
        self.escape_tables: Dict[int, Dict[int, int]] = {}
        self._t_detect = 34
        #: Port layout of the last topology tables were built for
        #: (2D-mesh defaults before the first ``build_tables``).
        self._local = 4
        self._num_ports = 5

    def build_tables(
        self, topo: Topology, config: SimConfig
    ) -> Dict[int, RoutingTable]:
        self._t_detect = config.escape_t_detect
        self._local = topo.local_port
        self._num_ports = topo.num_ports
        # Escape layer: pure tree routing per component.
        self.escape_tables = {}
        for tree in build_spanning_trees(topo):
            self.escape_tables.update(tree_next_hop_tables(topo, tree))
        return build_minimal_tables(topo, config.max_minimal_routes)

    def setup(self, network: "Network") -> None:
        if self.reserve_existing and network.config.vcs_per_vnet < 2:
            raise ValueError(
                "escape-VC reservation needs >= 2 VCs per vnet per port"
            )
        for router in network.active_routers():
            router.add_escape_vcs(reserve_existing=self.reserve_existing)
            router._escape_lookup = self._lookup

    def _lookup(self, node: int, dst: int) -> int:
        table = self.escape_tables.get(node)
        if table is None or dst not in table:
            # Destination unreachable from the escape layer (different
            # component after a topology change): eject-and-drop is the
            # only sane hardware behaviour; route tables prevent this in
            # practice because minimal routes exist iff the tree covers.
            return self._local
        return table[dst]

    def on_topology_changed(self, network, added, removed, now):
        # ``build_tables`` (already re-run by the network) rebuilt the
        # escape tables for the new topology; restored routers just need
        # their escape layer provisioned like ``setup`` did.
        for node in added:
            router = network.routers[node]
            router.add_escape_vcs(reserve_existing=self.reserve_existing)
            router._escape_lookup = self._lookup
        return {}

    def on_cycle(self, network: "Network", now: int) -> None:
        """Divert packets stalled beyond the detection threshold.

        The per-VC timer models Router Parking's deadlock-detection
        timeout.  Diversion is a mode flip on the packet: from the next
        allocation on it requests the escape output port and an escape VC.
        """
        threshold = self._t_detect
        for router in network.active_routers():
            if router.occupancy == 0:
                continue
            for vc in router.all_vcs():
                packet = vc.packet
                if (
                    packet is not None
                    and not packet.is_escape
                    and now - vc.ready_at >= threshold
                ):
                    packet.is_escape = True
                    network.stats.escape_diversions += 1
                    # The mode flip changes which output/VC class this
                    # buffered packet requests; engines that mirror
                    # per-slot routing state need to refresh this router.
                    hook = router._dirty_hook
                    if hook is not None:
                        hook(router.node)

    def extra_vcs_per_router(self, node: int, config: SimConfig) -> int:
        # One escape VC per vnet per input port (incl. local), Table I.
        return self._num_ports * config.vnets

    def verify(self, topo: Topology, config: SimConfig):
        """Certify the escape layer, which carries the freedom claim.

        The normal VCs run deadlock-prone minimal routes by design;
        recovery works because the escape layer (per-router spanning-tree
        next hops) is acyclic and always admits a diverted packet.
        """
        from repro.verify.cdg import cdg_from_next_hops
        from repro.verify.certify import certify_acyclic

        self.build_tables(topo, config)  # refresh escape tables for topo
        return certify_acyclic(
            cdg_from_next_hops(topo, self.escape_tables),
            scheme=self.name,
            layer="escape",
        )
