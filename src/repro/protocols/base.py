"""Deadlock-freedom scheme interface.

A scheme bundles (a) how NIs route packets over the current topology and
(b) any router augmentation / per-cycle protocol machinery.  The network
is scheme-agnostic; all scheme behaviour goes through these hooks.

Implementations:

* :class:`repro.protocols.none.MinimalUnprotected` — minimal routes, no
  protection (the Fig. 2/3 state-space studies).
* :class:`repro.protocols.spanning_tree.SpanningTreeAvoidance` — the
  paper's first baseline (up*/down* routes, deadlock avoidance).
* :class:`repro.protocols.escape_vc.EscapeVcRecovery` — the second
  baseline (minimal routes + escape VCs on a spanning tree).
* :class:`repro.protocols.static_bubble.StaticBubbleScheme` — the paper's
  contribution.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, TYPE_CHECKING

from repro.core.messages import SpecialMessage
from repro.routing.table import RoutingTable, build_minimal_tables
from repro.sim.config import SimConfig
from repro.topology.base import BaseTopology as Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network
    from repro.sim.router import Router


class DeadlockScheme:
    """Base scheme: minimal routing, no router augmentation."""

    name = "base"

    def build_tables(
        self, topo: Topology, config: SimConfig
    ) -> Dict[int, RoutingTable]:
        """Routing tables installed at the NIs (default: minimal routes)."""
        return build_minimal_tables(topo, config.max_minimal_routes)

    def setup(self, network: "Network") -> None:
        """Augment routers (escape VCs, bubbles, FSMs) after construction."""

    def attach_obs(self, network: "Network", observer) -> None:
        """Install scheme-level tracing hooks (``Network.attach_obs``).

        Default: nothing to trace.  The Static Bubble scheme installs FSM
        transition tracers here.
        """

    def on_cycle(self, network: "Network", now: int) -> None:
        """Per-cycle protocol work, run after switch allocation."""

    def process_specials(
        self,
        network: "Network",
        router: "Router",
        messages: Sequence[Tuple[int, SpecialMessage]],
        now: int,
    ) -> None:
        """Handle special messages arriving at ``router`` this cycle.

        ``messages`` holds ``(input_port, message)`` pairs.  Only the
        Static Bubble scheme uses special messages.
        """

    def on_bubble_drained(self, network: "Network", router: "Router", now: int) -> None:
        """A packet left the static bubble VC (SB scheme only)."""

    def on_topology_changed(
        self,
        network: "Network",
        added: Sequence[int],
        removed: Sequence[int],
        now: int,
    ) -> Dict[str, int]:
        """Reconcile protocol state after a *live* topology change.

        Called by ``Network.apply_faults`` / ``Network.restore`` after the
        topology has been mutated, dead routers torn down (``removed``) or
        fresh ones built (``added``), and routing tables rebuilt — but
        before packets are re-routed.  Schemes drop state owned by dead
        routers, re-provision augmentation on restored ones, and clean up
        any protocol structure (seals, recovery FSMs) that straddles a
        dead element.  Returns summary counts for the ``reconfig.apply``
        event (recognised keys: ``seals_cleared``, ``fsms_reset``).
        """
        return {}

    def extra_vcs_per_router(self, node: int, config: SimConfig) -> int:
        """Buffers this scheme adds at ``node`` beyond the baseline router.

        Used by the energy/area model (Table I accounting).
        """
        return 0

    def verify(self, topo: Topology, config: SimConfig):
        """Machine-check this scheme's deadlock-freedom claim on ``topo``.

        Returns a :class:`repro.verify.Certificate`.  The base claim is
        the Dally & Seitz condition: the channel-dependency graph of the
        tables this scheme would install is acyclic.  Schemes whose story
        differs override this — Static Bubble certifies the placement
        cycle-cover instead, escape-VC certifies its escape layer — and
        schemes with no claim (``MinimalUnprotected`` on a cyclic
        topology) honestly fail.
        """
        from repro.verify.cdg import cdg_from_tables
        from repro.verify.certify import certify_acyclic

        tables = self.build_tables(topo, config)
        return certify_acyclic(cdg_from_tables(topo, tables), scheme=self.name)
