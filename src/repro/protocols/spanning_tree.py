"""Deadlock avoidance with spanning-tree up*/down* routing (baseline 1).

Models the Ariadne / uDIREC / Panthre family (Section V-B): on every
topology, a spanning tree is built over each surviving component and all
packets carry a single up*/down*-valid route.  Up*/down* forbids the
down->up turn, which provably breaks every cyclic channel dependency, so
no recovery machinery is needed — at the price of non-minimal routes and
reduced path diversity.

Reconfiguration (tree construction) is modelled as free, exactly as the
paper grants this baseline ("we assume zero cycles to reconfigure").
"""

from __future__ import annotations

from typing import Dict

from repro.protocols.base import DeadlockScheme
from repro.routing.table import RoutingTable, build_updown_tables
from repro.sim.config import SimConfig
from repro.topology.mesh import Topology


class SpanningTreeAvoidance(DeadlockScheme):
    """Up*/down* source routing over a per-component spanning tree."""

    name = "spanning-tree"

    def build_tables(
        self, topo: Topology, config: SimConfig
    ) -> Dict[int, RoutingTable]:
        return build_updown_tables(topo)
