"""Adaptive congestion-aware minimal routing over a recovery substrate.

The paper frames Static Bubble as a *substrate*: any routing function is
deadlock-free as long as the placement's cycle cover holds, because
recovery — not the routing function — carries the freedom claim.  Every
other scheme in this repo routes deterministically, so that claim is only
ever exercised by faults.  This module adds the standard stress test
(FT-ADR / DBR style): minimal-adaptive routing, which deliberately
creates path diversity and congestion-driven route churn on top of a
safety net.

Selection model (Garnet-style adaptive minimal routing):

* The candidate set at a router is the set of first hops over *all*
  minimal routes installed in the NI routing tables — topology-agnostic,
  no coordinate math, so irregular (faulted) graphs work unchanged.
* Candidates are scored by the downstream credit signal
  (:meth:`repro.sim.router.Router.downstream_credits`): the count of
  immediately free non-escape VCs of the packet's vnet behind each
  outport.  Highest credit count wins; ties break on a per-input-port
  round-robin pointer that advances only on grants.
* When no candidate can be granted, the packet simply stalls — and the
  recovery substrate (static bubble, or the escape layer in the variant)
  resolves any resulting deadlock exactly as it does for faults.

Why the CDG certificate still holds: adaptive-minimal never takes a
u-turn (a minimal first hop never reverses), and the Static Bubble
cycle-cover certificate is computed over the *turn-closure* CDG — every
non-u-turn hop over active links — which over-approximates any
u-turn-free routing function, adaptive ones included.  The escape
variant's claim is likewise routing-independent: the escape layer stays
acyclic no matter what the normal VCs do.
"""

from __future__ import annotations

from typing import Dict, Tuple, TYPE_CHECKING

from repro.protocols.escape_vc import EscapeVcRecovery
from repro.protocols.static_bubble import StaticBubbleScheme
from repro.routing.table import RoutingTable
from repro.sim.config import SimConfig
from repro.topology.base import BaseTopology as Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network


class AdaptiveSelectionMixin:
    """Adds table-derived candidate sets + router lookup installation.

    Mix in before a recovery scheme; ``super()`` calls thread through to
    it, so table construction, augmentation, and reconciliation all keep
    the substrate's behaviour.
    """

    #: node -> dst -> ascending tuple of minimal first-hop outports.
    _next_hops: Dict[int, Dict[int, Tuple[int, ...]]]
    #: The sole candidate once the destination is reached (ejection);
    #: rebound to the topology's local port by ``build_tables``.
    _local_only: Tuple[int, ...] = (4,)

    def build_tables(
        self, topo: Topology, config: SimConfig
    ) -> Dict[int, RoutingTable]:
        tables = super().build_tables(topo, config)
        self._local_only = (topo.local_port,)
        next_hops: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        for node, table in tables.items():
            hops: Dict[int, Tuple[int, ...]] = {}
            for dst in table.destinations():
                hops[dst] = tuple(
                    sorted({int(route[0]) for route in table.routes(dst)})
                )
            next_hops[node] = hops
        self._next_hops = next_hops
        return tables

    def candidate_outports(self, node: int, dst: int) -> Tuple[int, ...]:
        """Minimal outport candidates at ``node`` toward ``dst``.

        Installed on every router as ``_adaptive_lookup``.  Empty when
        the destination is unreachable (transient mid-reconfiguration
        state; the salvage pass drops such packets).
        """
        if dst == node:
            return self._local_only
        hops = self._next_hops.get(node)
        if hops is None:
            return ()
        return hops.get(dst, ())

    def setup(self, network: "Network") -> None:
        super().setup(network)
        for router in network.active_routers():
            router._adaptive_lookup = self.candidate_outports

    def on_topology_changed(self, network, added, removed, now):
        # ``build_tables`` (already re-run by the network) refreshed
        # ``_next_hops`` in place; restored routers additionally need the
        # lookup installed, like ``setup`` did.
        summary = super().on_topology_changed(network, added, removed, now)
        for node in added:
            network.routers[node]._adaptive_lookup = self.candidate_outports
        return summary or {}


class AdaptiveMinimalScheme(AdaptiveSelectionMixin, StaticBubbleScheme):
    """Adaptive minimal routing, static-bubble recovery (the tentpole).

    Inherits the Static Bubble placement, FSMs, and — crucially — its
    ``verify()``: the turn-closure cycle-cover certificate is valid for
    *any* u-turn-free routing function (see module docstring), so the
    same machine-checked claim covers the adaptive selection.
    """

    name = "adaptive"


class AdaptiveEscapeScheme(AdaptiveSelectionMixin, EscapeVcRecovery):
    """Variant: adaptive minimal routing over escape-VC recovery.

    Packets stalled past the detection threshold divert into the (acyclic
    spanning-tree) escape layer exactly as under ``escape-vc``; the
    inherited ``verify()`` certifies that layer, which is independent of
    how the normal VCs route.
    """

    name = "adaptive-escape"
