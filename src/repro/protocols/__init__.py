"""Deadlock-freedom schemes: baselines and the Static Bubble contribution."""

from repro.protocols.adaptive import AdaptiveEscapeScheme, AdaptiveMinimalScheme
from repro.protocols.base import DeadlockScheme
from repro.protocols.none import MinimalUnprotected
from repro.protocols.spanning_tree import SpanningTreeAvoidance
from repro.protocols.escape_vc import EscapeVcRecovery
from repro.protocols.static_bubble import StaticBubbleScheme
from repro.protocols.xy import XyRouting

SCHEMES = {
    "minimal-unprotected": MinimalUnprotected,
    "xy": XyRouting,
    "spanning-tree": SpanningTreeAvoidance,
    "escape-vc": EscapeVcRecovery,
    "static-bubble": StaticBubbleScheme,
    "adaptive": AdaptiveMinimalScheme,
    "adaptive-escape": AdaptiveEscapeScheme,
}


def make_scheme(name: str, **kwargs) -> DeadlockScheme:
    """Factory over the named schemes."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}; have {sorted(SCHEMES)}")
    return cls(**kwargs)


__all__ = [
    "DeadlockScheme",
    "MinimalUnprotected",
    "XyRouting",
    "SpanningTreeAvoidance",
    "EscapeVcRecovery",
    "StaticBubbleScheme",
    "AdaptiveMinimalScheme",
    "AdaptiveEscapeScheme",
    "SCHEMES",
    "make_scheme",
]
