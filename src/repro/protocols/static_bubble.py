"""The Static Bubble deadlock-recovery scheme (Sections III and IV).

All packets use minimal routes in all VCs, all the time.  A subset of
routers (chosen by :mod:`repro.core.placement`) carries one extra
packet-sized buffer — the *static bubble* — plus the counter FSM of
Fig. 5.  On suspicion of a deadlock (a watched packet stuck beyond
``t_DD``) the FSM runs the four-message recovery protocol:

probe        traces the suspected dependency cycle, forking at every
             router whose probed input port is fully occupied and
             recording the L/S/R turn taken; returning to its sender
             confirms a cycle.
disable      replays the recorded path, installing at each router the
             IO-priority injection restriction (``is_deadlock`` bit) that
             seals the cycle against new traffic; returning to the sender
             switches the static bubble ON.
check_probe  after the bubble drains one packet and is re-claimed,
             retraces the path to test whether the chain still exists;
             if it returns, the bubble switches on again.
enable       replays the path clearing the restrictions once the chain
             is gone (or when a disable/check_probe was dropped midway).

All four are bufferless and single-flit; per cycle a router forwards at
most one special message per output port (priority: check_probe >
disable/enable > probe; ties to the higher sender id; an enable/disable
tie is broken by the local ``is_deadlock`` bit, Section IV-C).

Robustness extension (documented in DESIGN.md): if the activated bubble
is never claimed because the sealed chain dissolved through an
independent drain (a false positive caused by congestion), the FSM
treats the dissolution — detected as "no VC at the chain input port
wants the chain output port any more" — like a re-claim, so the
check_probe/enable path still runs and the restrictions are removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.fsm import COUNTING_STATES, CounterFsm, FsmAction, FsmState
from repro.core.messages import (
    MsgType,
    SpecialMessage,
    make_path_message,
    make_probe,
)
from repro.core.placement import placement_node_ids
from repro.core.turns import PROBE_TURN_CAPACITY, Port, apply_turn, turn_between
from repro.obs.events import (
    BUBBLE_ACTIVATE,
    BUBBLE_DRAIN,
    BUBBLE_RELOCATE,
    FSM_TRANSITION,
    RECOVERY_ABORT,
    RECOVERY_DONE,
    SEAL_CLEAR,
    SEAL_EXPIRE,
    SEAL_INSTALL,
    SEAL_REFRESH,
    SPECIAL_DROP,
)
from repro.protocols.base import DeadlockScheme

#: ``_PORTS[i] is Port(i)`` — avoids the enum-constructor call on hot paths.
_PORTS = (Port.EAST, Port.NORTH, Port.WEST, Port.SOUTH, Port.LOCAL)

#: Mesh default for ``_enc[in_port][out_port]`` — ``turn_between``
#: precomputed; ``None`` for u-turns and local ports (never looked up on
#: the fork path, which filters those out first).  Replaced by the
#: topology's own hop codec at ``setup()``; these module tables only back
#: schemes that are driven before/without a network (unit tests).
_TURN = tuple(
    tuple(
        turn_between(_PORTS[i], _PORTS[o])
        if i < 4 and o < 4 and o != i
        else None
        for o in range(5)
    )
    for i in range(5)
)
from repro.sim.config import SimConfig
from repro.sim.router import VC_NORMAL

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network
    from repro.sim.router import Router


@dataclass
class _SbRouterState:
    """Per static-bubble-router protocol state beyond the FSM."""

    fsm: CounterFsm
    #: Flat round-robin list of compass-port VCs and the watch pointer.
    watch_index: int = 0
    watched_pid: Optional[int] = None
    #: Cycle the bubble was (last) activated; drives the unclaimed-bubble
    #: timeout.
    bubble_active_since: int = 0


class StaticBubbleScheme(DeadlockScheme):
    """Minimal routing + static bubbles + recovery FSM."""

    name = "static-bubble"

    def __init__(
        self,
        t_dd: Optional[int] = None,
        fork_probes: bool = True,
        use_check_probe: bool = True,
        placement_override: Optional[set] = None,
    ) -> None:
        #: Optional override of the config's deadlock-detection threshold.
        self._t_dd_override = t_dd
        #: Ablations (DESIGN.md §7): without forking, a probe is forwarded
        #: only when every VC at the probed port wants the same output;
        #: without the check_probe optimization, each bubble re-claim goes
        #: straight to the enable/teardown and deadlock must be re-detected
        #: from scratch (paper footnote 7).
        self.fork_probes = fork_probes
        self.use_check_probe = use_check_probe
        #: Optional explicit set of static-bubble node ids (ablations:
        #: bubble-at-every-router, random sparse placements, ...).
        self.placement_override = placement_override
        self.states: Dict[int, _SbRouterState] = {}
        #: Over-approximating set of sealed (``is_deadlock``) router ids,
        #: fed by the routers' seal hook; members whose seal is gone are
        #: discarded lazily by ``_collect_stale_seals``.  Avoids scanning
        #: every active router every cycle for the seal-GC watchdog.
        self._sealed: set = set()
        #: Placement actually provisioned at ``setup`` (None before).
        self._placement: Optional[set] = None
        self._install_codec(None)

    # -- construction -----------------------------------------------------

    def _install_codec(self, topo) -> None:
        """Bind the per-topology port layout and hop codec.

        ``topo=None`` installs the 2D-mesh defaults (L/R/S relative
        turns, 5 ports) so a scheme driven without a network — the
        protocol unit tests construct messages by hand — behaves exactly
        as before the topology generalization.
        """
        if topo is None:
            self._local = int(Port.LOCAL)
            self._num_ports = 5
            self._enc = _TURN
            self._decode = apply_turn
            self._probe_capacity = PROBE_TURN_CAPACITY
            self._port_names = tuple(p.name for p in _PORTS)
            return
        self._local = topo.local_port
        self._num_ports = topo.num_ports
        local = self._local
        self._enc = tuple(
            tuple(
                topo.encode_hop(i, o)
                if i < local and o < local and o != i
                else None
                for o in range(self._num_ports)
            )
            for i in range(self._num_ports)
        )
        self._decode = topo.decode_hop
        self._probe_capacity = topo.probe_hop_capacity()
        self._port_names = tuple(
            topo.port_name(p) for p in range(self._num_ports)
        )

    def _placed_nodes(self, topo) -> set:
        """The static-bubble node set for ``topo`` (override wins)."""
        if self.placement_override is not None:
            return set(self.placement_override)
        return set(topo.bubble_placement())

    def setup(self, network: "Network") -> None:
        config = network.config
        self._install_codec(network.topo)
        t_dd = self._t_dd_override or config.sb_t_dd
        sb_nodes = self._placed_nodes(network.topo)
        self._placement = sb_nodes
        for router in network.routers.values():
            router._seal_hook = self._sealed.add
        for node, router in network.routers.items():
            if node in sb_nodes:
                router.add_static_bubble()
                # Per-router detection thresholds are configurable in the
                # paper's design; staggering them by node id desynchronizes
                # probe retries so that concurrent probes do not collide in
                # the same deterministic pattern every period (collisions
                # drop the lower-id probe, Section IV-B).
                stagger = (node * 7) % 13
                fsm = CounterFsm(
                    node,
                    t_dd + stagger,
                    max_enable_retries=config.sb_enable_retries,
                )
                self.states[node] = _SbRouterState(fsm)

    def is_sb_router(self, node: int) -> bool:
        return node in self.states

    def verify(self, topo, config: SimConfig):
        """Certify the Section III lemma on this (possibly faulted) topology.

        Checks the cycle cover on the *turn-closure* CDG (every non-u-turn
        hop over active links), not just the currently installed tables:
        a cover of the closure stays valid for any minimal-route tables
        the reconfiguration software may install after further faults.
        The cover is the placement restricted to live routers — a bubble
        at a dead router protects nothing.
        """
        from repro.verify.cdg import cdg_from_turns
        from repro.verify.certify import certify_cycle_cover

        placed = self._placed_nodes(topo)
        cover = placed & set(topo.active_nodes())
        return certify_cycle_cover(
            cdg_from_turns(topo),
            cover,
            scheme=self.name,
            placed_routers=len(placed),
        )

    # -- live reconfiguration ----------------------------------------------

    def on_topology_changed(self, network, added, removed, now):
        """Reconcile SB protocol state with a live topology change.

        Three structures can straddle a dead element and must not be left
        dangling (the protocol itself cannot clean them up, because its
        cleanup vehicle — the enable replaying the turn path — can no
        longer traverse that path):

        * FSM state owned by a removed router (discarded with it);
        * a recovery whose latched turn path crosses a dead link/router:
          the owner FSM is administratively reset and its bubble
          deactivated;
        * IO-priority seals installed by a now-dead or now-reset sender:
          cleared at every surviving router, as the matching enable will
          never arrive.
        """
        config = network.config
        removed_set = set(removed)
        for node in removed_set:
            self.states.pop(node, None)

        if added:
            t_dd = self._t_dd_override or config.sb_t_dd
            sb_nodes = self._placed_nodes(network.topo)
            provisioned = False
            for node in added:
                network.routers[node]._seal_hook = self._sealed.add
            for node in added:
                if node not in sb_nodes:
                    continue
                router = network.routers[node]
                router.add_static_bubble()
                stagger = (node * 7) % 13
                fsm = CounterFsm(
                    node,
                    t_dd + stagger,
                    max_enable_retries=config.sb_enable_retries,
                )
                self.states[node] = _SbRouterState(fsm)
                provisioned = True
            if provisioned and network.obs is not None:
                self.attach_obs(network, network.obs)

        fsms_reset = 0
        broken_senders = set(removed_set)
        for node, state in self.states.items():
            fsm = state.fsm
            if not fsm.in_recovery():
                continue
            if self._path_intact(network.topo, node, fsm):
                continue
            broken_senders.add(node)
            router = network.routers[node]
            router.deactivate_bubble()
            any_active = any(
                vc.packet is not None for vc in self._compass_vcs(router)
            )
            fsm.reset(any_active)
            fsms_reset += 1

        seals_cleared = 0
        for router in network.active_routers():
            if not router.is_deadlock or router.source_id not in broken_senders:
                continue
            self._emit(network, SEAL_CLEAR, router.node, source=router.source_id)
            router.clear_io_restriction()
            seals_cleared += 1
            state = self.states.get(router.node)
            if state is not None and not state.fsm.in_recovery():
                # Parked S_OFF by the (now unreachable) foreign disable:
                # resume watching as a real enable would have done.
                any_active = any(
                    vc.packet is not None for vc in self._compass_vcs(router)
                )
                state.fsm.on_foreign_enable(any_active)
        return {"seals_cleared": seals_cleared, "fsms_reset": fsms_reset}

    @staticmethod
    def _path_intact(topo, node: int, fsm: CounterFsm) -> bool:
        """Does the FSM's latched recovery loop still exist as wiring?

        Replays the turn buffer geometrically: ``len(turns) + 1`` link
        hops starting out of ``probe_out_port``, turning at each
        intermediate router, ending back at ``node``.
        """
        if fsm.probe_out_port is None:
            return True
        travel = fsm.probe_out_port
        current = node
        turns = fsm.turn_buffer
        for i in range(len(turns) + 1):
            nxt = topo.neighbor(current, travel)
            if (
                nxt is None
                or not topo.link_is_active(current, nxt)
                or not topo.node_is_active(nxt)
            ):
                return False
            current = nxt
            if i < len(turns):
                travel = topo.decode_hop(travel, turns[i])
        return True

    def attach_obs(self, network: "Network", observer) -> None:
        """Install FSM transition tracing (called by ``attach_obs``)."""

        def trace(fsm, old, new):
            observer.emit(
                network.cycle,
                FSM_TRANSITION,
                fsm.node,
                {"from_state": old.name, "to_state": new.name},
            )

        for state in self.states.values():
            state.fsm.trace = trace

    @staticmethod
    def _emit(network: "Network", kind: str, node: int, **data) -> None:
        """Trace-event emission guard (no-op when no observer attached)."""
        obs = network.obs
        if obs is not None:
            obs.emit(network.cycle, kind, node, data)

    def extra_vcs_per_router(self, node: int, config: SimConfig) -> int:
        if self.placement_override is not None:
            return 1 if node in self.placement_override else 0
        if self._placement is not None:
            return 1 if node in self._placement else 0
        # Design-time query with no network attached: the config's mesh.
        return 1 if node in placement_node_ids(config.width, config.height) else 0

    # -- per-cycle FSM driving ---------------------------------------------

    def on_cycle(self, network: "Network", now: int) -> None:
        # This loop runs for every SB router every cycle; the guards of
        # `_relocate_bubble_resident` / `_update_watch` /
        # `_sb_active_watchdog` / `CounterFsm.tick` are inlined here so the
        # common case (nothing to do) costs a few attribute reads instead
        # of four method calls per router.  Behaviour is identical.
        routers = network.routers
        s_off = FsmState.S_OFF
        s_dd = FsmState.S_DD
        s_active = FsmState.S_SB_ACTIVE
        counting = COUNTING_STATES
        none_action = FsmAction.NONE
        for node, state in self.states.items():
            router = routers[node]
            fsm = state.fsm
            bubble = router.bubble
            if (
                bubble is not None
                and bubble.packet is not None
                and now >= bubble.ready_at
            ):
                self._relocate_bubble_resident(network, router, now)
            st = fsm.state
            if st is s_off:
                if router._occupancy:
                    vcs = router.compass_vcs
                    idx = self._next_occupied(vcs, state.watch_index)
                    if idx is not None:
                        state.watch_index = idx
                        state.watched_pid = vcs[idx].packet.pid
                        fsm.on_first_flit()
                        st = fsm.state
            elif st is s_dd:
                vcs = router.compass_vcs
                wi = state.watch_index
                current = vcs[wi] if wi < len(vcs) else None
                if (
                    current is None
                    or current.packet is None
                    or current.packet.pid != state.watched_pid
                ):
                    idx = self._next_occupied(vcs, wi + 1)
                    if idx is not None:
                        state.watch_index = idx
                        state.watched_pid = vcs[idx].packet.pid
                        fsm.on_watched_vc_progress(True)
                    else:
                        state.watched_pid = None
                        fsm.on_watched_vc_progress(False)
                    st = fsm.state
            elif st is s_active:
                self._sb_active_watchdog(network, router, state, now)
                st = fsm.state
            if st in counting:
                # ``fsm.tick()`` unrolled: the no-timeout path is by far
                # the common case and runs every cycle for every armed FSM.
                fsm.count += 1
                if fsm.count >= fsm.threshold:
                    action = fsm._on_timeout()
                    if action is not none_action:
                        self._dispatch(network, router, state, action, now)
        self._collect_stale_seals(network, now)

    def _collect_stale_seals(self, network: "Network", now: int) -> None:
        """Expire IO restrictions whose chain dissolved and enable was lost.

        Robustness extension (DESIGN.md §4): a sealed router whose
        dependence is long gone and that never saw the matching enable
        (dropped to a collision, or its sender aborted) clears itself
        after ``sb_seal_timeout`` idle cycles; otherwise the locked output
        port would throttle unrelated traffic forever.
        """
        if not self._sealed:
            return
        timeout = network.config.sb_seal_timeout
        routers = network.routers
        for node in sorted(self._sealed):
            router = routers.get(node)
            if router is None or not router.is_deadlock:
                self._sealed.discard(node)
                continue
            state = self.states.get(router.node)
            if state is not None and state.fsm.in_recovery():
                continue  # the owner FSM manages its own seal
            age = now - router.io_set_at
            if age < timeout:
                continue
            if router.vc_wants_output(router.io_in_port, router.io_out_port, now):
                router.io_set_at = now  # chain still flowing; keep the seal
                self._emit(
                    network, SEAL_REFRESH, router.node,
                    source=router.source_id, age=age,
                )
                continue
            self._emit(
                network, SEAL_EXPIRE, router.node,
                source=router.source_id, age=age,
            )
            router.clear_io_restriction()

    def _relocate_bubble_resident(
        self, network: "Network", router: "Router", now: int
    ) -> None:
        """Footnote 6: move a stuck bubble resident into a freed normal VC.

        If the packet occupying the static bubble is waiting on some other
        output while a regular VC at the same input port frees up, the
        packet shifts into that VC so the bubble can be re-claimed and the
        recovery hand-shake can continue.
        """
        bubble = router.bubble
        if bubble is None or bubble.packet is None or now < bubble.ready_at:
            return
        resident = bubble.packet
        if router.bubble_active:
            ports = (bubble.port,)
        else:
            # Stale resident: the owning recovery was torn down (bubble
            # timeout / abort) with the resident still wedged, and every
            # future recovery through this router needs the bubble's spare
            # slot back.  The bubble buffer feeds the crossbar directly —
            # which input-port arbiter it competes under is a mux setting —
            # so the resident may be re-tagged to *any* port with a free
            # VC, not just the chain port it arrived on (liveness
            # extension of footnote 6; without it a deadlock web whose
            # only SB router carries a stranded resident is unrecoverable).
            ports = (bubble.port,) + tuple(range(self._local))
        for port in ports:
            for vc in router.input_vcs[port]:
                if (
                    vc.kind == VC_NORMAL
                    and vc.vnet == resident.vnet
                    and vc.is_free(now)
                ):
                    vc.packet = resident
                    vc.ready_at = now + 1
                    bubble.packet = None
                    bubble.free_at = now + 1
                    router.invalidate_vc_cache()
                    self._emit(
                        network, BUBBLE_RELOCATE, router.node, pid=resident.pid
                    )
                    self.on_bubble_drained(network, router, now)
                    return

    @staticmethod
    def _compass_vcs(router: "Router") -> Tuple:
        return router.compass_vcs

    def _update_watch(self, router: "Router", state: _SbRouterState, now: int) -> None:
        fsm = state.fsm
        if fsm.state == FsmState.S_OFF:
            if router._occupancy == 0:
                return  # no packets anywhere, so no compass VC is occupied
            vcs = router.compass_vcs
            idx = self._next_occupied(vcs, state.watch_index)
            if idx is not None:
                state.watch_index = idx
                state.watched_pid = vcs[idx].packet.pid
                fsm.on_first_flit()
            return
        if fsm.state != FsmState.S_DD:
            return
        vcs = router.compass_vcs
        current = vcs[state.watch_index] if state.watch_index < len(vcs) else None
        if (
            current is not None
            and current.packet is not None
            and current.packet.pid == state.watched_pid
        ):
            return  # still waiting on the same packet; keep counting
        idx = self._next_occupied(vcs, state.watch_index + 1)
        if idx is not None:
            state.watch_index = idx
            state.watched_pid = vcs[idx].packet.pid
            fsm.on_watched_vc_progress(True)
        else:
            state.watched_pid = None
            fsm.on_watched_vc_progress(False)

    @staticmethod
    def _next_occupied(vcs: List, start: int) -> Optional[int]:
        n = len(vcs)
        if n == 0:
            return None
        for k in range(n):
            idx = (start + k) % n
            if vcs[idx].packet is not None:
                return idx
        return None

    def _sb_active_watchdog(
        self, network: "Network", router: "Router", state: _SbRouterState, now: int
    ) -> None:
        """Detect a dissolved chain while the (unclaimed) bubble is active."""
        fsm = state.fsm
        if fsm.state != FsmState.S_SB_ACTIVE:
            return
        if router.bubble is None:
            return
        if router.bubble.packet is not None:
            # Claimed but immobile: the resident is itself wedged in a
            # *different* dependency cycle (deadlock web), so the hole this
            # bubble introduced will never circulate back.  S_SB_ACTIVE has
            # no counter, so without a backstop the FSM — and every seal
            # along its chain — would be stuck forever while the true cycle
            # goes untraced.  After the bubble timeout, tear the chain down
            # through the normal enable replay (clearing the path's seals)
            # and resume detection on the web as it now is.  The resident
            # stays in the bubble, which remains switchable until it drains.
            if now - state.bubble_active_since >= network.config.sb_bubble_timeout:
                action = state.fsm.on_bubble_stuck()
                if action != FsmAction.NONE:
                    self._dispatch(network, router, state, action, now)
            return
        # Give up waiting for the chain to claim the bubble when either
        # (a) the chain gained space without it — a free normal VC at the
        # chain's input port means some resident drained independently (a
        # congestion false positive), or (b) nothing has claimed it for
        # ``sb_bubble_timeout`` cycles (the traced chain does not actually
        # feed this router).  Both fall through to the check_probe/enable
        # machinery so the injection restrictions are eventually lifted.
        chain_port_full = all(
            vc.packet is not None for vc in router.input_vcs[fsm.probe_in_port]
        )
        timed_out = now - state.bubble_active_since >= network.config.sb_bubble_timeout
        if chain_port_full and not timed_out:
            return
        router.deactivate_bubble()
        action = fsm.on_bubble_reclaimed()
        if action != FsmAction.NONE:
            self._dispatch(network, router, state, action, now)

    # -- FSM action dispatch --------------------------------------------------

    def _dispatch(
        self,
        network: "Network",
        router: "Router",
        state: _SbRouterState,
        action: FsmAction,
        now: int,
    ) -> None:
        fsm = state.fsm
        node = router.node
        if action == FsmAction.SEND_PROBE:
            out = self._watched_output(router, state, now)
            if out is not None and out != self._local:
                # (ejection is never part of a dependence chain)
                if network.send_special(node, out, make_probe(node, out)):
                    network.stats.probes_sent += 1
            # Liveness clarification of Fig. 5 (DESIGN.md §4): rotate the
            # watch to the next occupied VC after an unsuccessful
            # detection period.  With the pointer frozen on one VC, the
            # highest-id SB router of a deadlocked ring — the only one
            # whose probes are not dropped by the id rule — could probe a
            # non-ring VC forever and the ring would never be traced.
            vcs = self._compass_vcs(router)
            idx = self._next_occupied(vcs, state.watch_index + 1)
            if idx is not None:
                state.watch_index = idx
                state.watched_pid = vcs[idx].packet.pid
            return
        if action == FsmAction.SEND_DISABLE:
            msg = make_path_message(
                MsgType.DISABLE, node, fsm.turn_buffer, fsm.probe_out_port
            )
            if network.send_special(node, fsm.probe_out_port, msg):
                network.stats.disables_sent += 1
            return
        if action == FsmAction.SEND_CHECK_PROBE:
            if not self.use_check_probe:
                # Ablation (paper footnote 7): skip the check_probe
                # speed-up — tear the seal down immediately and let a
                # fresh detection round find the chain again if it still
                # exists.
                fsm.transition(FsmState.S_ENABLE)
                fsm.enable_retries = 0
                fsm.count = 0
                self._dispatch(network, router, state, FsmAction.SEND_ENABLE, now)
                return
            msg = make_path_message(
                MsgType.CHECK_PROBE, node, fsm.turn_buffer, fsm.probe_out_port
            )
            if network.send_special(node, fsm.probe_out_port, msg):
                network.stats.check_probes_sent += 1
            return
        if action == FsmAction.SEND_ENABLE:
            msg = make_path_message(
                MsgType.ENABLE, node, fsm.turn_buffer, fsm.probe_out_port
            )
            if network.send_special(node, fsm.probe_out_port, msg):
                network.stats.enables_sent += 1
            return
        if action == FsmAction.ACTIVATE_BUBBLE:
            router.set_io_restriction(
                fsm.probe_in_port, fsm.probe_out_port, node, now
            )
            router.activate_bubble(fsm.probe_in_port)
            state.bubble_active_since = now
            network.stats.bubble_activations += 1
            self._emit(
                network, SEAL_INSTALL, node,
                source=node,
                in_port=self._port_names[fsm.probe_in_port],
                out_port=self._port_names[fsm.probe_out_port],
            )
            self._emit(
                network, BUBBLE_ACTIVATE, node,
                in_port=self._port_names[fsm.probe_in_port],
            )
            return
        if action == FsmAction.RECOVERY_DONE:
            network.stats.recoveries_completed += 1
            self._emit(network, RECOVERY_DONE, node)
            return
        if action == FsmAction.ABORT_RECOVERY:
            retries = fsm.enable_retries
            if router.is_deadlock:
                self._emit(network, SEAL_CLEAR, node, source=router.source_id)
            router.clear_io_restriction()
            router.deactivate_bubble()
            any_active = any(vc.packet is not None for vc in self._compass_vcs(router))
            fsm.abort_recovery(any_active)
            network.stats.recoveries_aborted += 1
            self._emit(network, RECOVERY_ABORT, node, retries=retries)
            return

    def _watched_output(
        self, router: "Router", state: _SbRouterState, now: int
    ) -> Optional[int]:
        vcs = self._compass_vcs(router)
        if state.watch_index >= len(vcs):
            return None
        packet = vcs[state.watch_index].packet
        if packet is None or packet.pid != state.watched_pid:
            return None
        return router._requested_output(packet)

    # -- bubble reclaim hook ----------------------------------------------------

    def on_bubble_drained(self, network: "Network", router: "Router", now: int) -> None:
        state = self.states.get(router.node)
        if state is None:
            return
        self._emit(network, BUBBLE_DRAIN, router.node)
        action = state.fsm.on_bubble_reclaimed()
        if action != FsmAction.NONE:
            router.deactivate_bubble()
            self._dispatch(network, router, state, action, now)

    # -- special message processing -------------------------------------------

    def process_specials(
        self,
        network: "Network",
        router: "Router",
        messages: Sequence[Tuple[int, SpecialMessage]],
        now: int,
    ) -> None:
        if len(messages) == 1:
            # Fast path for the overwhelmingly common case of a single
            # arrival: no priority sort, no per-output arbitration dict.
            in_port, msg = messages[0]
            for out, fwd in self._handle_one(network, router, in_port, msg, now):
                network.send_special(router.node, out, fwd)
            return
        # Process in priority order (higher class, then higher sender id).
        ordered = sorted(
            messages, key=lambda im: (im[1].priority, im[1].sender), reverse=True
        )
        outgoing: Dict[int, List[SpecialMessage]] = {}
        for in_port, msg in ordered:
            for out, fwd in self._handle_one(network, router, in_port, msg, now):
                outgoing.setdefault(out, []).append(fwd)
        for out, candidates in outgoing.items():
            winner = self._arbitrate_output(router, candidates)
            network.send_special(router.node, out, winner)

    def _handle_one(
        self,
        network: "Network",
        router: "Router",
        in_port: int,
        msg: SpecialMessage,
        now: int,
    ) -> List[Tuple[int, SpecialMessage]]:
        mtype = msg.mtype
        if mtype == MsgType.PROBE:
            return self._handle_probe(network, router, in_port, msg, now)
        if mtype == MsgType.DISABLE:
            return self._handle_disable(network, router, in_port, msg, now)
        if mtype == MsgType.CHECK_PROBE:
            return self._handle_check_probe(network, router, in_port, msg, now)
        return self._handle_enable(network, router, in_port, msg, now)

    @staticmethod
    def _arbitrate_output(
        router: "Router", candidates: List[SpecialMessage]
    ) -> SpecialMessage:
        """Msg_Sel priority for one output port (Section IV-C)."""
        if len(candidates) == 1:
            return candidates[0]
        types = {c.mtype for c in candidates}
        if MsgType.ENABLE in types and MsgType.DISABLE in types:
            # Enable/disable tie: is_deadlock set -> the enable wins.
            keep = MsgType.ENABLE if router.is_deadlock else MsgType.DISABLE
            candidates = [
                c
                for c in candidates
                if c.mtype not in (MsgType.ENABLE, MsgType.DISABLE)
                or c.mtype == keep
            ]
        return max(candidates, key=lambda c: (c.priority, c.sender))

    # -- per-type handlers --------------------------------------------------

    def _handle_probe(
        self,
        network: "Network",
        router: "Router",
        in_port: int,
        msg: SpecialMessage,
        now: int,
    ) -> List[Tuple[int, SpecialMessage]]:
        state = self.states.get(router.node)
        if state is not None:
            if msg.sender == router.node:
                # Own probe back: a dependence cycle is confirmed.  The
                # probe carries the output port it originally left from.
                action = state.fsm.on_probe_returned(
                    msg.turns, in_port, msg.origin_out
                )
                if action != FsmAction.NONE:
                    self._dispatch(network, router, state, action, now)
                return []
            if msg.sender < router.node and state.fsm.state == FsmState.S_DD:
                self._emit(
                    network, SPECIAL_DROP, router.node,
                    mtype=msg.mtype.name, sender=msg.sender, reason="id_race",
                )
                # Lower-id static bubble's probe while this node is itself
                # detecting: this node wins the race (Section IV-B).  When
                # this node is busy with another recovery (or its bubble
                # is pinned by a stuck resident) it cannot resolve the
                # cycle itself, so starving the lower-id sender would
                # wedge the ring — forward instead (liveness refinement,
                # DESIGN.md §4).
                return []
        # Probe Fork Unit: forward only if every VC at the probed input
        # port is occupied; fork to the union of their requested outputs.
        vcs = router.cached_port_vcs(in_port)
        full = bool(vcs)
        for vc in vcs:
            if vc.packet is None:
                full = False
                break
        if not full:
            if network.obs is not None:
                self._emit(
                    network, SPECIAL_DROP, router.node,
                    mtype=msg.mtype.name, sender=msg.sender, reason="port_not_full",
                )
            return []
        if len(msg.turns) >= self._probe_capacity:
            self._emit(
                network, SPECIAL_DROP, router.node,
                mtype=msg.mtype.name, sender=msg.sender, reason="capacity",
            )
            return []
        # Union of requested outputs as a bitmask: deterministic ascending
        # fork order (a set of Port members iterates in *name-hash* order,
        # which varies with PYTHONHASHSEED) and no enum hashing.
        local = self._local
        mask = 0
        for vc in vcs:
            packet = vc.packet
            # _requested_output resolves escape tables, a cached adaptive
            # preference, or the embedded source route as appropriate.
            out = router._requested_output(packet)
            if out != local and out != in_port:  # ejection / u-turn
                mask |= 1 << out
        if not self.fork_probes and mask & (mask - 1):
            # Ablation: no Probe Fork Unit — forward only when the probed
            # port's residents agree on one output (Section IV-B Q&A warns
            # this misses nested dependency cycles).
            return []
        forwards = []
        row = self._enc[in_port]
        mtype = msg.mtype
        sender = msg.sender
        turns = msg.turns
        origin = msg.origin_out
        out = 0
        while mask:
            if mask & 1:
                forwards.append(
                    (
                        out,
                        SpecialMessage(
                            mtype, sender, turns + (row[out],), out, origin
                        ),
                    )
                )
            mask >>= 1
            out += 1
        return forwards

    def _handle_disable(
        self,
        network: "Network",
        router: "Router",
        in_port: int,
        msg: SpecialMessage,
        now: int,
    ) -> List[Tuple[int, SpecialMessage]]:
        state = self.states.get(router.node)
        if msg.sender == router.node:
            if state is None:
                return []
            fsm = state.fsm
            if fsm.state != FsmState.S_DISABLE:
                return []
            # Sender-side dependence re-validation (Section IV-B): the
            # traced chain must still close through this router — the
            # probed input port is fully occupied *and* one of its
            # residents wants the chain's output.  Closure matters: it is
            # what guarantees (bubble flow control's circulation argument)
            # that the packet that claims the bubble is eventually freed
            # by the very slot the bubble introduced, so the bubble is
            # always re-claimed and recovery completes.
            in_vcs = router.input_vcs[fsm.probe_in_port]
            if not in_vcs or any(vc.packet is None for vc in in_vcs):
                self._emit(
                    network, SPECIAL_DROP, router.node,
                    mtype=msg.mtype.name, sender=msg.sender,
                    reason="revalidation_failed",
                )
                return []
            if not router.vc_wants_output(fsm.probe_in_port, fsm.probe_out_port, now):
                self._emit(
                    network, SPECIAL_DROP, router.node,
                    mtype=msg.mtype.name, sender=msg.sender,
                    reason="revalidation_failed",
                )
                return []
            action = fsm.on_disable_returned()
            if action != FsmAction.NONE:
                self._dispatch(network, router, state, action, now)
            return []
        if not msg.turns:
            return []
        out = self._decode(msg.travel, msg.turns[0])
        if not router.vc_wants_output(in_port, out, now):
            # The dependence dissolved: drop, sender times out.
            self._emit(
                network, SPECIAL_DROP, router.node,
                mtype=msg.mtype.name, sender=msg.sender, reason="chain_dissolved",
            )
            return []
        # A router whose single IO-priority buffer is already claimed —
        # sealed into another chain, or an SB node running its own
        # recovery — cannot install this chain's restriction.  The paper
        # drops the disable here; we instead forward it *without sealing*
        # this hop (deviation, DESIGN.md §4): the sender still gets its
        # confirmation and activates the bubble, at the cost of one
        # unsealed hop new traffic may slip through.  Dropping instead
        # livelocks frozen deadlock webs in which every disable must cross
        # some other chain's router.
        busy = router.is_deadlock or (state is not None and state.fsm.in_recovery())
        if not busy:
            router.set_io_restriction(in_port, out, msg.sender, now)
            self._emit(
                network, SEAL_INSTALL, router.node,
                source=msg.sender,
                in_port=self._port_names[in_port],
                out_port=self._port_names[out],
            )
            if state is not None:
                state.fsm.on_foreign_disable()
        return [(out, msg.with_head_stripped(out))]

    def _handle_check_probe(
        self,
        network: "Network",
        router: "Router",
        in_port: int,
        msg: SpecialMessage,
        now: int,
    ) -> List[Tuple[int, SpecialMessage]]:
        state = self.states.get(router.node)
        if msg.sender == router.node:
            if state is None:
                return []
            action = state.fsm.on_check_probe_returned()
            if action != FsmAction.NONE:
                self._dispatch(network, router, state, action, now)
            return []
        # Buffer Dependency Check unit: forward only while a VC still
        # feeds the chain at this hop.  The output port comes from the
        # replayed turn; for hops sealed by this sender it equals the
        # stored IO-priority output (the paper's formulation) — using the
        # turn also covers hops that could not be sealed because their IO
        # buffer was claimed by another chain (see _handle_disable).
        if not msg.turns:
            return []
        out = self._decode(msg.travel, msg.turns[0])
        if not router.vc_wants_output(in_port, out, now):
            self._emit(
                network, SPECIAL_DROP, router.node,
                mtype=msg.mtype.name, sender=msg.sender, reason="chain_dissolved",
            )
            return []
        return [(out, msg.with_head_stripped(out))]

    def _handle_enable(
        self,
        network: "Network",
        router: "Router",
        in_port: int,
        msg: SpecialMessage,
        now: int,
    ) -> List[Tuple[int, SpecialMessage]]:
        state = self.states.get(router.node)
        if msg.sender == router.node:
            if state is None:
                return []
            fsm = state.fsm
            if fsm.state != FsmState.S_ENABLE:
                return []
            if router.is_deadlock:
                self._emit(
                    network, SEAL_CLEAR, router.node, source=router.source_id
                )
            router.clear_io_restriction()
            router.deactivate_bubble()
            any_active = any(vc.packet is not None for vc in self._compass_vcs(router))
            action = fsm.on_enable_returned(any_active)
            if action != FsmAction.NONE:
                self._dispatch(network, router, state, action, now)
            return []
        if not msg.turns:
            return []
        out = self._decode(msg.travel, msg.turns[0])
        # Unlike disables, foreign enables are processed and forwarded even
        # while this SB node runs its own recovery: an enable only touches
        # state whose source-id matches its sender, so it cannot disturb
        # the local recovery, and dropping it would leak stale seals along
        # the other chain (a liveness hole; see DESIGN.md §4).
        if router.source_id == msg.sender:
            self._emit(network, SEAL_CLEAR, router.node, source=msg.sender)
            router.clear_io_restriction()
            if state is not None and not state.fsm.in_recovery():
                any_active = any(
                    vc.packet is not None for vc in self._compass_vcs(router)
                )
                state.fsm.on_foreign_enable(any_active)
        # Forwarded even on a source-id mismatch (Section IV-B).
        return [(out, msg.with_head_stripped(out))]
