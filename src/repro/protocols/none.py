"""Minimal routing with no deadlock protection.

Used by the paper's motivation studies (Fig. 2 and Fig. 3): inject with
unrestricted random-minimal routing and observe whether (and at which
injection rate) the topology deadlocks.
"""

from __future__ import annotations

from repro.protocols.base import DeadlockScheme


class MinimalUnprotected(DeadlockScheme):
    """Random-minimal source routing; deadlocks are allowed to happen."""

    name = "minimal-unprotected"
