"""Job queue: deduplicating, prioritized, retrying — on top of
:func:`repro.parallel.run_jobs`.

The queue accepts *specs* (plain JSON dicts), addresses each by its
content fingerprint, and guarantees three service-grade properties the
raw pool lacks:

* **Dedup** — a spec already in the result store completes instantly
  (cache hit); a spec already pending or running is *coalesced* onto the
  existing record, so N concurrent identical submissions execute exactly
  one simulation;
* **Priorities and backpressure** — higher-priority submissions run
  first (FIFO within a priority); ``max_depth`` bounds the pending set
  and :class:`QueueFull` signals backpressure (the HTTP layer maps it to
  429);
* **Timeouts and retry** — each execution is wrapped with a wall-clock
  timeout (SIGALRM inside pool workers; best-effort on the in-process
  serial fallback, where a thread cannot be preempted) and failed jobs
  are retried with exponential backoff before being marked FAILED.

A scheduler thread drains the ready set in batches through
``run_jobs_batched`` — many cells per worker invocation, so per-process
caches (warm routing tables) amortize across a batch; worker-process
fan-out, ordering, and obs merging stay in one place
(:mod:`repro.parallel.pool`).

:func:`run_campaign` is the batch face of the same machinery: a sweep's
specs become a *manifest* (atomic JSON sidecar); cells already in the
store are skipped, the rest run in waves with results persisted after
every wave, so a killed campaign restarts only its missing cells.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.parallel import Job, resolve_workers, run_jobs_batched
from repro.service.spec import run_sim_spec, spec_identity
from repro.service.store import ResultStore, spec_fingerprint

# Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class QueueFull(RuntimeError):
    """Pending depth hit ``max_depth`` — back off and resubmit."""


class JobTimeout(RuntimeError):
    """A job exceeded its wall-clock budget."""


@dataclass
class JobRecord:
    """Mutable bookkeeping for one submitted spec."""

    job_id: str  # the spec fingerprint — job identity IS content identity
    spec: Dict[str, Any]
    priority: int = 0
    state: str = PENDING
    attempts: int = 0
    cached: bool = False
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    not_before: float = 0.0
    #: ``time.monotonic()`` when the record reached DONE/FAILED (TTL clock).
    finished_at: float = 0.0
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "job_id": self.job_id,
            "fingerprint": self.job_id,
            "status": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "cached": self.cached,
        }
        if self.state == DONE:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


def _guarded_run(
    runner: Callable[[Dict[str, Any]], Dict[str, Any]],
    spec: Dict[str, Any],
    timeout: Optional[float],
) -> Tuple[str, Any]:
    """Run one spec, trapping failure into data (module-level: picklable).

    Returning ``("error", message)`` instead of raising keeps one bad
    cell from aborting the rest of its ``run_jobs`` batch.  The timeout
    uses SIGALRM, which only exists on Unix and only fires in a thread
    that is the process's main thread — true inside pool worker
    processes, not on the serial in-thread fallback (best-effort there).
    """
    use_alarm = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:
        def _on_alarm(signum, frame):
            raise JobTimeout(f"job exceeded {timeout:g}s wall clock")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, float(timeout))
    try:
        return "ok", runner(spec)
    except Exception as exc:  # noqa: BLE001 — converted to a FAILED record
        return "error", f"{type(exc).__name__}: {exc}"
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


class JobQueue:
    """Deduplicating priority queue executing specs through the pool."""

    def __init__(
        self,
        runner: Callable[[Dict[str, Any]], Dict[str, Any]] = run_sim_spec,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        max_depth: int = 256,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.25,
        registry: Optional[MetricsRegistry] = None,
        batch_size: Optional[int] = None,
        record_ttl: Optional[float] = None,
        on_executed: Optional[
            Callable[[Dict[str, Any], Dict[str, Any]], None]
        ] = None,
    ) -> None:
        self.runner = runner
        self.store = store if store is not None else ResultStore()
        self.workers = resolve_workers(workers)
        self.batch_size = batch_size
        self.max_depth = max_depth
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        #: Seconds a DONE/FAILED record survives before pruning (the
        #: result itself lives on in the store; only the in-memory
        #: bookkeeping dict is bounded).  None = keep forever.
        self.record_ttl = record_ttl
        #: Called as ``on_executed(spec, payload)`` after each fresh
        #: execution persists — outside the queue lock, exceptions
        #: swallowed (feedback must never wedge the scheduler).
        self.on_executed = on_executed
        self.registry = registry if registry is not None else self.store.registry
        self._records: Dict[str, JobRecord] = {}
        self._heap: List[Tuple[int, int, str]] = []  # (-priority, seq, job_id)
        self._seq = itertools.count()
        self._lock = threading.Condition()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "JobQueue":
        if self._thread is None:
            self._stopping = False
            self._thread = threading.Thread(
                target=self._loop, name="repro-jobqueue", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        with self._lock:
            self._stopping = True
            self._lock.notify_all()
        if wait and self._thread is not None:
            self._thread.join()
        self._thread = None

    def __enter__(self) -> "JobQueue":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection ---------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs admitted but not yet finished (pending + running)."""
        with self._lock:
            return sum(
                1
                for rec in self._records.values()
                if rec.state in (PENDING, RUNNING)
            )

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        record = self.get(job_id)
        if record is None:
            raise KeyError(job_id)
        record.done_event.wait(timeout)
        return record

    # -- submission ------------------------------------------------------

    def submit(
        self, spec: Dict[str, Any], priority: int = 0
    ) -> Tuple[JobRecord, bool]:
        """Admit ``spec``; returns ``(record, fresh)``.

        ``fresh`` is True only when this call created new pending work;
        a store hit or coalescing onto an in-flight record returns False.
        Raises :class:`QueueFull` past ``max_depth``.
        """
        job_id = spec_fingerprint(spec_identity(spec))
        with self._lock:
            self._prune_locked()
            record = self._records.get(job_id)
            if record is not None and record.state in (PENDING, RUNNING):
                self.registry.counter("service.queue.coalesced").inc()
                return record, False
            if record is not None and record.state == DONE:
                self.registry.counter("service.queue.memo_hit").inc()
                return record, False
            # FAILED records (or unknown ids) fall through to resubmission.
            payload = self.store.get(job_id)
            if payload is not None:
                record = JobRecord(
                    job_id, dict(spec), priority, state=DONE, cached=True,
                    result=payload, finished_at=time.monotonic(),
                )
                record.done_event.set()
                self._records[job_id] = record
                return record, False
            depth = sum(
                1
                for rec in self._records.values()
                if rec.state in (PENDING, RUNNING)
            )
            if depth >= self.max_depth:
                self.registry.counter("service.queue.rejected").inc()
                raise QueueFull(
                    f"queue depth {depth} at max_depth={self.max_depth}"
                )
            record = JobRecord(job_id, dict(spec), priority)
            self._records[job_id] = record
            heapq.heappush(self._heap, (-priority, next(self._seq), job_id))
            self.registry.counter("service.queue.submitted").inc()
            self._lock.notify_all()
            return record, True

    # -- maintenance -----------------------------------------------------

    def _prune_locked(self) -> int:
        """Drop DONE/FAILED records older than ``record_ttl``.

        Caller holds the lock.  Stale heap entries (retries of a pruned
        FAILED record) are already tolerated by ``_pop_ready_batch``.
        """
        if self.record_ttl is None:
            return 0
        cutoff = time.monotonic() - self.record_ttl
        expired = [
            job_id
            for job_id, rec in self._records.items()
            if rec.state in (DONE, FAILED) and rec.finished_at <= cutoff
        ]
        for job_id in expired:
            del self._records[job_id]
        if expired:
            self.registry.counter("service.queue.pruned").inc(len(expired))
        return len(expired)

    def prune(self) -> int:
        """Public face of TTL pruning (also runs on submit and batches)."""
        with self._lock:
            return self._prune_locked()

    # -- scheduler -------------------------------------------------------

    def _pop_ready_batch(self) -> List[JobRecord]:
        """Under the lock: pop up to ``workers`` runnable records.

        Entries whose retry backoff has not elapsed are held back
        (re-pushed); the caller sleeps until the earliest becomes due.
        """
        now = time.monotonic()
        batch: List[JobRecord] = []
        deferred: List[Tuple[int, int, str]] = []
        while self._heap and len(batch) < self.workers:
            entry = heapq.heappop(self._heap)
            record = self._records.get(entry[2])
            if record is None or record.state != PENDING:
                continue  # cancelled/stale entry
            if record.not_before > now:
                deferred.append(entry)
                continue
            record.state = RUNNING
            batch.append(record)
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return batch

    def _loop(self) -> None:
        while True:
            batch: List[JobRecord] = []
            with self._lock:
                while not self._stopping:
                    batch = self._pop_ready_batch()
                    if batch:
                        break
                    # Sleep until the earliest backoff expires (or new work).
                    delays = [
                        self._records[job_id].not_before - time.monotonic()
                        for _, _, job_id in self._heap
                        if job_id in self._records
                    ]
                    wait_for = min(delays) if delays else None
                    self._lock.wait(
                        max(0.01, wait_for) if wait_for is not None else None
                    )
                if self._stopping and not batch:
                    return
            jobs = [
                Job(_guarded_run, (self.runner, record.spec, self.timeout))
                for record in batch
            ]
            outcomes = run_jobs_batched(
                jobs, workers=self.workers, batch_size=self.batch_size
            )
            executed: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
            with self._lock:
                for record, (status, value) in zip(batch, outcomes):
                    if status == "ok":
                        self.store.put(record.job_id, value)
                        record.result = value
                        record.state = DONE
                        record.finished_at = time.monotonic()
                        record.done_event.set()
                        self.registry.counter("service.queue.executed").inc()
                        if self.on_executed is not None:
                            executed.append((record.spec, value))
                        continue
                    record.attempts += 1
                    if record.attempts <= self.retries:
                        record.state = PENDING
                        record.not_before = time.monotonic() + self.backoff * (
                            2 ** (record.attempts - 1)
                        )
                        heapq.heappush(
                            self._heap,
                            (-record.priority, next(self._seq), record.job_id),
                        )
                        self.registry.counter("service.queue.retried").inc()
                    else:
                        record.error = value
                        record.state = FAILED
                        record.finished_at = time.monotonic()
                        record.done_event.set()
                        self.registry.counter("service.queue.failed").inc()
                self._prune_locked()
                self._lock.notify_all()
            # Feedback hooks run outside the lock: a slow (or broken)
            # observer must not stall submissions or the scheduler.
            for spec, payload in executed:
                try:
                    self.on_executed(spec, payload)  # type: ignore[misc]
                except Exception:  # noqa: BLE001 — feedback is best-effort
                    self.registry.counter("service.queue.feedback_error").inc()


# -- campaigns -----------------------------------------------------------


@dataclass
class CampaignReport:
    """Outcome of one (possibly resumed) campaign run."""

    name: str
    total: int
    hits: int
    executed: int
    failed: int
    #: Result payloads in the order the specs were given (None on failure).
    results: List[Optional[Dict[str, Any]]]
    manifest_path: Optional[str] = None

    @property
    def all_hits(self) -> bool:
        return self.hits == self.total


def _write_manifest(path: Path, manifest: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".manifest-", suffix=".tmp")
    with os.fdopen(fd, "w") as handle:
        json.dump(manifest, handle, sort_keys=True, indent=1)
    os.replace(tmp, path)


def run_campaign(
    specs: Sequence[Dict[str, Any]],
    store: Optional[ResultStore] = None,
    runner: Callable[[Dict[str, Any]], Dict[str, Any]] = run_sim_spec,
    workers: Optional[int] = None,
    manifest_path: Optional[os.PathLike] = None,
    name: str = "campaign",
    progress: Optional[Callable[[int, int], None]] = None,
    batch_size: Optional[int] = None,
) -> CampaignReport:
    """Run a spec list through the store, executing only what's missing.

    Identical specs within the list coalesce to one execution (specs
    differing only in execution-only fields, e.g. ``engine``, coalesce
    too).  ``batch_size`` packs that many cells into each worker
    invocation (:func:`repro.parallel.run_jobs_batched`), amortizing
    per-process caches such as routing tables across a batch.  Results
    are persisted wave-by-wave (a wave is ``2 x workers x batch`` cells),
    and the
    manifest — the full cell list plus which fingerprints are done — is
    rewritten atomically after every wave, so a killed campaign resumes
    with only its missing cells.
    """
    store = store if store is not None else ResultStore()
    n_workers = resolve_workers(workers)
    specs = [dict(spec) for spec in specs]
    fps = [spec_fingerprint(spec_identity(spec)) for spec in specs]
    results: List[Optional[Dict[str, Any]]] = [None] * len(specs)

    manifest: Dict[str, Any] = {
        "version": 1,
        "name": name,
        "cells": {fp: spec for fp, spec in zip(fps, specs)},
        "done": [],
    }
    path = Path(manifest_path) if manifest_path is not None else None
    if path is not None and path.exists():
        try:
            previous = json.loads(path.read_text())
            manifest["cells"].update(previous.get("cells", {}))
        except ValueError:
            pass  # torn manifest: the store itself still carries resume state

    hits = 0
    missing: Dict[str, List[int]] = {}
    done_fps: List[str] = []
    for i, fp in enumerate(fps):
        if fp in missing:
            missing[fp].append(i)  # in-batch duplicate: one execution
            continue
        payload = store.get(fp)
        if payload is not None:
            results[i] = payload
            hits += 1
            done_fps.append(fp)
            if progress is not None:
                progress(sum(1 for r in results if r is not None), len(specs))
        else:
            missing[fp] = [i]
    manifest["done"] = sorted(set(done_fps))
    if path is not None:
        _write_manifest(path, manifest)

    executed = 0
    failed = 0
    order = list(missing.items())
    wave_size = max(1, n_workers * 2 * (batch_size or 1))
    for start in range(0, len(order), wave_size):
        wave = order[start : start + wave_size]
        jobs = [Job(_guarded_run, (runner, specs[idxs[0]], None)) for _, idxs in wave]
        outcomes = run_jobs_batched(
            jobs, workers=n_workers, batch_size=batch_size
        )
        for (fp, idxs), (status, value) in zip(wave, outcomes):
            if status == "ok":
                store.put(fp, value)
                executed += 1
                done_fps.append(fp)
                for i in idxs:
                    results[i] = value
            else:
                failed += 1
                store.registry.counter("service.campaign.failed").inc()
            if progress is not None:
                progress(sum(1 for r in results if r is not None), len(specs))
        manifest["done"] = sorted(set(done_fps))
        if path is not None:
            _write_manifest(path, manifest)

    # Duplicate indices that piggybacked on a store hit count as hits too.
    hits += sum(
        len(idxs) - 1 for idxs in missing.values() if len(idxs) > 1
    )
    return CampaignReport(
        name=name,
        total=len(specs),
        hits=hits,
        executed=executed,
        failed=failed,
        results=results,
        manifest_path=str(path) if path is not None else None,
    )
