"""Job queue: deduplicating, prioritized, retrying — on top of
:func:`repro.parallel.run_jobs`.

The queue accepts *specs* (plain JSON dicts), addresses each by its
content fingerprint, and guarantees three service-grade properties the
raw pool lacks:

* **Dedup** — a spec already in the result store completes instantly
  (cache hit); a spec already pending or running is *coalesced* onto the
  existing record, so N concurrent identical submissions execute exactly
  one simulation;
* **Priorities and backpressure** — higher-priority submissions run
  first (FIFO within a priority); ``max_depth`` bounds the pending set
  and :class:`QueueFull` signals backpressure (the HTTP layer maps it to
  429);
* **Timeouts and retry** — each execution is wrapped with a portable
  wall-clock timeout (:func:`repro.parallel.call_with_timeout`: a
  join-with-deadline watchdog that works from any thread on any
  platform, unlike the SIGALRM budget it replaced) and failed jobs are
  retried with exponential backoff before being marked FAILED.
  Timed-out executions increment ``service.queue.timeout``.

A scheduler thread drains the ready set in batches through
``run_jobs_batched`` — many cells per worker invocation, so per-process
caches (warm routing tables) amortize across a batch; worker-process
fan-out, ordering, and obs merging stay in one place
(:mod:`repro.parallel.pool`).

**Remote workers** (the distributed fabric, :mod:`repro.service.fabric`)
pull from the same queue instead of the local pool: :meth:`JobQueue.claim`
hands PENDING records to a named worker under a *lease*,
:meth:`JobQueue.heartbeat` extends the lease while the worker computes,
and :meth:`JobQueue.complete` reports the outcome.  Delivery is
at-least-once: a worker that dies mid-job simply stops heartbeating, the
lease expires, and the record is requeued for the next claimant; because
job identity *is* content identity (the spec fingerprint), a late
duplicate completion is detected and coalesced — exactly one stored
result, no matter how many workers raced.  ``local_exec=False`` turns
off the local execution pool entirely (the scheduler thread then only
sweeps expired leases and TTL-prunes), which is how a fabric front end
runs when all simulation happens on remote workers.

:func:`run_campaign` is the batch face of the same machinery: a sweep's
specs become a *manifest* (atomic JSON sidecar); cells already in the
store are skipped, the rest run in waves with results persisted after
every wave, so a killed campaign restarts only its missing cells.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    CallTimeout,
    Job,
    call_with_timeout,
    resolve_workers,
    run_jobs_batched,
)
from repro.service.spec import run_sim_spec, spec_identity
from repro.service.store import ResultStore, spec_fingerprint

# Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class QueueFull(RuntimeError):
    """Pending depth hit ``max_depth`` — back off and resubmit."""


class JobTimeout(RuntimeError):
    """A job exceeded its wall-clock budget."""


#: Error-message prefix marking a timeout outcome.  ``_guarded_run``
#: outcomes cross process (and, for remote workers, HTTP) boundaries as
#: plain strings, so the queue recognizes timeouts by prefix when it
#: bumps the ``service.queue.timeout`` counter.
TIMEOUT_ERROR_PREFIX = "JobTimeout"

#: Default seconds a claimed job's lease lasts without a heartbeat.
DEFAULT_LEASE_TTL = 30.0


@dataclass
class JobRecord:
    """Mutable bookkeeping for one submitted spec."""

    job_id: str  # the spec fingerprint — job identity IS content identity
    spec: Dict[str, Any]
    priority: int = 0
    state: str = PENDING
    attempts: int = 0
    cached: bool = False
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    not_before: float = 0.0
    #: ``time.monotonic()`` when the record reached DONE/FAILED (TTL clock).
    finished_at: float = 0.0
    #: Remote execution bookkeeping: the claiming worker's id and the
    #: ``time.monotonic()`` deadline after which the claim is forfeit.
    #: ``worker=None`` means the record runs (or ran) on the local pool.
    worker: Optional[str] = None
    lease_expiry: float = 0.0
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "job_id": self.job_id,
            "fingerprint": self.job_id,
            "status": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "cached": self.cached,
        }
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.state == DONE:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


def _guarded_run(
    runner: Callable[[Dict[str, Any]], Dict[str, Any]],
    spec: Dict[str, Any],
    timeout: Optional[float],
) -> Tuple[str, Any]:
    """Run one spec, trapping failure into data (module-level: picklable).

    Returning ``("error", message)`` instead of raising keeps one bad
    cell from aborting the rest of its ``run_jobs`` batch.  The timeout
    is :func:`repro.parallel.call_with_timeout` — a portable
    join-with-deadline watchdog — which, unlike the SIGALRM budget it
    replaced, fires identically inside pool worker processes, on the
    serial in-thread fallback, under remote fabric workers, and in
    asyncio executor threads (SIGALRM is Unix-only and silent outside
    the main thread).  Timeout outcomes are reported with the
    :data:`TIMEOUT_ERROR_PREFIX` so the queue layer can count them.
    """
    try:
        return "ok", call_with_timeout(runner, (spec,), timeout=timeout)
    except CallTimeout:
        return "error", (
            f"{TIMEOUT_ERROR_PREFIX}: job exceeded {timeout:g}s wall clock"
        )
    except Exception as exc:  # noqa: BLE001 — converted to a FAILED record
        return "error", f"{type(exc).__name__}: {exc}"


class JobQueue:
    """Deduplicating priority queue executing specs through the pool."""

    def __init__(
        self,
        runner: Callable[[Dict[str, Any]], Dict[str, Any]] = run_sim_spec,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        max_depth: int = 256,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.25,
        registry: Optional[MetricsRegistry] = None,
        batch_size: Optional[int] = None,
        record_ttl: Optional[float] = None,
        on_executed: Optional[
            Callable[[Dict[str, Any], Dict[str, Any]], None]
        ] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        local_exec: bool = True,
    ) -> None:
        self.runner = runner
        self.store = store if store is not None else ResultStore()
        self.workers = resolve_workers(workers)
        self.batch_size = batch_size
        self.max_depth = max_depth
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        #: Seconds a remote claim survives without a heartbeat before the
        #: job is requeued for the next claimant (at-least-once delivery).
        self.lease_ttl = max(0.5, float(lease_ttl))
        #: When False, the scheduler thread never executes jobs on the
        #: local pool — PENDING records wait for remote workers to
        #: :meth:`claim` them (the thread still sweeps expired leases and
        #: TTL-prunes finished records).
        self.local_exec = local_exec
        #: Seconds a DONE/FAILED record survives before pruning (the
        #: result itself lives on in the store; only the in-memory
        #: bookkeeping dict is bounded).  None = keep forever.
        self.record_ttl = record_ttl
        #: Called as ``on_executed(spec, payload)`` after each fresh
        #: execution persists — outside the queue lock, exceptions
        #: swallowed (feedback must never wedge the scheduler).
        self.on_executed = on_executed
        self.registry = registry if registry is not None else self.store.registry
        self._records: Dict[str, JobRecord] = {}
        self._heap: List[Tuple[int, int, str]] = []  # (-priority, seq, job_id)
        self._seq = itertools.count()
        self._lock = threading.Condition()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "JobQueue":
        if self._thread is None:
            self._stopping = False
            self._thread = threading.Thread(
                target=self._loop, name="repro-jobqueue", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        with self._lock:
            self._stopping = True
            self._lock.notify_all()
        if wait and self._thread is not None:
            self._thread.join()
        self._thread = None

    def __enter__(self) -> "JobQueue":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection ---------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs admitted but not yet finished (pending + running)."""
        with self._lock:
            return sum(
                1
                for rec in self._records.values()
                if rec.state in (PENDING, RUNNING)
            )

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        record = self.get(job_id)
        if record is None:
            raise KeyError(job_id)
        record.done_event.wait(timeout)
        return record

    # -- submission ------------------------------------------------------

    def submit(
        self, spec: Dict[str, Any], priority: int = 0
    ) -> Tuple[JobRecord, bool]:
        """Admit ``spec``; returns ``(record, fresh)``.

        ``fresh`` is True only when this call created new pending work;
        a store hit or coalescing onto an in-flight record returns False.
        Raises :class:`QueueFull` past ``max_depth``.
        """
        job_id = spec_fingerprint(spec_identity(spec))
        with self._lock:
            self._prune_locked()
            record = self._records.get(job_id)
            if record is not None and record.state in (PENDING, RUNNING):
                self.registry.counter("service.queue.coalesced").inc()
                return record, False
            if record is not None and record.state == DONE:
                self.registry.counter("service.queue.memo_hit").inc()
                return record, False
            # FAILED records (or unknown ids) fall through to resubmission.
            payload = self.store.get(job_id)
            if payload is not None:
                record = JobRecord(
                    job_id, dict(spec), priority, state=DONE, cached=True,
                    result=payload, finished_at=time.monotonic(),
                )
                record.done_event.set()
                self._records[job_id] = record
                return record, False
            depth = sum(
                1
                for rec in self._records.values()
                if rec.state in (PENDING, RUNNING)
            )
            if depth >= self.max_depth:
                self.registry.counter("service.queue.rejected").inc()
                raise QueueFull(
                    f"queue depth {depth} at max_depth={self.max_depth}"
                )
            record = JobRecord(job_id, dict(spec), priority)
            self._records[job_id] = record
            heapq.heappush(self._heap, (-priority, next(self._seq), job_id))
            self.registry.counter("service.queue.submitted").inc()
            self._lock.notify_all()
            return record, True

    # -- remote workers (fabric lease protocol) --------------------------

    def claim(self, worker_id: str, max_jobs: int = 1) -> List[JobRecord]:
        """Hand up to ``max_jobs`` PENDING records to ``worker_id``.

        Claimed records move to RUNNING under a lease of ``lease_ttl``
        seconds; the worker must :meth:`heartbeat` to keep it, and
        :meth:`complete` to settle it.  A record is handed to exactly one
        claimant at a time — concurrent claims of the same fingerprint
        are impossible by construction (dedup happens at submit, and a
        record leaves the ready heap when claimed) — but a lease that
        expires puts the record back, so delivery is at-least-once.
        """
        now = time.monotonic()
        claimed: List[JobRecord] = []
        deferred: List[Tuple[int, int, str]] = []
        with self._lock:
            self._requeue_expired_locked()
            while self._heap and len(claimed) < max(1, max_jobs):
                entry = heapq.heappop(self._heap)
                record = self._records.get(entry[2])
                if record is None or record.state != PENDING:
                    continue  # cancelled/stale entry
                if record.not_before > now:
                    deferred.append(entry)
                    continue
                record.state = RUNNING
                record.worker = worker_id
                record.lease_expiry = now + self.lease_ttl
                claimed.append(record)
            for entry in deferred:
                heapq.heappush(self._heap, entry)
            if claimed:
                self.registry.counter("service.queue.claimed").inc(len(claimed))
        return claimed

    def heartbeat(self, job_id: str, worker_id: str) -> bool:
        """Extend ``worker_id``'s lease on ``job_id``; False if forfeit.

        A False return tells the worker its lease is gone (expired and
        requeued, completed elsewhere, or never claimed by it) — the
        worker should abandon the execution; a late duplicate completion
        is harmless either way.
        """
        with self._lock:
            record = self._records.get(job_id)
            if (
                record is None
                or record.state != RUNNING
                or record.worker != worker_id
            ):
                return False
            record.lease_expiry = time.monotonic() + self.lease_ttl
            return True

    def complete(
        self,
        job_id: str,
        worker_id: str,
        ok: bool,
        value: Any,
    ) -> str:
        """Settle a claimed job with the worker's outcome.

        Idempotent by content identity: completing an already-DONE
        record is a no-op (``"duplicate"``), and a late completion from
        a worker whose lease expired is *accepted* — the payload is a
        pure function of the fingerprint, so whoever finishes first wins
        and everyone else coalesces.  Completion of a record the queue
        no longer tracks (TTL-pruned) still persists a successful
        payload to the store (``"stored"``): at-least-once delivery must
        never drop a computed result.

        Returns one of ``"done"``, ``"duplicate"``, ``"stored"``,
        ``"retry"``, ``"failed"``, ``"unknown"``.
        """
        executed: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
        try:
            with self._lock:
                record = self._records.get(job_id)
                if record is None:
                    if ok:
                        self.store.put(job_id, value)
                        self.registry.counter("service.queue.orphan_stored").inc()
                        return "stored"
                    return "unknown"
                if record.state == DONE:
                    self.registry.counter("service.queue.duplicate_completion").inc()
                    return "duplicate"
                if record.state == RUNNING and record.worker != worker_id:
                    # Lease moved on but this worker finished anyway: a
                    # valid result is a valid result — take it.
                    self.registry.counter("service.queue.late_completion").inc()
                if ok:
                    self._finish_ok_locked(record, value)
                    if self.on_executed is not None:
                        executed.append((record.spec, value))
                    self._lock.notify_all()
                    return "done"
                retried = self._record_failure_locked(record, str(value))
                self._lock.notify_all()
                return "retry" if retried else "failed"
        finally:
            for spec, payload in executed:
                try:
                    self.on_executed(spec, payload)  # type: ignore[misc]
                except Exception:  # noqa: BLE001 — feedback is best-effort
                    self.registry.counter("service.queue.feedback_error").inc()

    def requeue_expired(self) -> int:
        """Requeue RUNNING records whose lease lapsed; returns the count."""
        with self._lock:
            return self._requeue_expired_locked()

    def _requeue_expired_locked(self) -> int:
        """Caller holds the lock.  Only leased (remote) records expire —
        local pool executions have no lease and settle in ``_loop``."""
        now = time.monotonic()
        expired = [
            rec
            for rec in self._records.values()
            if rec.state == RUNNING
            and rec.worker is not None
            and rec.lease_expiry <= now
        ]
        for record in expired:
            record.state = PENDING
            record.worker = None
            record.lease_expiry = 0.0
            heapq.heappush(
                self._heap, (-record.priority, next(self._seq), record.job_id)
            )
        if expired:
            self.registry.counter("service.queue.lease_expired").inc(len(expired))
            self._lock.notify_all()
        return len(expired)

    # -- outcome recording (shared by _loop and complete) ----------------

    def _finish_ok_locked(self, record: JobRecord, payload: Dict[str, Any]) -> None:
        self.store.put(record.job_id, payload)
        record.result = payload
        record.state = DONE
        record.worker = None
        record.finished_at = time.monotonic()
        record.done_event.set()
        self.registry.counter("service.queue.executed").inc()

    def _record_failure_locked(self, record: JobRecord, message: str) -> bool:
        """Retry-or-fail a record; True when it was requeued for retry."""
        if message.startswith(TIMEOUT_ERROR_PREFIX):
            self.registry.counter("service.queue.timeout").inc()
        record.attempts += 1
        record.worker = None
        if record.attempts <= self.retries:
            record.state = PENDING
            record.not_before = time.monotonic() + self.backoff * (
                2 ** (record.attempts - 1)
            )
            heapq.heappush(
                self._heap,
                (-record.priority, next(self._seq), record.job_id),
            )
            self.registry.counter("service.queue.retried").inc()
            return True
        record.error = message
        record.state = FAILED
        record.finished_at = time.monotonic()
        record.done_event.set()
        self.registry.counter("service.queue.failed").inc()
        return False

    # -- maintenance -----------------------------------------------------

    def _prune_locked(self) -> int:
        """Drop DONE/FAILED records older than ``record_ttl``.

        Caller holds the lock.  Stale heap entries (retries of a pruned
        FAILED record) are already tolerated by ``_pop_ready_batch``.
        """
        if self.record_ttl is None:
            return 0
        cutoff = time.monotonic() - self.record_ttl
        expired = [
            job_id
            for job_id, rec in self._records.items()
            if rec.state in (DONE, FAILED) and rec.finished_at <= cutoff
        ]
        for job_id in expired:
            del self._records[job_id]
        if expired:
            self.registry.counter("service.queue.pruned").inc(len(expired))
        return len(expired)

    def prune(self) -> int:
        """Public face of TTL pruning (also runs on submit and batches)."""
        with self._lock:
            return self._prune_locked()

    # -- scheduler -------------------------------------------------------

    def _pop_ready_batch(self) -> List[JobRecord]:
        """Under the lock: pop up to ``workers`` runnable records.

        Entries whose retry backoff has not elapsed are held back
        (re-pushed); the caller sleeps until the earliest becomes due.
        """
        now = time.monotonic()
        batch: List[JobRecord] = []
        deferred: List[Tuple[int, int, str]] = []
        while self._heap and len(batch) < self.workers:
            entry = heapq.heappop(self._heap)
            record = self._records.get(entry[2])
            if record is None or record.state != PENDING:
                continue  # cancelled/stale entry
            if record.not_before > now:
                deferred.append(entry)
                continue
            record.state = RUNNING
            batch.append(record)
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return batch

    def _loop(self) -> None:
        while True:
            batch: List[JobRecord] = []
            with self._lock:
                while not self._stopping:
                    self._requeue_expired_locked()
                    if self.local_exec:
                        batch = self._pop_ready_batch()
                        if batch:
                            break
                    # Sleep until the earliest backoff or outstanding
                    # lease expires (or new work arrives).  With
                    # local_exec off this thread is purely a janitor:
                    # lease sweeps and TTL pruning.
                    now = time.monotonic()
                    delays = [
                        self._records[job_id].not_before - now
                        for _, _, job_id in self._heap
                        if job_id in self._records and self.local_exec
                    ]
                    delays.extend(
                        rec.lease_expiry - now
                        for rec in self._records.values()
                        if rec.state == RUNNING and rec.worker is not None
                    )
                    wait_for = min(delays) if delays else None
                    self._prune_locked()
                    self._lock.wait(
                        max(0.01, wait_for) if wait_for is not None else None
                    )
                if self._stopping and not batch:
                    return
            jobs = [
                Job(_guarded_run, (self.runner, record.spec, self.timeout))
                for record in batch
            ]
            outcomes = run_jobs_batched(
                jobs, workers=self.workers, batch_size=self.batch_size
            )
            executed: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
            with self._lock:
                for record, (status, value) in zip(batch, outcomes):
                    if record.state == DONE:
                        # A remote worker beat the local pool to it
                        # (possible after a lease expiry requeued the
                        # record into local execution): keep the first
                        # settlement, coalesce this one.
                        self.registry.counter(
                            "service.queue.duplicate_completion"
                        ).inc()
                        continue
                    if status == "ok":
                        self._finish_ok_locked(record, value)
                        if self.on_executed is not None:
                            executed.append((record.spec, value))
                        continue
                    self._record_failure_locked(record, value)
                self._prune_locked()
                self._lock.notify_all()
            # Feedback hooks run outside the lock: a slow (or broken)
            # observer must not stall submissions or the scheduler.
            for spec, payload in executed:
                try:
                    self.on_executed(spec, payload)  # type: ignore[misc]
                except Exception:  # noqa: BLE001 — feedback is best-effort
                    self.registry.counter("service.queue.feedback_error").inc()


# -- campaigns -----------------------------------------------------------


@dataclass
class CampaignReport:
    """Outcome of one (possibly resumed) campaign run."""

    name: str
    total: int
    hits: int
    executed: int
    failed: int
    #: Result payloads in the order the specs were given (None on failure).
    results: List[Optional[Dict[str, Any]]]
    manifest_path: Optional[str] = None

    @property
    def all_hits(self) -> bool:
        return self.hits == self.total


def _write_manifest(path: Path, manifest: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".manifest-", suffix=".tmp")
    with os.fdopen(fd, "w") as handle:
        json.dump(manifest, handle, sort_keys=True, indent=1)
    os.replace(tmp, path)


def run_campaign(
    specs: Sequence[Dict[str, Any]],
    store: Optional[ResultStore] = None,
    runner: Callable[[Dict[str, Any]], Dict[str, Any]] = run_sim_spec,
    workers: Optional[int] = None,
    manifest_path: Optional[os.PathLike] = None,
    name: str = "campaign",
    progress: Optional[Callable[[int, int], None]] = None,
    batch_size: Optional[int] = None,
) -> CampaignReport:
    """Run a spec list through the store, executing only what's missing.

    Identical specs within the list coalesce to one execution (specs
    differing only in execution-only fields, e.g. ``engine``, coalesce
    too).  ``batch_size`` packs that many cells into each worker
    invocation (:func:`repro.parallel.run_jobs_batched`), amortizing
    per-process caches such as routing tables across a batch.  Results
    are persisted wave-by-wave (a wave is ``2 x workers x batch`` cells),
    and the
    manifest — the full cell list plus which fingerprints are done — is
    rewritten atomically after every wave, so a killed campaign resumes
    with only its missing cells.
    """
    store = store if store is not None else ResultStore()
    n_workers = resolve_workers(workers)
    specs = [dict(spec) for spec in specs]
    fps = [spec_fingerprint(spec_identity(spec)) for spec in specs]
    results: List[Optional[Dict[str, Any]]] = [None] * len(specs)

    manifest: Dict[str, Any] = {
        "version": 1,
        "name": name,
        "cells": {fp: spec for fp, spec in zip(fps, specs)},
        "done": [],
    }
    path = Path(manifest_path) if manifest_path is not None else None
    if path is not None and path.exists():
        try:
            previous = json.loads(path.read_text())
            manifest["cells"].update(previous.get("cells", {}))
        except ValueError:
            pass  # torn manifest: the store itself still carries resume state

    hits = 0
    missing: Dict[str, List[int]] = {}
    done_fps: List[str] = []
    for i, fp in enumerate(fps):
        if fp in missing:
            missing[fp].append(i)  # in-batch duplicate: one execution
            continue
        payload = store.get(fp)
        if payload is not None:
            results[i] = payload
            hits += 1
            done_fps.append(fp)
            if progress is not None:
                progress(sum(1 for r in results if r is not None), len(specs))
        else:
            missing[fp] = [i]
    manifest["done"] = sorted(set(done_fps))
    if path is not None:
        _write_manifest(path, manifest)

    executed = 0
    failed = 0
    order = list(missing.items())
    wave_size = max(1, n_workers * 2 * (batch_size or 1))
    for start in range(0, len(order), wave_size):
        wave = order[start : start + wave_size]
        jobs = [Job(_guarded_run, (runner, specs[idxs[0]], None)) for _, idxs in wave]
        outcomes = run_jobs_batched(
            jobs, workers=n_workers, batch_size=batch_size
        )
        for (fp, idxs), (status, value) in zip(wave, outcomes):
            if status == "ok":
                store.put(fp, value)
                executed += 1
                done_fps.append(fp)
                for i in idxs:
                    results[i] = value
            else:
                failed += 1
                store.registry.counter("service.campaign.failed").inc()
            if progress is not None:
                progress(sum(1 for r in results if r is not None), len(specs))
        manifest["done"] = sorted(set(done_fps))
        if path is not None:
            _write_manifest(path, manifest)

    # Duplicate indices that piggybacked on a store hit count as hits too.
    hits += sum(
        len(idxs) - 1 for idxs in missing.values() if len(idxs) > 1
    )
    return CampaignReport(
        name=name,
        total=len(specs),
        hits=hits,
        executed=executed,
        failed=failed,
        results=results,
        manifest_path=str(path) if path is not None else None,
    )
