"""HTTP campaign server: simulations as a memoized service.

Pure stdlib (:class:`http.server.ThreadingHTTPServer`) — no new
dependencies.  The server owns one :class:`~repro.service.store.ResultStore`
and one :class:`~repro.service.queue.JobQueue`; every request thread
talks to them under the queue's lock, so concurrent duplicate
submissions coalesce to a single executed simulation.

Endpoints:

* ``POST /jobs`` — body is a :class:`~repro.service.spec.SimSpec` JSON
  dict (optional ``"priority"`` rides alongside).  Responds ``200`` with
  the full payload on a cache hit, ``202`` with the job id otherwise,
  ``400`` on a malformed spec, and ``429`` (+ ``Retry-After``) when the
  queue is at ``max_depth`` — clients are expected to back off.
* ``GET /jobs/<id>`` — job status; includes the result once done.
* ``GET /results/<fingerprint>`` — the stored blob, or 404.
* ``GET /surrogate`` — calibration status of the surrogate fast lane.
* ``GET /metrics`` — text exposition of the merged metrics registry
  (store hit/miss, queue counters, live depth/records/blob gauges).
* ``GET /healthz`` — liveness: ``{"ok": true, ...}``.

The surrogate fast lane rides ``POST /jobs``: a spec with ``mode``
``surrogate``/``auto`` may be answered synchronously (``200`` with a
``surrogate: true`` marker and an explicit error bound) without touching
the queue or the exact result store; ``auto`` submissions whose
uncertainty exceeds the gate threshold escalate into the normal queue
path, and each escalated execution feeds the calibration table via the
queue's ``on_executed`` hook.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import repro
from repro.obs.metrics import MetricsRegistry, text_exposition
from repro.service.queue import DONE, JobQueue, QueueFull
from repro.service.spec import SimSpec, run_sim_spec, spec_identity
from repro.service.store import ResultStore, spec_fingerprint

#: Default bind address of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the owning :class:`ServiceServer`."""

    server_version = f"repro-service/{repro.__version__}"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass carries the service reference.
    @property
    def service(self) -> "ServiceServer":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.service.quiet:
            super().log_message(format, *args)

    # -- plumbing --------------------------------------------------------

    def _send_json(
        self, status: int, payload: Dict[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("empty request body")
        raw = self.rfile.read(length)
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routes ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — http.server contract
        if self.path.rstrip("/") != "/jobs":
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        try:
            body = self._read_json_body()
            priority = int(body.pop("priority", 0))
            spec = SimSpec.from_dict(body)
        except (ValueError, TypeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        if spec.mode in ("surrogate", "auto") and self.service.oracle is not None:
            try:
                payload = self.service.oracle.answer(spec)
            except (ValueError, KeyError) as exc:
                # Forced surrogate mode on a spec the model cannot see
                # (unknown pattern/topology) is a client error, not an
                # excuse to silently burn simulation time.
                self._send_json(400, {"error": f"surrogate cannot model spec: {exc}"})
                return
            if payload is not None:
                self._send_json(
                    200,
                    {
                        "status": "done",
                        "cached": False,
                        "surrogate": True,
                        "job_id": fingerprint_for(spec),
                        "fingerprint": fingerprint_for(spec),
                        "result": payload,
                    },
                )
                return
            # Gate said "too uncertain": fall through and simulate.
        try:
            record, _fresh = self.service.queue.submit(spec.to_dict(), priority)
        except QueueFull as exc:
            self._send_json(
                429,
                {"error": str(exc), "retry_after": 1},
                headers={"Retry-After": "1"},
            )
            return
        if record.state == DONE:
            self._send_json(
                200,
                {
                    "status": "done",
                    "cached": True,
                    "job_id": record.job_id,
                    "fingerprint": record.job_id,
                    "result": record.result,
                },
            )
            return
        self._send_json(
            202,
            {
                "status": record.state,
                "cached": False,
                "job_id": record.job_id,
                "fingerprint": record.job_id,
            },
        )

    def do_GET(self) -> None:  # noqa: N802 — http.server contract
        path = self.path.rstrip("/")
        if path == "/healthz":
            self._send_json(
                200, {"ok": True, "version": repro.__version__, "depth": self.service.queue.depth}
            )
        elif path == "/metrics":
            self._send_text(200, self.service.render_metrics())
        elif path == "/surrogate":
            if self.service.oracle is None:
                self._send_json(404, {"error": "surrogate lane disabled"})
            else:
                self._send_json(200, self.service.oracle.status())
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            record = self.service.queue.get(job_id)
            if record is None:
                self._send_json(404, {"error": f"unknown job {job_id!r}"})
            else:
                self._send_json(200, record.to_dict())
        elif path.startswith("/results/"):
            fp = path[len("/results/"):]
            try:
                payload = self.service.store.get(fp)
            except ValueError:
                payload = None
            if payload is None:
                self._send_json(404, {"error": f"no result for {fp!r}"})
            else:
                self._send_json(200, payload)
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})


class _Httpd(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ServiceServer:
    """One store + one queue + one threaded HTTP front end."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        store: Optional[ResultStore] = None,
        runner=run_sim_spec,
        workers: Optional[int] = None,
        max_depth: int = 256,
        timeout: Optional[float] = None,
        retries: int = 1,
        quiet: bool = False,
        record_ttl: Optional[float] = None,
        surrogate: bool = True,
    ) -> None:
        self.registry = MetricsRegistry()
        self.store = store if store is not None else ResultStore(registry=self.registry)
        self.store.registry = self.registry
        self.oracle = None
        if surrogate:
            from repro.surrogate import SurrogateOracle

            self.oracle = SurrogateOracle(store=self.store, registry=self.registry)
        self.queue = JobQueue(
            runner=runner,
            store=self.store,
            workers=workers,
            max_depth=max_depth,
            timeout=timeout,
            retries=retries,
            registry=self.registry,
            record_ttl=record_ttl,
            on_executed=self.oracle.observe if self.oracle is not None else None,
        )
        self.quiet = quiet
        self.httpd = _Httpd((host, port), ServiceHandler)
        self.httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- info ------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def render_metrics(self) -> str:
        self.registry.gauge("service.queue.depth").set(self.queue.depth)
        self.registry.gauge("service.queue.records").set(len(self.queue._records))
        self.registry.gauge("service.store.blobs").set(len(self.store))
        return text_exposition(self.registry)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ServiceServer":
        """Start queue + HTTP threads; returns immediately (for tests)."""
        self.queue.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever, name="repro-httpd", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking form used by ``repro serve``."""
        self.queue.start()
        try:
            self.httpd.serve_forever()
        finally:
            self.queue.stop(wait=False)

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.queue.stop(wait=False)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def fingerprint_for(spec: SimSpec) -> str:
    """Fingerprint a spec exactly as ``POST /jobs`` would.

    Execution-only fields (``engine``, ``mode``) are excluded, so
    submissions that differ only in how they are answered address the
    same stored result.
    """
    return spec_fingerprint(spec_identity(spec.to_dict()))
