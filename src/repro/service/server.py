"""HTTP campaign server: simulations as a memoized service.

Pure stdlib — no new dependencies.  The routing, submission, surrogate
fast-lane, and worker-protocol logic live in :class:`ServiceCore`, which
owns one :class:`~repro.service.store.ResultStore` (or a
:class:`~repro.service.fabric.shard.ShardedResultStore`) and one
:class:`~repro.service.queue.JobQueue`.  Two front ends drive the same
core:

* :class:`ServiceServer` — the classic thread-per-connection
  :class:`http.server.ThreadingHTTPServer` face (``repro serve``);
* :class:`repro.service.fabric.asyncserver.AsyncServiceServer` — the
  asyncio front end (``repro serve --backend async``) that lifts the
  thread-per-connection ceiling and adds graceful drain + per-endpoint
  latency histograms.

Endpoints (both front ends):

* ``POST /jobs`` — body is a :class:`~repro.service.spec.SimSpec` JSON
  dict (optional ``"priority"`` rides alongside).  Responds ``200`` with
  the full payload on a cache hit, ``202`` with the job id otherwise,
  ``400`` on a malformed spec, and ``429`` (+ ``Retry-After``) when the
  queue is at ``max_depth`` — clients are expected to back off.
* ``GET /jobs/claim?worker=ID&max=N&wait=S`` — remote-worker long poll:
  lease up to N pending jobs to worker ID, waiting up to S seconds for
  work before returning an empty claim.
* ``POST /jobs/<id>/heartbeat`` — extend a worker's lease
  (``{"worker": ID}``); ``ok: false`` tells the worker its lease is
  forfeit.
* ``POST /jobs/<id>/complete`` — report a worker's outcome
  (``{"worker": ID, "ok": bool, "result"|"error": ...}``); idempotent
  (duplicate completions coalesce — the response says which happened).
* ``GET /jobs/<id>`` — job status; includes the result once done.
* ``GET /results/<fingerprint>`` — the stored blob, or 404.
* ``GET /surrogate`` — calibration status of the surrogate fast lane.
* ``GET /metrics`` — text exposition of the merged metrics registry
  (store/queue/shard counters, per-endpoint latency histograms).
* ``GET /healthz`` — ``200 {"ok": true}`` only while the server is fully
  serviceable; ``503`` with the reason while draining or while a storage
  shard is unreachable, so load balancers (and the soak test) can key
  off the status code alone.

The surrogate fast lane rides ``POST /jobs``: a spec with ``mode``
``surrogate``/``auto`` may be answered synchronously (``200`` with a
``surrogate: true`` marker and an explicit error bound) without touching
the queue or the exact result store; ``auto`` submissions whose
uncertainty exceeds the gate threshold escalate into the normal queue
path, and each escalated execution — local *or* reported by a remote
worker — feeds the calibration table via the queue's ``on_executed``
hook.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import repro
from repro.obs.metrics import MetricsRegistry, text_exposition
from repro.service.queue import DEFAULT_LEASE_TTL, DONE, JobQueue, QueueFull
from repro.service.spec import SimSpec, run_sim_spec, spec_identity
from repro.service.store import ResultStore, spec_fingerprint

#: Default bind address of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: Upper bucket edges (milliseconds) for per-endpoint latency histograms.
HTTP_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.5, 1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000,
)

#: Interval between claim re-checks inside a long poll.
CLAIM_POLL_INTERVAL = 0.05
#: Hard ceiling on a single long poll (clients re-poll; a cap keeps
#: drain fast and broken clients bounded).
CLAIM_MAX_WAIT = 30.0


@dataclass
class Response:
    """One handler outcome, front-end agnostic."""

    status: int
    payload: Optional[Dict[str, Any]] = None
    text: Optional[str] = None
    headers: Dict[str, str] = field(default_factory=dict)

    def body_bytes(self) -> Tuple[bytes, str]:
        if self.text is not None:
            return self.text.encode(), "text/plain; charset=utf-8"
        return (
            json.dumps(self.payload, sort_keys=True).encode(),
            "application/json",
        )


def endpoint_label(method: str, path: str) -> str:
    """Normalize a request to a bounded histogram label.

    Dynamic path segments (job ids, fingerprints) collapse to one label
    per endpoint so the metric space stays finite.
    """
    path = path.rstrip("/") or "/"
    if path == "/jobs" and method == "POST":
        return "jobs_submit"
    if path == "/jobs/claim":
        return "jobs_claim"
    if path.startswith("/jobs/") and path.endswith("/heartbeat"):
        return "jobs_heartbeat"
    if path.startswith("/jobs/") and path.endswith("/complete"):
        return "jobs_complete"
    if path.startswith("/jobs/"):
        return "jobs_get"
    if path.startswith("/results/"):
        return "results_get"
    if path in ("/healthz", "/metrics", "/surrogate"):
        return path[1:]
    return "other"


class ServiceCore:
    """Store + queue + surrogate + route logic, shared by both front ends."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        runner=run_sim_spec,
        workers: Optional[int] = None,
        max_depth: int = 256,
        timeout: Optional[float] = None,
        retries: int = 1,
        quiet: bool = False,
        record_ttl: Optional[float] = None,
        surrogate: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        local_exec: bool = True,
    ) -> None:
        self.registry = MetricsRegistry()
        self.store = store if store is not None else ResultStore(registry=self.registry)
        self.store.registry = self.registry
        self.oracle = None
        if surrogate:
            from repro.surrogate import SurrogateOracle

            # Batch calibration writes: a worker fleet settling results
            # through the queue hook would otherwise rewrite the table on
            # every completion.  stop() flushes the tail.
            self.oracle = SurrogateOracle(
                store=self.store, registry=self.registry, save_every=16
            )
        self.queue = JobQueue(
            runner=runner,
            store=self.store,
            workers=workers,
            max_depth=max_depth,
            timeout=timeout,
            retries=retries,
            registry=self.registry,
            record_ttl=record_ttl,
            on_executed=self.oracle.observe if self.oracle is not None else None,
            lease_ttl=lease_ttl,
            local_exec=local_exec,
        )
        self.quiet = quiet
        #: True once shutdown has begun: /healthz degrades, new claims
        #: return empty immediately, in-flight requests finish.
        self.draining = False

    # -- health / metrics ------------------------------------------------

    def health(self) -> Response:
        """Liveness + serviceability; non-200 = take me out of rotation."""
        payload: Dict[str, Any] = {
            "ok": True,
            "version": repro.__version__,
            "depth": self.queue.depth,
            "draining": self.draining,
        }
        if self.draining:
            payload["ok"] = False
        store_health = getattr(self.store, "health", None)
        if store_health is not None:
            storage = store_health()
            payload["shards"] = storage.get("shards", {})
            if not storage.get("ok", True):
                payload["ok"] = False
                payload["degraded"] = "shard unreachable"
        return Response(200 if payload["ok"] else 503, payload)

    def render_metrics(self) -> str:
        self.registry.gauge("service.queue.depth").set(self.queue.depth)
        self.registry.gauge("service.queue.records").set(len(self.queue._records))
        self.registry.gauge("service.store.blobs").set(len(self.store))
        return text_exposition(self.registry)

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        self.registry.histogram(
            f"service.http.latency_ms.{endpoint}", HTTP_LATENCY_BOUNDS
        ).add(seconds * 1000.0)

    # -- worker protocol -------------------------------------------------

    def claim_nowait(self, worker_id: str, max_jobs: int) -> List[Dict[str, Any]]:
        """One non-blocking claim attempt (front ends add the long poll)."""
        if self.draining:
            return []
        claimed = self.queue.claim(worker_id, max_jobs=max_jobs)
        return [
            {
                "job_id": record.job_id,
                "spec": record.spec,
                "priority": record.priority,
                "attempts": record.attempts,
            }
            for record in claimed
        ]

    def claim_payload(self, jobs: List[Dict[str, Any]]) -> Dict[str, Any]:
        return {
            "jobs": jobs,
            "lease_ttl": self.queue.lease_ttl,
            "timeout": self.queue.timeout,
            "draining": self.draining,
        }

    # -- routes ----------------------------------------------------------

    def handle_post_jobs(self, body: Dict[str, Any]) -> Response:
        try:
            priority = int(body.pop("priority", 0))
            spec = SimSpec.from_dict(body)
        except (ValueError, TypeError) as exc:
            return Response(400, {"error": str(exc)})
        if spec.mode in ("surrogate", "auto") and self.oracle is not None:
            try:
                payload = self.oracle.answer(spec)
            except (ValueError, KeyError) as exc:
                # Forced surrogate mode on a spec the model cannot see
                # (unknown pattern/topology) is a client error, not an
                # excuse to silently burn simulation time.
                return Response(400, {"error": f"surrogate cannot model spec: {exc}"})
            if payload is not None:
                return Response(
                    200,
                    {
                        "status": "done",
                        "cached": False,
                        "surrogate": True,
                        "job_id": fingerprint_for(spec),
                        "fingerprint": fingerprint_for(spec),
                        "result": payload,
                    },
                )
            # Gate said "too uncertain": fall through and simulate.
        try:
            record, _fresh = self.queue.submit(spec.to_dict(), priority)
        except QueueFull as exc:
            return Response(
                429,
                {"error": str(exc), "retry_after": 1},
                headers={"Retry-After": "1"},
            )
        if record.state == DONE:
            return Response(
                200,
                {
                    "status": "done",
                    "cached": True,
                    "job_id": record.job_id,
                    "fingerprint": record.job_id,
                    "result": record.result,
                },
            )
        return Response(
            202,
            {
                "status": record.state,
                "cached": False,
                "job_id": record.job_id,
                "fingerprint": record.job_id,
            },
        )

    def handle_post(self, path: str, body: Dict[str, Any]) -> Response:
        path = path.rstrip("/")
        if path == "/jobs":
            return self.handle_post_jobs(body)
        if path.startswith("/jobs/") and path.endswith("/heartbeat"):
            job_id = path[len("/jobs/"):-len("/heartbeat")]
            worker = str(body.get("worker", ""))
            alive = self.queue.heartbeat(job_id, worker)
            return Response(200, {"ok": alive, "job_id": job_id})
        if path.startswith("/jobs/") and path.endswith("/complete"):
            job_id = path[len("/jobs/"):-len("/complete")]
            worker = str(body.get("worker", ""))
            ok = bool(body.get("ok", False))
            if ok and not isinstance(body.get("result"), dict):
                return Response(400, {"error": "ok completion needs a result object"})
            value = body.get("result") if ok else str(body.get("error", "worker error"))
            outcome = self.queue.complete(job_id, worker, ok, value)
            return Response(200, {"outcome": outcome, "job_id": job_id})
        return Response(404, {"error": f"no such endpoint: {path}"})

    def handle_get(self, path: str, query: Dict[str, List[str]]) -> Response:
        path = path.rstrip("/")
        if path == "/healthz":
            return self.health()
        if path == "/metrics":
            return Response(200, text=self.render_metrics())
        if path == "/surrogate":
            if self.oracle is None:
                return Response(404, {"error": "surrogate lane disabled"})
            return Response(200, self.oracle.status())
        if path == "/jobs/claim":
            # Non-blocking here; front ends wrap this in their own long
            # poll (thread sleep vs. asyncio sleep).
            worker = (query.get("worker") or ["anonymous"])[0]
            max_jobs = int((query.get("max") or ["1"])[0])
            jobs = self.claim_nowait(worker, max_jobs)
            return Response(200, self.claim_payload(jobs))
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            record = self.queue.get(job_id)
            if record is None:
                return Response(404, {"error": f"unknown job {job_id!r}"})
            return Response(200, record.to_dict())
        if path.startswith("/results/"):
            fp = path[len("/results/"):]
            try:
                payload = self.store.get(fp)
            except ValueError:
                payload = None
            if payload is None:
                return Response(404, {"error": f"no result for {fp!r}"})
            return Response(200, payload)
        return Response(404, {"error": f"no such endpoint: {path}"})

    @staticmethod
    def parse_claim_query(query: Dict[str, List[str]]) -> Tuple[str, int, float]:
        """(worker, max_jobs, wait_seconds) of a claim request."""
        worker = (query.get("worker") or ["anonymous"])[0]
        max_jobs = max(1, int((query.get("max") or ["1"])[0]))
        wait = min(
            max(0.0, float((query.get("wait") or ["0"])[0])), CLAIM_MAX_WAIT
        )
        return worker, max_jobs, wait


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the owning :class:`ServiceServer`."""

    server_version = f"repro-service/{repro.__version__}"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass carries the service reference.
    @property
    def service(self) -> "ServiceServer":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.service.quiet:
            super().log_message(format, *args)

    # -- plumbing --------------------------------------------------------

    def _send(self, response: Response) -> None:
        body, ctype = response.body_bytes()
        self.send_response(response.status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("empty request body")
        raw = self.rfile.read(length)
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routes ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — http.server contract
        started = time.perf_counter()
        parts = urlsplit(self.path)
        try:
            body = self._read_json_body()
        except ValueError as exc:
            self._send(Response(400, {"error": str(exc)}))
            return
        response = self.service.handle_post(parts.path, body)
        self._send(response)
        self.service.observe_latency(
            endpoint_label("POST", parts.path), time.perf_counter() - started
        )

    def do_GET(self) -> None:  # noqa: N802 — http.server contract
        started = time.perf_counter()
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        if parts.path.rstrip("/") == "/jobs/claim":
            response = self._long_poll_claim(query)
        else:
            response = self.service.handle_get(parts.path, query)
        self._send(response)
        self.service.observe_latency(
            endpoint_label("GET", parts.path), time.perf_counter() - started
        )

    def _long_poll_claim(self, query: Dict[str, List[str]]) -> Response:
        """Blocking long poll — each parked claim costs a whole thread
        here, which is precisely the ceiling the async front end lifts."""
        worker, max_jobs, wait = ServiceCore.parse_claim_query(query)
        deadline = time.monotonic() + wait
        while True:
            jobs = self.service.claim_nowait(worker, max_jobs)
            if jobs or self.service.draining or time.monotonic() >= deadline:
                return Response(200, self.service.claim_payload(jobs))
            time.sleep(CLAIM_POLL_INTERVAL)


class _Httpd(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ServiceServer(ServiceCore):
    """One store + one queue + one threaded HTTP front end."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        **core_kwargs,
    ) -> None:
        super().__init__(**core_kwargs)
        self.httpd = _Httpd((host, port), ServiceHandler)
        self.httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- info ------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ServiceServer":
        """Start queue + HTTP threads; returns immediately (for tests)."""
        self.queue.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever, name="repro-httpd", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking form used by ``repro serve``."""
        self.queue.start()
        try:
            self.httpd.serve_forever()
        finally:
            self.queue.stop(wait=False)

    def stop(self) -> None:
        self.draining = True
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.queue.stop(wait=False)
        if self.oracle is not None:
            self.oracle.flush()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def fingerprint_for(spec: SimSpec) -> str:
    """Fingerprint a spec exactly as ``POST /jobs`` would.

    Execution-only fields (``engine``, ``mode``) are excluded, so
    submissions that differ only in how they are answered address the
    same stored result.
    """
    return spec_fingerprint(spec_identity(spec.to_dict()))
