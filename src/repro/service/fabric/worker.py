"""Remote worker pool: ``repro worker`` — pull, execute, report.

A worker process owns no queue and no store; it long-polls a campaign
front end for leased jobs (``GET /jobs/claim``), executes them through
exactly the same path local execution uses
(:func:`repro.service.queue._guarded_run` over
:func:`repro.service.spec.run_sim_spec`, fanned through
:func:`repro.parallel.run_jobs_batched` when the claim batch is large
enough to amortize warm caches), and reports each outcome
(``POST /jobs/<id>/complete``).

Delivery semantics — at-least-once, exactly-one-result:

* while executing, a heartbeat thread re-asserts the lease every
  ``lease_ttl / 3`` seconds; a worker that is killed simply stops
  heartbeating and the server requeues the job for the next claimant;
* a heartbeat answered ``ok: false`` means the lease is forfeit (the
  job was requeued and possibly finished elsewhere) — the worker still
  reports its result when it finishes, because completion is idempotent:
  the server coalesces duplicates by content fingerprint, so racing
  workers can never double-store or double-count a result;
* results reported by workers feed surrogate calibration on the server
  side through the queue's ``on_executed`` hook — remote execution is
  indistinguishable from local execution to the fast lane.

The executing simulation cannot be preempted mid-cycle; the portable
wall-clock budget (:func:`repro.parallel.call_with_timeout`) bounds each
job using the server-advertised per-job timeout.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, proc_registry
from repro.parallel import Job, run_jobs_batched
from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import _guarded_run
from repro.service.spec import run_sim_spec

#: Default long-poll window per claim request.
DEFAULT_POLL_WAIT = 15.0


def default_worker_id() -> str:
    """Stable-ish identity: host + pid + a nonce (restarts get fresh ids,
    so a restarted worker can never satisfy its dead predecessor's lease)."""
    return f"{os.uname().nodename}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class WorkerStats:
    """Tallies one worker's life; printed on exit and after each batch."""

    claims: int = 0
    executed: int = 0
    failed: int = 0
    duplicates: int = 0
    lease_lost: int = 0
    idle_polls: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)

    def record_outcome(self, outcome: str) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if outcome == "duplicate":
            self.duplicates += 1

    def summary(self) -> str:
        return (
            f"claims={self.claims} executed={self.executed} "
            f"failed={self.failed} duplicates={self.duplicates} "
            f"lease_lost={self.lease_lost} idle_polls={self.idle_polls}"
        )


class _HeartbeatThread(threading.Thread):
    """Re-asserts leases on every in-flight job while a batch executes."""

    def __init__(
        self,
        client: ServiceClient,
        worker_id: str,
        job_ids: List[str],
        lease_ttl: float,
        stats: WorkerStats,
    ) -> None:
        super().__init__(name="repro-worker-heartbeat", daemon=True)
        self.client = client
        self.worker_id = worker_id
        self.lease_ttl = lease_ttl
        self.stats = stats
        self._job_ids = set(job_ids)
        self._lock = threading.Lock()
        self._stop = threading.Event()

    def settle(self, job_id: str) -> None:
        """Stop heartbeating a job once it has been reported."""
        with self._lock:
            self._job_ids.discard(job_id)

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        interval = max(0.2, self.lease_ttl / 3.0)
        while not self._stop.wait(interval):
            with self._lock:
                pending = list(self._job_ids)
            if not pending:
                return
            for job_id in pending:
                try:
                    alive = self.client.heartbeat(job_id, self.worker_id)
                except (ServiceError, OSError):
                    continue  # transient; the lease may still hold
                if not alive:
                    # Forfeit: the server requeued it.  Keep executing —
                    # completion is idempotent — but stop asserting.
                    self.stats.lease_lost += 1
                    self.settle(job_id)


class FabricWorker:
    """One pull-execute-report loop against a campaign front end."""

    def __init__(
        self,
        url: str,
        worker_id: Optional[str] = None,
        max_jobs: int = 4,
        poll_wait: float = DEFAULT_POLL_WAIT,
        exec_workers: int = 1,
        client: Optional[ServiceClient] = None,
        registry: Optional[MetricsRegistry] = None,
        quiet: bool = True,
    ) -> None:
        self.client = client if client is not None else ServiceClient(url)
        self.worker_id = worker_id if worker_id else default_worker_id()
        self.max_jobs = max(1, max_jobs)
        self.poll_wait = max(0.0, poll_wait)
        #: Local process fan-out per batch (1 = serial in-process, the
        #: right default when many single-core workers share a fleet).
        self.exec_workers = max(1, exec_workers)
        self.registry = registry if registry is not None else proc_registry()
        self.quiet = quiet
        self.stats = WorkerStats()
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    # -- one cycle -------------------------------------------------------

    def run_once(self) -> int:
        """One claim + execute + report cycle; returns jobs settled."""
        claim = self.client.claim(
            self.worker_id, max_jobs=self.max_jobs, wait=self.poll_wait
        )
        jobs = claim.get("jobs", [])
        if not jobs:
            self.stats.idle_polls += 1
            return 0
        self.stats.claims += len(jobs)
        lease_ttl = float(claim.get("lease_ttl", 30.0))
        timeout = claim.get("timeout")
        heartbeat = _HeartbeatThread(
            self.client,
            self.worker_id,
            [job["job_id"] for job in jobs],
            lease_ttl,
            self.stats,
        )
        heartbeat.start()
        try:
            outcomes = run_jobs_batched(
                [
                    Job(_guarded_run, (run_sim_spec, job["spec"], timeout))
                    for job in jobs
                ],
                workers=self.exec_workers,
            )
            for job, (status, value) in zip(jobs, outcomes):
                job_id = job["job_id"]
                try:
                    if status == "ok":
                        outcome = self.client.complete(
                            job_id, self.worker_id, True, result=value
                        )
                        self.stats.executed += 1
                    else:
                        outcome = self.client.complete(
                            job_id, self.worker_id, False, error=str(value)
                        )
                        self.stats.failed += 1
                    self.stats.record_outcome(outcome)
                finally:
                    heartbeat.settle(job_id)
            self.registry.counter("service.worker.settled").inc(len(jobs))
        finally:
            heartbeat.stop()
        if not self.quiet:
            print(f"[{self.worker_id}] {self.stats.summary()}", flush=True)
        return len(jobs)

    # -- the loop --------------------------------------------------------

    def run_forever(
        self,
        max_idle_polls: Optional[int] = None,
        max_cycles: Optional[int] = None,
    ) -> WorkerStats:
        """Pull until stopped, the server drains, or idle/cycle budgets hit.

        ``max_idle_polls`` bounds *consecutive* empty claims (a batch
        worker that should exit when the campaign is done);
        ``max_cycles`` bounds total claim cycles (tests).  A draining
        server ends the loop immediately.
        """
        idle_streak = 0
        cycles = 0
        while not self._stop.is_set():
            try:
                settled = self.run_once()
            except (ServiceError, OSError):
                # Transport retries are exhausted: the front end is
                # gone or restarting.  Back off and try again rather
                # than dying — workers are cattle, campaigns are not.
                self.registry.counter("service.worker.poll_error").inc()
                if self._stop.wait(1.0):
                    break
                settled = 0
            cycles += 1
            if settled == 0:
                idle_streak += 1
                if max_idle_polls is not None and idle_streak >= max_idle_polls:
                    break
                if self._last_claim_draining():
                    break
            else:
                idle_streak = 0
            if max_cycles is not None and cycles >= max_cycles:
                break
        return self.stats

    def _last_claim_draining(self) -> bool:
        """Ask the front end whether it is draining (cheap healthz)."""
        try:
            status, payload, _ = self.client._request("GET", "/healthz")
        except (ServiceError, OSError):
            return False
        return bool(payload.get("draining", False))


def run_worker(
    url: str,
    worker_id: Optional[str] = None,
    max_jobs: int = 4,
    poll_wait: float = DEFAULT_POLL_WAIT,
    exec_workers: int = 1,
    max_idle_polls: Optional[int] = None,
    quiet: bool = False,
) -> WorkerStats:
    """Module-level face of ``repro worker`` (and the soak harness)."""
    worker = FabricWorker(
        url,
        worker_id=worker_id,
        max_jobs=max_jobs,
        poll_wait=poll_wait,
        exec_workers=exec_workers,
        quiet=quiet,
    )
    if not quiet:
        print(f"repro worker {worker.worker_id} pulling from {url}", flush=True)
    try:
        return worker.run_forever(max_idle_polls=max_idle_polls)
    except KeyboardInterrupt:
        return worker.stats
