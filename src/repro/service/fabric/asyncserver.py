"""Asyncio HTTP front end: the fleet-scale face of the campaign service.

The classic :class:`~repro.service.server.ServiceServer` spends one OS
thread per connection — fine for a laptop, a ceiling for a fleet: every
remote worker parks a long-poll claim connection, every dashboard scrape
and submission burns a thread spawn, and a few hundred concurrent
clients turn into a few hundred contending threads.
:class:`AsyncServiceServer` serves the *same* :class:`ServiceCore`
routes from a single event loop:

* **streaming request handling** — request bodies are read in bounded
  chunks as they arrive, so a large campaign submission never buffers
  through a thread stack, and a slow client costs a coroutine, not a
  thread;
* **long polls are free** — a parked ``GET /jobs/claim`` is an
  ``await``, so thousands of idle workers cost nothing;
* **graceful drain** — ``stop()`` flips ``/healthz`` to 503 (load
  balancers stop routing), closes the listener, lets every in-flight
  request finish, then stops the queue.  Parked claims return empty
  immediately so workers disconnect fast;
* **per-endpoint latency histograms** — every request lands in
  ``service.http.latency_ms.<endpoint>`` (visible in ``GET /metrics``),
  which is how the service bench reports front-end latency honestly.

Potentially-slow handlers (submission: disk + surrogate; completion:
disk + calibration feedback; result reads) hop to a small thread pool so
the event loop never blocks on I/O; cheap lock-only handlers (healthz,
heartbeat, job status, claims) run inline.

The server runs its event loop in a dedicated daemon thread so the
blocking ``repro serve`` CLI, tests, and context-manager usage look
exactly like the threaded server's.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.server import (
    CLAIM_POLL_INTERVAL,
    DEFAULT_HOST,
    DEFAULT_PORT,
    Response,
    ServiceCore,
    endpoint_label,
)

#: Bytes per streaming body-read chunk.
BODY_CHUNK = 64 * 1024
#: Largest accepted request body (a campaign of specs, with headroom).
MAX_BODY_BYTES = 32 * 1024 * 1024
#: Seconds stop() waits for in-flight requests before giving up.
DRAIN_TIMEOUT = 10.0

#: Endpoints that may touch disk or the surrogate — executed off-loop.
_EXECUTOR_ENDPOINTS = frozenset(
    {"jobs_submit", "jobs_complete", "results_get", "surrogate"}
)


class AsyncServiceServer(ServiceCore):
    """Single-event-loop front end over :class:`ServiceCore`."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        **core_kwargs,
    ) -> None:
        super().__init__(**core_kwargs)
        self._host = host
        self._requested_port = port
        self._bound: Optional[Tuple[str, int]] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._finished = threading.Event()
        self._active = 0
        self._executor = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="repro-async-io"
        )
        self._startup_error: Optional[BaseException] = None

    # -- info ------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        assert self._bound is not None, "server not started"
        return self._bound

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "AsyncServiceServer":
        self.queue.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run_loop, name="repro-async-httpd", daemon=True
            )
            self._thread.start()
            self._ready.wait(10.0)
            if self._startup_error is not None:
                raise RuntimeError(
                    f"async server failed to start: {self._startup_error}"
                )
            if self._bound is None:
                raise RuntimeError("async server did not come up within 10s")
        return self

    def serve_forever(self) -> None:
        """Blocking form used by ``repro serve --backend async``."""
        self.start()
        try:
            self._finished.wait()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Graceful drain: degrade health, finish in-flight, stop queue."""
        self.draining = True
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(DRAIN_TIMEOUT + 5.0)
            self._thread = None
        self.queue.stop(wait=False)
        self._executor.shutdown(wait=False)
        if self.oracle is not None:
            self.oracle.flush()

    def __enter__(self) -> "AsyncServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- event loop ------------------------------------------------------

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced in start()
            self._startup_error = exc
            self._ready.set()
        finally:
            self._finished.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        sockname = server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        self._ready.set()
        sweeper = asyncio.ensure_future(self._lease_sweeper())
        try:
            await self._stop_event.wait()
        finally:
            sweeper.cancel()
            server.close()
            await server.wait_closed()
            # Drain: every accepted request gets to finish.
            deadline = time.monotonic() + DRAIN_TIMEOUT
            while self._active > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.01)

    async def _lease_sweeper(self) -> None:
        """Requeue expired worker leases even when no claims arrive."""
        interval = max(0.5, self.queue.lease_ttl / 4.0)
        while True:
            await asyncio.sleep(interval)
            self.queue.requeue_expired()

    # -- HTTP ------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: loop shutdown cancelled this handler
                # mid-close; the transport is torn down regardless.
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return False
        try:
            method, target, version = (
                request_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
            )
        except ValueError:
            await self._write_response(
                writer, Response(400, {"error": "malformed request line"}), False
            )
            return False
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "").lower() != "close" and (
            version != "HTTP/1.0"
        )

        self._active += 1
        started = time.perf_counter()
        parts = urlsplit(target)
        try:
            body, overflow = await self._read_body(reader, headers)
            if overflow:
                response = Response(413, {"error": "request body too large"})
            else:
                response = await self._dispatch(method, parts, body)
        except (ValueError, json.JSONDecodeError) as exc:
            response = Response(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — one request must not kill the loop
            response = Response(500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            self._active -= 1
        await self._write_response(writer, response, keep_alive)
        self.observe_latency(
            endpoint_label(method, parts.path), time.perf_counter() - started
        )
        return keep_alive

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> Tuple[bytes, bool]:
        """Stream the body in bounded chunks; flag oversized bodies."""
        length = int(headers.get("content-length", 0) or 0)
        if length <= 0:
            return b"", False
        if length > MAX_BODY_BYTES:
            return b"", True
        chunks: List[bytes] = []
        remaining = length
        while remaining > 0:
            chunk = await reader.readexactly(min(remaining, BODY_CHUNK))
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks), False

    async def _dispatch(self, method: str, parts, body: bytes) -> Response:
        path = parts.path
        query = parse_qs(parts.query)
        endpoint = endpoint_label(method, path)
        if method == "GET" and path.rstrip("/") == "/jobs/claim":
            return await self._long_poll_claim(query)
        if method == "POST":
            payload = json.loads(body) if body else None
            if not isinstance(payload, dict):
                return Response(400, {"error": "request body must be a JSON object"})
            if endpoint in _EXECUTOR_ENDPOINTS:
                return await self._off_loop(self.handle_post, path, payload)
            return self.handle_post(path, payload)
        if method == "GET":
            if endpoint in _EXECUTOR_ENDPOINTS:
                return await self._off_loop(self.handle_get, path, query)
            return self.handle_get(path, query)
        if method == "HEAD":
            inner = self.handle_get(path, query)
            return Response(inner.status, text="")
        return Response(405, {"error": f"method {method} not allowed"})

    async def _off_loop(self, func, *args) -> Response:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, func, *args)

    async def _long_poll_claim(self, query: Dict[str, List[str]]) -> Response:
        """Parked claim = one coroutine await, not one OS thread."""
        worker, max_jobs, wait = ServiceCore.parse_claim_query(query)
        deadline = time.monotonic() + wait
        while True:
            jobs = self.claim_nowait(worker, max_jobs)
            if jobs or self.draining or time.monotonic() >= deadline:
                return Response(200, self.claim_payload(jobs))
            await asyncio.sleep(CLAIM_POLL_INTERVAL)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        keep_alive: bool,
    ) -> None:
        body, ctype = response.body_bytes()
        head = [
            f"HTTP/1.1 {response.status} {_REASONS.get(response.status, 'OK')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{k}: {v}" for k, v in response.headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def make_server(
    backend: str = "threaded",
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    **core_kwargs,
):
    """Front-end factory shared by the CLI and the soak harness."""
    if backend == "async":
        return AsyncServiceServer(host=host, port=port, **core_kwargs)
    if backend == "threaded":
        from repro.service.server import ServiceServer

        return ServiceServer(host=host, port=port, **core_kwargs)
    raise ValueError(f"unknown backend {backend!r}; have ('threaded', 'async')")
