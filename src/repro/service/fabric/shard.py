"""Multi-node result storage: consistent hashing over a shard map.

One :class:`~repro.service.store.ResultStore` per shard, stitched into a
single store-shaped façade (:class:`ShardedResultStore`) by a
:class:`ShardMap` — a declarative description of the fleet's storage
nodes.  The store layer was built for this: blobs are already addressed
by content fingerprint and written atomically, so "which node owns this
fingerprint" is the *only* new question, and consistent hashing answers
it with minimal movement when the map changes.

Placement
---------

The map hashes ``vnodes`` virtual points per shard (scaled by ``weight``)
onto a 64-bit ring; a fingerprint lands on the first point clockwise from
its own 64-bit prefix, and its replica set is the next ``replicas``
*distinct* shards around the ring.  Adding one shard to an N-shard map
therefore relocates ~1/(N+1) of the keyspace instead of rehashing
everything — the property that makes live rebalancing cheap.

Replication and healing
-----------------------

* :meth:`ShardedResultStore.put` writes the primary first, then
  best-effort copies to the remaining replicas (a replica whose disk is
  gone does not fail the put — durability degrades, availability does
  not).
* :meth:`ShardedResultStore.get` reads the primary, then *read-through*
  falls back to replicas; a replica hit is healed back into the primary
  so the next read is local again.  Only when every replica misses does
  the fabric re-execute the simulation — results are pure functions of
  the fingerprint, so storage loss costs time, never correctness.
* :meth:`ShardedResultStore.health` reports per-shard reachability; the
  servers surface it through ``/healthz`` (degraded = non-200) so load
  balancers stop routing to a front end whose storage is limping.

:func:`rebalance` is the operator tool: after editing the shard map
(adding/removing/reweighting shards), one pass copies every blob to its
current owner set and optionally prunes stale copies.
"""

from __future__ import annotations

import hashlib
import json
import os
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, proc_registry
from repro.service.store import ResultStore

#: Virtual points per unit of shard weight.  128 keeps the keyspace
#: split within a few percent of the weight ratio while the ring stays
#: small enough to rebuild on every map edit.
DEFAULT_VNODES = 128


def _ring_point(label: str) -> int:
    """64-bit position of a label on the hash ring."""
    return int.from_bytes(
        hashlib.sha256(label.encode()).digest()[:8], "big"
    )


@dataclass(frozen=True)
class Shard:
    """One storage node: a name (its ring identity) and a blob root."""

    name: str
    root: str
    weight: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "root": self.root, "weight": self.weight}


@dataclass
class ShardMap:
    """Declarative fleet storage layout + the derived hash ring.

    The JSON form is the operator artifact (checked in, edited by hand,
    passed to ``repro serve --shard-map`` and ``repro shards``)::

        {"version": 1, "replicas": 2,
         "shards": [{"name": "s0", "root": "/data/s0", "weight": 1},
                    {"name": "s1", "root": "/data/s1", "weight": 1}]}

    ``replicas`` counts *copies* (primary included) and is clamped to
    the shard count.  Shard *names* are hashed, not roots, so a shard
    can be re-rooted (moved to a new disk) without relocating any keys.
    """

    shards: List[Shard]
    replicas: int = 2
    vnodes: int = DEFAULT_VNODES
    _ring: List[Tuple[int, str]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("shard map needs at least one shard")
        names = [shard.name for shard in self.shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in map: {names}")
        self.replicas = max(1, min(int(self.replicas), len(self.shards)))
        self._ring = []
        for shard in self.shards:
            for i in range(self.vnodes * max(1, shard.weight)):
                self._ring.append((_ring_point(f"{shard.name}#{i}"), shard.name))
        self._ring.sort()

    # -- placement -------------------------------------------------------

    def owners(self, fp: str) -> List[str]:
        """Replica set (primary first) of shard names for a fingerprint."""
        if len(fp) < 16 or not all(c in "0123456789abcdef" for c in fp[:16]):
            raise ValueError(f"not a fingerprint: {fp!r}")
        point = int(fp[:16], 16)
        start = bisect_left(self._ring, (point, ""))
        owners: List[str] = []
        for offset in range(len(self._ring)):
            _, name = self._ring[(start + offset) % len(self._ring)]
            if name not in owners:
                owners.append(name)
                if len(owners) == self.replicas:
                    break
        return owners

    def primary(self, fp: str) -> str:
        return self.owners(fp)[0]

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "replicas": self.replicas,
            "vnodes": self.vnodes,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardMap":
        if not isinstance(payload, dict) or "shards" not in payload:
            raise ValueError("shard map must be an object with a 'shards' list")
        shards = [
            Shard(
                name=str(entry["name"]),
                root=str(entry["root"]),
                weight=int(entry.get("weight", 1)),
            )
            for entry in payload["shards"]
        ]
        return cls(
            shards=shards,
            replicas=int(payload.get("replicas", 2)),
            vnodes=int(payload.get("vnodes", DEFAULT_VNODES)),
        )

    @classmethod
    def load(cls, path: os.PathLike) -> "ShardMap":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: os.PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True))

    @classmethod
    def local(cls, roots: Sequence[os.PathLike], replicas: int = 2) -> "ShardMap":
        """Convenience map: one shard per root, named ``s0..sN-1``."""
        return cls(
            shards=[
                Shard(name=f"s{i}", root=str(root)) for i, root in enumerate(roots)
            ],
            replicas=replicas,
        )


class ShardedResultStore:
    """A :class:`ResultStore`-shaped façade over a :class:`ShardMap`.

    Drop-in for every store consumer in the tree — the job queue, the
    servers, campaign runs, and surrogate calibration all take it
    unchanged (``registry``, ``get``/``put``/``contains``, iteration and
    ``query`` all behave identically; ``root`` points at the first
    shard, which is where the calibration table sidecar lives).
    """

    def __init__(
        self,
        shard_map: ShardMap,
        max_bytes: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.map = shard_map
        self.registry = registry if registry is not None else proc_registry()
        self._stores: Dict[str, ResultStore] = {}
        for shard in shard_map.shards:
            self._stores[shard.name] = ResultStore(
                root=Path(shard.root),
                max_bytes=max_bytes,
                registry=self.registry,
            )

    # -- ResultStore API parity ------------------------------------------

    @property
    def root(self) -> Path:
        """Anchor directory for sidecars (calibration table, manifests)."""
        return self._stores[self.map.shards[0].name].root

    def shard_store(self, name: str) -> ResultStore:
        return self._stores[name]

    def get(self, fp: str) -> Optional[Dict[str, Any]]:
        """Primary read, then read-through replicas, healing the primary."""
        owners = self.map.owners(fp)
        primary = self._stores[owners[0]]
        try:
            payload = primary.get(fp)
        except OSError:
            payload = None
            self.registry.counter("service.shard.unreachable").inc()
        if payload is not None:
            return payload
        for name in owners[1:]:
            try:
                payload = self._stores[name].get(fp)
            except OSError:
                self.registry.counter("service.shard.unreachable").inc()
                continue
            if payload is not None:
                self.registry.counter("service.shard.readthrough").inc()
                try:
                    primary.put(fp, payload)  # heal: next read is local
                except OSError:
                    self.registry.counter("service.shard.heal_failed").inc()
                return payload
        return None

    def put(self, fp: str, payload: Dict[str, Any]) -> Path:
        """Write the primary (must succeed), replicate best-effort."""
        owners = self.map.owners(fp)
        written: Optional[Path] = None
        primary_error: Optional[OSError] = None
        try:
            written = self._stores[owners[0]].put(fp, payload)
        except OSError as exc:
            primary_error = exc
            self.registry.counter("service.shard.unreachable").inc()
        for name in owners[1:]:
            try:
                replica_path = self._stores[name].put(fp, payload)
            except OSError:
                self.registry.counter("service.shard.replica_failed").inc()
                continue
            if written is None:
                written = replica_path
        if written is None:
            raise primary_error if primary_error is not None else OSError(
                f"no shard accepted {fp}"
            )
        return written

    def contains(self, fp: str) -> bool:
        return any(
            self._stores[name].contains(fp) for name in self.map.owners(fp)
        )

    def __len__(self) -> int:
        """Distinct fingerprints across the fleet (replicas dedup'd)."""
        return sum(1 for _ in self.iter_fingerprints())

    def size_bytes(self) -> int:
        return sum(store.size_bytes() for store in self._stores.values())

    def iter_fingerprints(self) -> Iterator[str]:
        seen = set()
        for store in self._stores.values():
            try:
                for fp in store.iter_fingerprints():
                    if fp not in seen:
                        seen.add(fp)
                        yield fp
            except OSError:
                self.registry.counter("service.shard.unreachable").inc()

    def iter_entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        seen = set()
        for store in self._stores.values():
            try:
                for fp, payload in store.iter_entries():
                    if fp not in seen:
                        seen.add(fp)
                        yield fp, payload
            except OSError:
                self.registry.counter("service.shard.unreachable").inc()

    def query(
        self, predicate: Callable[[Dict[str, Any]], bool]
    ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        for fp, payload in self.iter_entries():
            try:
                keep = predicate(payload)
            except Exception:  # noqa: BLE001 — malformed entry: skip
                continue
            if keep:
                yield fp, payload

    def clear(self) -> int:
        return sum(store.clear() for store in self._stores.values())

    # -- fleet health ----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Per-shard reachability (root exists and is a directory).

        A shard whose directory vanished (unmounted disk, dead node in
        the local-filesystem stand-in) turns ``ok`` False; the servers
        map that to a 503 ``/healthz`` so balancers drain this front
        end while reads fall back to replicas.
        """
        shards: Dict[str, bool] = {}
        for shard in self.map.shards:
            root = Path(shard.root)
            try:
                shards[shard.name] = root.is_dir()
            except OSError:
                shards[shard.name] = False
        return {"ok": all(shards.values()), "shards": shards}


def rebalance(
    store: ShardedResultStore, prune: bool = False
) -> Dict[str, int]:
    """Re-place every blob according to the store's *current* map.

    For each fingerprint found anywhere in the fleet: copy it to every
    owner that lacks it; with ``prune=True`` also delete copies held by
    non-owners (run only after the copy pass has widened coverage —
    which this function guarantees by ordering copies first per blob).

    Returns ``{"scanned", "copied", "pruned", "skipped"}`` counts.
    ``skipped`` counts blobs whose bytes could not be read (corrupt or
    shard lost mid-scan) — they are left for the fabric's re-execution
    path rather than guessed at.
    """
    scanned = copied = pruned = skipped = 0
    # Snapshot fingerprint -> holders before mutating anything.
    holders: Dict[str, List[str]] = {}
    for shard in store.map.shards:
        shard_store = store.shard_store(shard.name)
        try:
            for fp in shard_store.iter_fingerprints():
                holders.setdefault(fp, []).append(shard.name)
        except OSError:
            continue
    for fp, present in holders.items():
        scanned += 1
        owners = store.map.owners(fp)
        payload: Optional[Dict[str, Any]] = None
        missing = [name for name in owners if name not in present]
        if missing:
            for name in present:
                try:
                    payload = store.shard_store(name).get(fp)
                except OSError:
                    payload = None
                if payload is not None:
                    break
            if payload is None:
                skipped += 1
                continue
            for name in missing:
                try:
                    store.shard_store(name).put(fp, payload)
                    copied += 1
                except OSError:
                    skipped += 1
        if prune:
            for name in present:
                if name in owners:
                    continue
                try:
                    store.shard_store(name).path_for(fp).unlink(missing_ok=True)
                    pruned += 1
                except OSError:
                    pass
    return {
        "scanned": scanned,
        "copied": copied,
        "pruned": pruned,
        "skipped": skipped,
    }
