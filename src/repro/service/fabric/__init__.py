"""Distributed campaign fabric: async front end, sharded store, workers.

Scales :mod:`repro.service` from one process to a fleet (see DESIGN §4e):

* :mod:`repro.service.fabric.asyncserver` —
  :class:`AsyncServiceServer`, a single-event-loop HTTP front end with
  streaming bodies, graceful drain, and per-endpoint latency
  histograms (lifts the thread-per-connection ceiling);
* :mod:`repro.service.fabric.shard` — :class:`ShardMap` /
  :class:`ShardedResultStore`, consistent-hash placement of result
  blobs over many storage roots with read-through replication, plus the
  :func:`rebalance` operator tool;
* :mod:`repro.service.fabric.worker` — :class:`FabricWorker` /
  :func:`run_worker`, the ``repro worker`` pull-execute-report loop
  with lease heartbeats and idempotent completion (at-least-once
  delivery, exactly one stored result).
"""

from repro.service.fabric.asyncserver import AsyncServiceServer, make_server
from repro.service.fabric.shard import (
    Shard,
    ShardMap,
    ShardedResultStore,
    rebalance,
)
from repro.service.fabric.worker import FabricWorker, WorkerStats, run_worker

__all__ = [
    "AsyncServiceServer",
    "FabricWorker",
    "Shard",
    "ShardMap",
    "ShardedResultStore",
    "WorkerStats",
    "make_server",
    "rebalance",
    "run_worker",
]
