"""Content-addressed result store: fingerprint -> JSON blob on disk.

Each completed simulation (or sweep cell) is keyed by the SHA-256
fingerprint of its canonical spec encoding, salted with the code version
(:data:`CODE_SALT`) so results computed by an older simulator can never
shadow fresh ones.  Blobs live under ``$REPRO_STORE`` (default
``~/.cache/repro``), sharded by the first two hex digits to keep
directories small at campaign scale.

Durability and concurrency:

* writes are atomic — serialize to a same-directory temp file, then
  ``os.replace`` — so a killed run never leaves a torn blob, and
  concurrent writers of the same fingerprint last-write-win with
  identical bytes (the payload is a pure function of the fingerprint);
* reads touch the blob's mtime, making eviction least-recently-*used*
  rather than least-recently-written;
* the store is capped (``max_bytes``, default ``$REPRO_STORE_MAX_BYTES``
  or 256 MiB); :meth:`ResultStore.put` evicts oldest-touched blobs until
  the cap holds.

Hit/miss/put/evict counters land in a
:class:`repro.obs.metrics.MetricsRegistry` (the per-process registry by
default), so ``GET /metrics`` and ``experiment --obs`` both see cache
effectiveness for free.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

import repro
from repro.obs.metrics import MetricsRegistry, proc_registry
from repro.utils.serialize import fingerprint as _fingerprint

#: Environment variable overriding the store root directory.
STORE_ENV_VAR = "REPRO_STORE"
#: Environment variable overriding the size cap in bytes.
STORE_MAX_BYTES_ENV_VAR = "REPRO_STORE_MAX_BYTES"
#: Default size cap when neither argument nor environment specifies one.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Version salt folded into every fingerprint (see module docstring).
CODE_SALT = f"repro-{repro.__version__}-schema1"


def spec_fingerprint(spec_obj: Any) -> str:
    """Content address of a spec-like value, salted with the code version."""
    return _fingerprint(spec_obj, salt=CODE_SALT)


def default_store_root() -> Path:
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def _default_max_bytes() -> int:
    env = os.environ.get(STORE_MAX_BYTES_ENV_VAR)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return DEFAULT_MAX_BYTES


class ResultStore:
    """Disk-backed, LRU-capped map from fingerprint to JSON payload."""

    def __init__(
        self,
        root: Optional[Path] = None,
        max_bytes: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.max_bytes = max_bytes if max_bytes is not None else _default_max_bytes()
        self.registry = registry if registry is not None else proc_registry()
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------

    def path_for(self, fp: str) -> Path:
        if len(fp) < 8 or not all(c in "0123456789abcdef" for c in fp):
            raise ValueError(f"not a fingerprint: {fp!r}")
        return self.root / fp[:2] / f"{fp}.json"

    # -- read ------------------------------------------------------------

    def contains(self, fp: str) -> bool:
        return self.path_for(fp).exists()

    def get(self, fp: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(fp)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.registry.counter("service.store.miss").inc()
            return None
        try:
            payload = json.loads(raw)
        except ValueError:
            # A torn/corrupt blob (should be impossible given atomic
            # writes, but disks happen): drop it and report a miss so the
            # caller recomputes rather than crashes.
            path.unlink(missing_ok=True)
            self.registry.counter("service.store.corrupt").inc()
            self.registry.counter("service.store.miss").inc()
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self.registry.counter("service.store.hit").inc()
        return payload

    # -- write -----------------------------------------------------------

    def put(self, fp: str, payload: Dict[str, Any]) -> Path:
        path = self.path_for(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fp[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.registry.counter("service.store.put").inc()
        self._enforce_cap()
        return path

    # -- maintenance -----------------------------------------------------

    def _blobs(self) -> Iterator[Path]:
        for shard in self.root.iterdir():
            if shard.is_dir() and len(shard.name) == 2:
                yield from shard.glob("*.json")

    def size_bytes(self) -> int:
        return sum(blob.stat().st_size for blob in self._blobs())

    def __len__(self) -> int:
        return sum(1 for _ in self._blobs())

    def iter_fingerprints(self) -> Iterator[str]:
        for blob in self._blobs():
            yield blob.stem

    def iter_entries(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield every stored ``(fingerprint, payload)`` pair.

        A bulk-read primitive for harvesters (e.g. surrogate
        calibration): it decodes blobs directly — no LRU touch, no
        hit/miss counters — so a full scan neither skews cache metrics
        nor rejuvenates cold entries.  Corrupt blobs are skipped (and
        counted), matching :meth:`get`'s tolerance.
        """
        for blob in self._blobs():
            try:
                payload = json.loads(blob.read_bytes())
            except FileNotFoundError:
                continue  # concurrent eviction
            except ValueError:
                self.registry.counter("service.store.corrupt").inc()
                continue
            yield blob.stem, payload

    def query(
        self, predicate: Callable[[Dict[str, Any]], bool]
    ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield stored entries whose payload satisfies ``predicate``.

        A predicate that raises on an unexpected payload shape is
        treated as "no match" rather than aborting the scan — stores mix
        simulation results with campaign manifests and sweep cells.
        """
        for fp, payload in self.iter_entries():
            try:
                keep = predicate(payload)
            except Exception:  # noqa: BLE001 — malformed entry: skip
                continue
            if keep:
                yield fp, payload

    def _enforce_cap(self) -> None:
        blobs = []
        total = 0
        for blob in self._blobs():
            try:
                stat = blob.stat()
            except FileNotFoundError:
                continue  # concurrent eviction
            blobs.append((stat.st_mtime, stat.st_size, blob))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        blobs.sort()  # oldest-touched first
        for _, size, blob in blobs:
            if total <= self.max_bytes:
                break
            try:
                blob.unlink()
            except FileNotFoundError:
                continue
            total -= size
            self.registry.counter("service.store.evict").inc()

    def clear(self) -> int:
        """Remove every blob; returns how many were removed."""
        removed = 0
        for blob in list(self._blobs()):
            blob.unlink(missing_ok=True)
            removed += 1
        return removed
