"""HTTP client for the campaign server (stdlib ``urllib`` only).

Small, dependency-free, and symmetric with the server's endpoints.  Two
pieces of client-side policy live here:

* **Transient-error retries** — every request in this API is idempotent
  (GETs trivially; job POSTs because submission is content-addressed
  dedup, heartbeats re-assert a lease, and completions coalesce on the
  server), so a dropped connection, a refused connect during a server
  restart, or a torn response is retried with capped exponential backoff
  plus jitter rather than surfaced.  HTTP *error responses* (4xx/5xx)
  are never blindly retried — the server answered; only 429
  backpressure gets its own loop in :meth:`ServiceClient.submit`,
  honoring the server's ``Retry-After``.
* **Polling** — :meth:`ServiceClient.run` submits and polls a job to
  completion; :meth:`ServiceClient.claim` long-polls the worker
  endpoint.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.service.spec import SimSpec

#: Connection-level failures safe to retry on idempotent requests.
TRANSIENT_ERRORS = (
    ConnectionError,
    http.client.HTTPException,
    TimeoutError,
)


class ServiceError(RuntimeError):
    """Non-success response from the campaign server."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class JobFailedError(ServiceError):
    """The server executed the job and it failed (state ``failed``)."""


class ServiceClient:
    """Talk to a :class:`repro.service.server.ServiceServer` (either front end)."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        transient_retries: int = 4,
        retry_backoff: float = 0.1,
        max_backoff: float = 2.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Connection-error retries per request (0 disables the policy).
        self.transient_retries = transient_retries
        self.retry_backoff = retry_backoff
        self.max_backoff = max_backoff

    # -- transport -------------------------------------------------------

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, Any], str]:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout if timeout is not None else self.timeout
            ) as response:
                raw = response.read().decode()
                status = response.status
                ctype = response.headers.get("Content-Type", "")
                retry_after = response.headers.get("Retry-After")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode()
            status = exc.code
            ctype = exc.headers.get("Content-Type", "") if exc.headers else ""
            retry_after = exc.headers.get("Retry-After") if exc.headers else None
        if "application/json" in ctype:
            payload = json.loads(raw)
            if status == 429 and retry_after and "retry_after" not in payload:
                # Honor the header even when the body omits the hint.
                try:
                    payload["retry_after"] = float(retry_after)
                except ValueError:
                    pass
            return status, payload, raw
        return status, {}, raw

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, Any], str]:
        """One logical request, with transient-connection-error retries.

        ``URLError`` (connection refused/reset, DNS hiccup), bare
        ``ConnectionError``, torn keep-alive responses
        (``http.client`` exceptions), and socket timeouts are retried
        ``transient_retries`` times with capped exponential backoff and
        full jitter; the final failure propagates to the caller.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, timeout=timeout)
            except (urllib.error.URLError, *TRANSIENT_ERRORS) as exc:
                if isinstance(exc, urllib.error.HTTPError):
                    raise  # a real HTTP response; never a transport failure
                if attempt >= self.transient_retries:
                    raise
                delay = min(
                    self.max_backoff, self.retry_backoff * (2 ** attempt)
                ) * (0.5 + random.random() / 2.0)
                attempt += 1
                time.sleep(delay)

    # -- endpoints -------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Raises :class:`ServiceError` on degraded (non-200) health."""
        status, payload, _ = self._request("GET", "/healthz")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def metrics(self) -> str:
        status, _, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, {"error": raw})
        return raw

    def submit(
        self,
        spec: SimSpec,
        priority: int = 0,
        max_backoff_retries: int = 5,
        backoff: float = 0.2,
    ) -> Dict[str, Any]:
        """``POST /jobs``; retries 429 backpressure with backoff."""
        body = spec.to_dict()
        if priority:
            body["priority"] = priority
        for attempt in range(max_backoff_retries + 1):
            status, payload, _ = self._request("POST", "/jobs", dict(body))
            if status in (200, 202):
                return payload
            if status == 429 and attempt < max_backoff_retries:
                time.sleep(
                    max(
                        float(payload.get("retry_after", 0)),
                        backoff * (2 ** attempt),
                    )
                )
                continue
            raise ServiceError(status, payload)
        raise ServiceError(429, payload)  # pragma: no cover — loop covers it

    def job(self, job_id: str) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", f"/jobs/{job_id}")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def result(self, fingerprint: str) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", f"/results/{fingerprint}")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def wait_job(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll ``GET /jobs/<id>`` until done/failed or ``timeout``."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["status"] == "done":
                return payload
            if payload["status"] == "failed":
                raise JobFailedError(500, payload)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['status']} after {timeout:g}s"
                )
            time.sleep(poll)

    def run(
        self,
        spec: SimSpec,
        priority: int = 0,
        timeout: float = 120.0,
        poll: float = 0.1,
    ) -> Dict[str, Any]:
        """Submit and wait: returns the terminal job payload."""
        payload = self.submit(spec, priority=priority)
        if payload["status"] == "done":
            return payload
        done = self.wait_job(payload["job_id"], timeout=timeout, poll=poll)
        done.setdefault("cached", False)
        return done

    # -- worker protocol (repro.service.fabric) --------------------------

    def claim(
        self, worker_id: str, max_jobs: int = 1, wait: float = 0.0
    ) -> Dict[str, Any]:
        """Long-poll ``GET /jobs/claim``: lease up to ``max_jobs`` specs.

        Returns the claim payload (``jobs``, ``lease_ttl``, ``timeout``,
        ``draining``); an empty ``jobs`` list after ``wait`` seconds
        means no work was available.
        """
        status, payload, _ = self._request(
            "GET",
            f"/jobs/claim?worker={worker_id}&max={max_jobs}&wait={wait:g}",
            timeout=self.timeout + wait,
        )
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def heartbeat(self, job_id: str, worker_id: str) -> bool:
        """Extend the lease; False = forfeit (abandon the execution)."""
        status, payload, _ = self._request(
            "POST", f"/jobs/{job_id}/heartbeat", {"worker": worker_id}
        )
        if status != 200:
            raise ServiceError(status, payload)
        return bool(payload.get("ok", False))

    def complete(
        self,
        job_id: str,
        worker_id: str,
        ok: bool,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> str:
        """Report an outcome; returns the server's coalescing verdict
        (``done``/``duplicate``/``stored``/``retry``/``failed``/``unknown``)."""
        body: Dict[str, Any] = {"worker": worker_id, "ok": ok}
        if ok:
            body["result"] = result if result is not None else {}
        else:
            body["error"] = error if error is not None else "worker error"
        status, payload, _ = self._request(
            "POST", f"/jobs/{job_id}/complete", body
        )
        if status != 200:
            raise ServiceError(status, payload)
        return str(payload.get("outcome", "unknown"))
