"""HTTP client for the campaign server (stdlib ``urllib`` only).

Small, dependency-free, and symmetric with the server's endpoints.  The
one piece of client-side policy lives in :meth:`ServiceClient.submit`:
429 backpressure is retried with exponential backoff (the server is
telling us it is at capacity, not that the request is wrong), and
:meth:`ServiceClient.run` polls a submitted job to completion.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.service.spec import SimSpec


class ServiceError(RuntimeError):
    """Non-success response from the campaign server."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class JobFailedError(ServiceError):
    """The server executed the job and it failed (state ``failed``)."""


class ServiceClient:
    """Talk to a :class:`repro.service.server.ServiceServer`."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any], str]:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read().decode()
                status = response.status
                ctype = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode()
            status = exc.code
            ctype = exc.headers.get("Content-Type", "") if exc.headers else ""
        if "application/json" in ctype:
            return status, json.loads(raw), raw
        return status, {}, raw

    # -- endpoints -------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", "/healthz")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def metrics(self) -> str:
        status, _, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, {"error": raw})
        return raw

    def submit(
        self,
        spec: SimSpec,
        priority: int = 0,
        max_backoff_retries: int = 5,
        backoff: float = 0.2,
    ) -> Dict[str, Any]:
        """``POST /jobs``; retries 429 backpressure with backoff."""
        body = spec.to_dict()
        if priority:
            body["priority"] = priority
        for attempt in range(max_backoff_retries + 1):
            status, payload, _ = self._request("POST", "/jobs", body)
            if status in (200, 202):
                return payload
            if status == 429 and attempt < max_backoff_retries:
                time.sleep(
                    max(
                        float(payload.get("retry_after", 0)),
                        backoff * (2 ** attempt),
                    )
                )
                continue
            raise ServiceError(status, payload)
        raise ServiceError(429, payload)  # pragma: no cover — loop covers it

    def job(self, job_id: str) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", f"/jobs/{job_id}")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def result(self, fingerprint: str) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", f"/results/{fingerprint}")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def wait_job(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll ``GET /jobs/<id>`` until done/failed or ``timeout``."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["status"] == "done":
                return payload
            if payload["status"] == "failed":
                raise JobFailedError(500, payload)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['status']} after {timeout:g}s"
                )
            time.sleep(poll)

    def run(
        self,
        spec: SimSpec,
        priority: int = 0,
        timeout: float = 120.0,
        poll: float = 0.1,
    ) -> Dict[str, Any]:
        """Submit and wait: returns the terminal job payload."""
        payload = self.submit(spec, priority=priority)
        if payload["status"] == "done":
            return payload
        done = self.wait_job(payload["job_id"], timeout=timeout, poll=poll)
        done.setdefault("cached", False)
        return done
