"""Simulation-as-a-service: content-addressed store, job queue, HTTP server.

The memoizing service layer over the simulator (see DESIGN.md):

* :mod:`repro.service.spec` — :class:`SimSpec`, the canonical identity
  of one simulation, and its executable form :func:`run_sim_spec`;
* :mod:`repro.service.store` — :class:`ResultStore`, fingerprint-keyed
  JSON blobs with atomic writes and LRU size capping;
* :mod:`repro.service.queue` — :class:`JobQueue` (dedup, priorities,
  timeout/retry) and :func:`run_campaign` (resumable manifest sweeps);
* :mod:`repro.service.server` / :mod:`repro.service.client` — the HTTP
  face (``repro serve`` / ``repro submit``);
* :mod:`repro.service.fabric` — the distributed fabric: asyncio front
  end, consistent-hash sharded storage, and remote worker pools
  (``repro serve --backend async`` / ``repro worker``).
"""

from repro.service.client import JobFailedError, ServiceClient, ServiceError
from repro.service.queue import (
    CampaignReport,
    JobQueue,
    JobRecord,
    QueueFull,
    run_campaign,
)
from repro.service.server import ServiceServer
from repro.service.fabric import (
    AsyncServiceServer,
    FabricWorker,
    ShardMap,
    ShardedResultStore,
    make_server,
    run_worker,
)
from repro.service.spec import SimSpec, run_sim_spec, sim_result_payload
from repro.service.store import (
    STORE_ENV_VAR,
    ResultStore,
    default_store_root,
    spec_fingerprint,
)

__all__ = [
    "AsyncServiceServer",
    "CampaignReport",
    "FabricWorker",
    "JobFailedError",
    "JobQueue",
    "JobRecord",
    "QueueFull",
    "ResultStore",
    "STORE_ENV_VAR",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ShardMap",
    "ShardedResultStore",
    "SimSpec",
    "default_store_root",
    "make_server",
    "run_campaign",
    "run_sim_spec",
    "run_worker",
    "sim_result_payload",
    "spec_fingerprint",
]
