"""Simulation-as-a-service: content-addressed store, job queue, HTTP server.

The memoizing service layer over the simulator (see DESIGN.md):

* :mod:`repro.service.spec` — :class:`SimSpec`, the canonical identity
  of one simulation, and its executable form :func:`run_sim_spec`;
* :mod:`repro.service.store` — :class:`ResultStore`, fingerprint-keyed
  JSON blobs with atomic writes and LRU size capping;
* :mod:`repro.service.queue` — :class:`JobQueue` (dedup, priorities,
  timeout/retry) and :func:`run_campaign` (resumable manifest sweeps);
* :mod:`repro.service.server` / :mod:`repro.service.client` — the HTTP
  face (``repro serve`` / ``repro submit``).
"""

from repro.service.client import JobFailedError, ServiceClient, ServiceError
from repro.service.queue import (
    CampaignReport,
    JobQueue,
    JobRecord,
    QueueFull,
    run_campaign,
)
from repro.service.server import ServiceServer
from repro.service.spec import SimSpec, run_sim_spec, sim_result_payload
from repro.service.store import (
    STORE_ENV_VAR,
    ResultStore,
    default_store_root,
    spec_fingerprint,
)

__all__ = [
    "CampaignReport",
    "JobFailedError",
    "JobQueue",
    "JobRecord",
    "QueueFull",
    "ResultStore",
    "STORE_ENV_VAR",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SimSpec",
    "default_store_root",
    "run_campaign",
    "run_sim_spec",
    "sim_result_payload",
    "spec_fingerprint",
]
