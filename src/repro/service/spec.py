"""Canonical simulation specs: the submission unit of the service.

A :class:`SimSpec` is the *complete* identity of one simulation — mesh
dimensions, fault derivation, scheme, traffic, measurement window, every
protocol knob, and the seed.  Two specs with equal canonical encodings
produce bit-identical results (the simulator is deterministic), which is
what makes content-addressed memoization sound: the fingerprint of the
spec *is* the identity of the result.

``run_sim_spec`` is the module-level executable form (picklable, so the
job queue can fan it over :func:`repro.parallel.run_jobs` workers); it
returns a plain-JSON payload so results cross process and HTTP
boundaries without a custom decoder.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.protocols import SCHEMES, make_scheme
from repro.sim.config import SimConfig
from repro.sim.deadlock import DeadlockMonitor
from repro.sim.engine import WindowResult, run_with_window
from repro.sim.network import Network
from repro.topology.faults import inject_link_faults, inject_router_faults
from repro.topology.mesh import Topology, mesh

#: Bump when a simulator change invalidates previously stored results.
#: Folded (with the package version) into every fingerprint salt.
SPEC_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SimSpec:
    """Everything that determines one simulation's outcome."""

    width: int = 8
    height: int = 8
    #: Optional non-mesh topology as a ``parse_topology`` string
    #: (``mesh3d:3x3x3``, ``circulant:11,2,5``, ``fullmesh:6``...).
    #: ``None`` means the classic ``width x height`` mesh, and is omitted
    #: from :meth:`to_dict` so every pre-existing stored fingerprint is
    #: unchanged.
    topology: Optional[str] = None
    #: Faults derived from the healthy mesh with ``random.Random(seed)``
    #: (the same derivation the ``simulate`` CLI uses).
    link_faults: int = 0
    router_faults: int = 0
    scheme: str = "static-bubble"
    pattern: str = "uniform_random"
    rate: float = 0.05
    warmup: int = 500
    measure: int = 2000
    vcs_per_vnet: int = 4
    vnets: int = 1
    sb_t_dd: int = 34
    seed: int = 1
    monitor: bool = False
    #: Execution engine (``reference`` | ``fast``).  Engines are
    #: bit-identical, so this is *not* part of the spec's result
    #: identity — see :func:`spec_identity`.
    engine: str = "reference"
    #: Answer lane (``exact`` | ``surrogate`` | ``auto``).  ``exact``
    #: always simulates; ``surrogate`` always answers from the
    #: calibrated analytical model (:mod:`repro.surrogate`); ``auto``
    #: answers from the surrogate only when its reported error bound is
    #: under the gate threshold, else escalates to simulation.  Like
    #: ``engine``, this selects *how* an answer is produced, not *what*
    #: the spec identifies — it is stripped from fingerprints.
    mode: str = "exact"

    def validate(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; have {sorted(SCHEMES)}"
            )
        if self.engine not in ("reference", "fast"):
            raise ValueError(
                f"unknown engine {self.engine!r}; have ('reference', 'fast')"
            )
        if self.mode not in ("exact", "surrogate", "auto"):
            raise ValueError(
                f"unknown mode {self.mode!r}; have ('exact', 'surrogate', 'auto')"
            )
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.topology is not None:
            from repro.topology.generators import parse_topology

            parse_topology(self.topology)  # raises ValueError on bad forms
        if self.warmup < 0 or self.measure < 1:
            raise ValueError("need warmup >= 0 and measure >= 1")
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("rate must be within [0, 1]")

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        if payload.get("topology") is None:
            # Mesh specs predate the field; omitting it keeps every
            # previously stored fingerprint valid.
            payload.pop("topology")
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimSpec":
        """Build from a client-supplied dict; unknown keys are an error.

        Rejecting unknown keys (rather than ignoring them) keeps the
        fingerprint honest — a typo'd parameter must not silently alias
        the default-parameter spec's cache entry.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown spec fields: {', '.join(unknown)}")
        spec = cls(**payload)
        spec.validate()
        return spec

    # -- materialization -------------------------------------------------

    def build_topology(self) -> Topology:
        if self.topology is not None:
            from repro.topology.generators import parse_topology

            topo = parse_topology(self.topology)
        else:
            topo = mesh(self.width, self.height)
        rng = random.Random(self.seed)
        if self.link_faults:
            topo = inject_link_faults(topo, self.link_faults, rng)
        if self.router_faults:
            topo = inject_router_faults(topo, self.router_faults, rng)
        return topo

    def build_config(self) -> SimConfig:
        return SimConfig(
            width=self.width,
            height=self.height,
            vnets=self.vnets,
            vcs_per_vnet=self.vcs_per_vnet,
            sb_t_dd=self.sb_t_dd,
        )


#: Spec fields that select *how* a result is computed, not *what* it is.
#: Excluded from content-address identity: both engines are bit-identical
#: (enforced by ``tests/test_fastcore_equivalence.py``), so a fast-engine
#: submission must hit the cache entry a reference-engine run produced.
#: ``mode`` likewise: an auto-mode submission that escalates must land on
#: (and later hit) the same stored result an exact submission produces.
EXECUTION_ONLY_FIELDS = ("engine", "mode")


def spec_identity(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """The fingerprint-bearing view of a spec dict.

    Strips execution-only knobs so specs differing only in engine
    coalesce onto one stored result.  Non-``SimSpec`` spec shapes pass
    through unchanged (minus any identically-named execution field).
    """
    if not any(field in spec_dict for field in EXECUTION_ONLY_FIELDS):
        return spec_dict
    trimmed = dict(spec_dict)
    for field in EXECUTION_ONLY_FIELDS:
        trimmed.pop(field, None)
    return trimmed


def sim_result_payload(
    spec: SimSpec, result: WindowResult, network: Network
) -> Dict[str, Any]:
    """Plain-JSON result payload (the blob the store persists).

    The same shape serves ``simulate --json``, ``POST /jobs`` responses,
    and ``GET /results/<fingerprint>`` — one serializer, three surfaces.
    """
    return {
        "spec": spec.to_dict(),
        "result": dataclasses.asdict(result),
        "stats": network.stats.summary(),
        "topology": network.topo.to_spec(),
    }


def run_sim_spec(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one spec; module-level so it pickles to pool workers."""
    spec = SimSpec.from_dict(dict(spec_dict))
    topo = spec.build_topology()
    traffic_kwargs = {"vnets": spec.vnets}
    from repro.traffic.synthetic import make_pattern

    traffic = make_pattern(
        spec.pattern, topo, spec.rate, seed=spec.seed, **traffic_kwargs
    )
    network = Network(
        topo,
        spec.build_config(),
        make_scheme(spec.scheme),
        traffic,
        seed=spec.seed,
        engine=spec.engine,
    )
    result = run_with_window(
        network,
        warmup=spec.warmup,
        measure=spec.measure,
        monitor=DeadlockMonitor() if spec.monitor else None,
    )
    return sim_result_payload(spec, result, network)
