"""repro — full reproduction of "Static Bubble: A Framework for
Deadlock-free Irregular On-chip Topologies" (Ramrakhyani & Krishna,
HPCA 2017).

Quick start::

    from repro import (
        mesh, inject_link_faults, SimConfig, Network,
        StaticBubbleScheme, UniformRandomTraffic, run_with_window,
    )
    import random

    topo = inject_link_faults(mesh(8, 8), 6, random.Random(7))
    config = SimConfig()
    traffic = UniformRandomTraffic(topo, rate=0.05, seed=7)
    net = Network(topo, config, StaticBubbleScheme(), traffic, seed=7)
    result = run_with_window(net, warmup=500, measure=1500)
    print(result.avg_latency, result.throughput_flits_node_cycle)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.core import (
    CounterFsm,
    FsmAction,
    FsmState,
    Port,
    Turn,
    bubble_count,
    has_static_bubble,
    placement,
    placement_map,
    placement_node_ids,
)
from repro.topology import (
    Topology,
    inject_link_faults,
    inject_router_faults,
    mesh,
    sample_topologies,
)
from repro.routing import (
    build_minimal_tables,
    build_updown_tables,
    minimal_routes,
    xy_route,
)
from repro.sim import (
    DeadlockMonitor,
    Network,
    SimConfig,
    deadlocks_within,
    run_to_drain,
    run_with_window,
)
from repro.protocols import (
    EscapeVcRecovery,
    MinimalUnprotected,
    SpanningTreeAvoidance,
    StaticBubbleScheme,
    make_scheme,
)
from repro.traffic import (
    BitComplementTraffic,
    TraceTraffic,
    UniformRandomTraffic,
    parsec_trace,
    rodinia_trace,
)
from repro.energy import EnergyModel, network_edp

__version__ = "1.0.0"

__all__ = [
    "CounterFsm",
    "FsmAction",
    "FsmState",
    "Port",
    "Turn",
    "bubble_count",
    "has_static_bubble",
    "placement",
    "placement_map",
    "placement_node_ids",
    "Topology",
    "inject_link_faults",
    "inject_router_faults",
    "mesh",
    "sample_topologies",
    "build_minimal_tables",
    "build_updown_tables",
    "minimal_routes",
    "xy_route",
    "DeadlockMonitor",
    "Network",
    "SimConfig",
    "deadlocks_within",
    "run_to_drain",
    "run_with_window",
    "EscapeVcRecovery",
    "MinimalUnprotected",
    "SpanningTreeAvoidance",
    "StaticBubbleScheme",
    "make_scheme",
    "BitComplementTraffic",
    "TraceTraffic",
    "UniformRandomTraffic",
    "parsec_trace",
    "rodinia_trace",
    "EnergyModel",
    "network_edp",
    "__version__",
]
