"""Spanning trees and up*/down* routing (the paper's first baseline).

State-of-the-art resiliency/power-gating works (Ariadne, uDIREC, Panthre)
achieve deadlock freedom on irregular topologies by building a spanning
tree over the surviving network and applying *up*/down** routing: links
toward the root are "up", links away are "down" (ties broken by node id),
and the down->up turn is forbidden.  Any up*down* path is deadlock-free;
the cost is non-minimal routes and reduced path diversity — exactly the
penalty Static Bubble removes.

This module provides:

* :class:`SpanningTree` — BFS tree over a component with the up/down
  ordering (root chosen to minimize total distance, a common heuristic;
  the paper notes optimal root selection is an exponential search).
* :func:`updown_route` — shortest up*/down*-valid route over *all* active
  links (used by the spanning-tree avoidance baseline's source routing).
* :func:`tree_next_hop_tables` — pure tree routing next-hop tables (used
  by the escape-VC baseline's per-router escape tables, a la Router
  Parking).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.routing.paths import Route, bfs_distances, node_path_to_route
from repro.topology.base import BaseTopology as Topology


class SpanningTree:
    """BFS spanning tree of one connected component with up/down ordering."""

    def __init__(self, topo: Topology, root: int) -> None:
        if not topo.node_is_active(root):
            raise ValueError(f"root {root} is not active")
        self.topo = topo
        self.root = root
        self.parent: Dict[int, Optional[int]] = {root: None}
        self.depth: Dict[int, int] = {root: 0}
        self.children: Dict[int, List[int]] = {root: []}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for _, neighbor in sorted(topo.active_neighbors(node), key=lambda p: p[1]):
                if neighbor not in self.depth:
                    self.depth[neighbor] = self.depth[node] + 1
                    self.parent[neighbor] = node
                    self.children.setdefault(node, []).append(neighbor)
                    self.children.setdefault(neighbor, [])
                    queue.append(neighbor)

    def covers(self, node: int) -> bool:
        return node in self.depth

    def nodes(self) -> Set[int]:
        return set(self.depth)

    def order_key(self, node: int) -> Tuple[int, int]:
        """Total order: closer to the root (then lower id) is 'higher up'."""
        return (self.depth[node], node)

    def edge_is_up(self, u: int, v: int) -> bool:
        """True iff traversing the u->v channel moves 'up' (toward the root)."""
        return self.order_key(v) < self.order_key(u)

    def tree_path(self, src: int, dst: int) -> List[int]:
        """The unique tree path src -> ... -> dst (up to LCA, then down)."""
        if not (self.covers(src) and self.covers(dst)):
            raise ValueError("src/dst outside the tree's component")
        up_src, up_dst = [src], [dst]
        a, b = src, dst
        while a != b:
            if self.depth[a] >= self.depth[b]:
                a = self.parent[a]
                up_src.append(a)
            else:
                b = self.parent[b]
                up_dst.append(b)
        return up_src + up_dst[-2::-1]


def choose_root(topo: Topology, component: Set[int]) -> int:
    """Pick the node minimizing total BFS distance within its component.

    A centroid-ish root keeps up*/down* detours short — the standard
    heuristic stand-in for the exponential optimal-root search the paper
    mentions.
    """
    best_node, best_cost = None, None
    for node in sorted(component):
        dist = bfs_distances(topo, node)
        cost = sum(dist[n] for n in component if n in dist)
        if best_cost is None or cost < best_cost:
            best_node, best_cost = node, cost
    if best_node is None:
        raise ValueError("empty component")
    return best_node


def build_spanning_trees(topo: Topology) -> List[SpanningTree]:
    """One spanning tree per connected component (largest first)."""
    from repro.topology.graph import connected_components

    trees = []
    for component in connected_components(topo):
        root = choose_root(topo, component)
        trees.append(SpanningTree(topo, root))
    return trees


def updown_route(
    topo: Topology, tree: SpanningTree, src: int, dst: int
) -> Optional[Route]:
    """Shortest up*/down*-valid port route over all active links.

    BFS over states ``(node, has_gone_down)``; taking an up channel after
    any down channel is forbidden.  Uses *all* active links of the
    component (not just tree links) — up*/down* only constrains turn
    order, which is how Ariadne-style reconfiguration works.
    Returns ``None`` when src/dst are not in the tree's component.
    """
    if not (tree.covers(src) and tree.covers(dst)):
        return None
    if src == dst:
        return (topo.local_port,)
    start = (src, False)
    parent_state: Dict[Tuple[int, bool], Tuple[int, bool]] = {start: start}
    queue = deque([start])
    goal: Optional[Tuple[int, bool]] = None
    while queue and goal is None:
        node, gone_down = queue.popleft()
        for _, neighbor in topo.active_neighbors(node):
            if not tree.covers(neighbor):
                continue
            edge_up = tree.edge_is_up(node, neighbor)
            if gone_down and edge_up:
                continue  # the forbidden down -> up turn
            state = (neighbor, gone_down or not edge_up)
            if state in parent_state:
                continue
            parent_state[state] = (node, gone_down)
            if neighbor == dst:
                goal = state
                break
            queue.append(state)
    if goal is None:
        # Both down-state goals missed; check the other polarity too.
        for flag in (False, True):
            if (dst, flag) in parent_state:
                goal = (dst, flag)
                break
    if goal is None:
        return None
    nodes: List[int] = []
    state = goal
    while True:
        nodes.append(state[0])
        prev = parent_state[state]
        if prev == state:
            break
        state = prev
    nodes.reverse()
    return node_path_to_route(topo, nodes)


def tree_next_hop_tables(
    topo: Topology, tree: SpanningTree
) -> Dict[int, Dict[int, int]]:
    """Per-router next-hop (output port) tables for pure tree routing.

    ``tables[node][dst]`` is the output port at ``node`` toward ``dst``
    along the unique tree path: down into the subtree containing ``dst``
    if there is one, else up to the parent.  Tree routing is trivially
    up*/down*-valid and hence deadlock-free — it is the escape path used
    by the escape-VC baseline.
    """
    # For each node, which subtree (child) each destination lives under.
    tables: Dict[int, Dict[int, int]] = {n: {} for n in tree.nodes()}

    # Iterative post-order to avoid recursion limits on long chains.
    subtree: Dict[int, Set[int]] = {}
    stack: List[Tuple[int, bool]] = [(tree.root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            acc = {node}
            for child in tree.children.get(node, []):
                acc |= subtree[child]
            subtree[node] = acc
        else:
            stack.append((node, True))
            for child in tree.children.get(node, []):
                stack.append((child, False))

    local = topo.local_port
    for node in tree.nodes():
        parent = tree.parent[node]
        for dst in tree.nodes():
            if dst == node:
                tables[node][dst] = local
                continue
            port: Optional[int] = None
            for child in tree.children.get(node, []):
                if dst in subtree[child]:
                    port = topo.port_between(node, child)
                    break
            if port is None:
                if parent is None:
                    raise RuntimeError("destination not under root subtree")
                port = topo.port_between(node, parent)
            tables[node][dst] = port
    return tables
