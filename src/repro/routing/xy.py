"""Dimension-ordered XY routing (deadlock-free on a fault-free mesh).

Included as the conventional regular-mesh baseline the paper contrasts
against (Section II-A): route all the way in X (East/West) first, then in
Y (North/South).  XY is *not* applicable once the topology is irregular —
the tests demonstrate that it fails to deliver packets across faults,
which is the paper's motivation.
"""

from __future__ import annotations

from typing import List

from repro.core.turns import Port
from repro.routing.paths import Route
from repro.topology.mesh import Topology


def xy_route(topo: Topology, src: int, dst: int) -> Route:
    """The XY route from src to dst on the underlying full mesh."""
    sx, sy = topo.coords(src)
    dx, dy = topo.coords(dst)
    ports: List[Port] = []
    step_x = Port.EAST if dx > sx else Port.WEST
    ports.extend([step_x] * abs(dx - sx))
    step_y = Port.NORTH if dy > sy else Port.SOUTH
    ports.extend([step_y] * abs(dy - sy))
    ports.append(Port.LOCAL)
    return tuple(ports)


def xy_route_is_usable(topo: Topology, src: int, dst: int) -> bool:
    """True iff the XY route only uses active links/routers."""
    node = src
    for port in xy_route(topo, src, dst)[:-1]:
        nxt = topo.neighbor(node, port)
        if nxt is None or not topo.link_is_active(node, nxt):
            return False
        node = nxt
    return topo.node_is_active(dst)
