"""Source-routing tables held at each network interface (Section II-D).

The paper leverages prior reconfiguration work: on every topology change,
software/hardware identifies connectivity and populates a routing table
at every source NI; each packet is injected carrying its full route.  We
model the populated tables directly (reconfiguration cost is assumed zero
for the baselines too, matching Section V-B).

Builders:

* :func:`build_minimal_tables` — up to ``max_paths`` minimal routes per
  destination (Static Bubble / escape-VC normal path / unprotected).
* :func:`build_updown_tables` — single up*/down* route per destination
  (spanning-tree avoidance baseline).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.routing.paths import Route, bfs_distances, minimal_routes
from repro.routing.spanning_tree import (
    SpanningTree,
    build_spanning_trees,
    updown_route,
)
from repro.topology.mesh import Topology


class RoutingTable:
    """Routes from one source node to every reachable destination."""

    def __init__(self, source: int) -> None:
        self.source = source
        self._routes: Dict[int, List[Route]] = {}

    def add_route(self, dst: int, route: Route) -> None:
        self._routes.setdefault(dst, []).append(route)

    def destinations(self) -> List[int]:
        return sorted(self._routes)

    def has_route(self, dst: int) -> bool:
        return dst in self._routes

    def routes(self, dst: int) -> List[Route]:
        return self._routes.get(dst, [])

    def pick_route(self, dst: int, rng: random.Random) -> Optional[Route]:
        """Uniformly random choice among the stored routes (paper fn. 1)."""
        options = self._routes.get(dst)
        if not options:
            return None
        if len(options) == 1:
            return options[0]
        return options[rng.randrange(len(options))]


def build_minimal_tables(
    topo: Topology, max_paths: int = 4
) -> Dict[int, RoutingTable]:
    """Minimal-route tables for every active node.

    Per-destination BFS keeps this at ``O(nodes * edges)`` plus path
    enumeration; adequate up to the 16x16 meshes used here.
    """
    tables = {node: RoutingTable(node) for node in topo.active_nodes()}
    for dst in topo.active_nodes():
        dist = bfs_distances(topo, dst)
        for src in dist:
            if src == dst:
                continue
            for route in minimal_routes(topo, src, dst, max_paths, dist):
                tables[src].add_route(dst, route)
    return tables


def build_updown_tables(
    topo: Topology, trees: Optional[List[SpanningTree]] = None
) -> Dict[int, RoutingTable]:
    """Up*/down* route tables (one route per destination) per active node."""
    if trees is None:
        trees = build_spanning_trees(topo)
    tables = {node: RoutingTable(node) for node in topo.active_nodes()}
    for tree in trees:
        members = sorted(tree.nodes())
        for src in members:
            for dst in members:
                if src == dst:
                    continue
                route = updown_route(topo, tree, src, dst)
                if route is not None:
                    tables[src].add_route(dst, route)
    return tables
