"""Source-routing tables held at each network interface (Section II-D).

The paper leverages prior reconfiguration work: on every topology change,
software/hardware identifies connectivity and populates a routing table
at every source NI; each packet is injected carrying its full route.  We
model the populated tables directly (reconfiguration cost is assumed zero
for the baselines too, matching Section V-B).

Builders:

* :func:`build_minimal_tables` — up to ``max_paths`` minimal routes per
  destination (Static Bubble / escape-VC normal path / unprotected).
* :func:`build_updown_tables` — single up*/down* route per destination
  (spanning-tree avoidance baseline).
"""

from __future__ import annotations

import json
import os
import random
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.routing.paths import Route, bfs_distances, minimal_routes
from repro.routing.spanning_tree import (
    SpanningTree,
    build_spanning_trees,
    updown_route,
)
from repro.topology.mesh import Topology


class RoutingTable:
    """Routes from one source node to every reachable destination."""

    def __init__(self, source: int) -> None:
        self.source = source
        self._routes: Dict[int, List[Route]] = {}

    def add_route(self, dst: int, route: Route) -> None:
        self._routes.setdefault(dst, []).append(route)

    def destinations(self) -> List[int]:
        return sorted(self._routes)

    def has_route(self, dst: int) -> bool:
        return dst in self._routes

    def routes(self, dst: int) -> List[Route]:
        return self._routes.get(dst, [])

    def pick_route(self, dst: int, rng: random.Random) -> Optional[Route]:
        """Uniformly random choice among the stored routes (paper fn. 1)."""
        options = self._routes.get(dst)
        if not options:
            return None
        if len(options) == 1:
            return options[0]
        return options[rng.randrange(len(options))]


#: Set ``REPRO_TABLE_CACHE=0`` to disable table memoization (debugging,
#: or workloads that mutate tables in place — none in this tree do).
TABLE_CACHE_ENV_VAR = "REPRO_TABLE_CACHE"

#: Per-process memo: canonical topology spec -> built tables.  Batched
#: campaign workers run many cells that differ only in rate/seed on the
#: same sampled topology; table construction (hundreds of ms at 8x8) is
#: a pure function of the topology, so one build serves the whole batch.
#: Bounded LRU so a long-lived campaign worker cannot grow unboundedly.
_TABLE_CACHE_MAX = 64
_table_cache: "OrderedDict[tuple, Dict[int, RoutingTable]]" = OrderedDict()


def table_cache_enabled() -> bool:
    return os.environ.get(TABLE_CACHE_ENV_VAR, "").strip().lower() not in (
        "0", "false", "no", "off",
    )


def clear_table_cache() -> None:
    _table_cache.clear()


def _cache_key(kind: str, topo: Topology, extra: object) -> tuple:
    # ``to_spec`` records only sorted deviations from the healthy mesh,
    # so equal post-fault states key identically regardless of the fault
    # order that produced them.
    return (kind, json.dumps(topo.to_spec(), sort_keys=True), extra)


def _cache_get(key: tuple) -> Optional[Dict[int, RoutingTable]]:
    tables = _table_cache.get(key)
    if tables is not None:
        _table_cache.move_to_end(key)
        # Share the (read-only) RoutingTable objects but not the dict, so
        # a caller reshaping its mapping cannot corrupt the cache.
        return dict(tables)
    return None


def _cache_put(key: tuple, tables: Dict[int, RoutingTable]) -> None:
    _table_cache[key] = dict(tables)
    while len(_table_cache) > _TABLE_CACHE_MAX:
        _table_cache.popitem(last=False)


def build_minimal_tables(
    topo: Topology, max_paths: int = 4
) -> Dict[int, RoutingTable]:
    """Minimal-route tables for every active node.

    Per-destination BFS keeps this at ``O(nodes * edges)`` plus path
    enumeration; adequate up to the 16x16 meshes used here.  Results are
    memoized per process on the canonical topology spec (tables are pure
    functions of the topology and read-only after construction); disable
    with ``REPRO_TABLE_CACHE=0``.
    """
    caching = table_cache_enabled()
    if caching:
        key = _cache_key("minimal", topo, max_paths)
        cached = _cache_get(key)
        if cached is not None:
            return cached
    tables = {node: RoutingTable(node) for node in topo.active_nodes()}
    for dst in topo.active_nodes():
        dist = bfs_distances(topo, dst)
        for src in dist:
            if src == dst:
                continue
            for route in minimal_routes(topo, src, dst, max_paths, dist):
                tables[src].add_route(dst, route)
    if caching:
        _cache_put(key, tables)
    return tables


def build_updown_tables(
    topo: Topology, trees: Optional[List[SpanningTree]] = None
) -> Dict[int, RoutingTable]:
    """Up*/down* route tables (one route per destination) per active node.

    Memoized like :func:`build_minimal_tables`, but only for the default
    tree derivation — caller-supplied ``trees`` bypass the cache (their
    identity is not part of the topology spec).
    """
    caching = trees is None and table_cache_enabled()
    if caching:
        key = _cache_key("updown", topo, None)
        cached = _cache_get(key)
        if cached is not None:
            return cached
    if trees is None:
        trees = build_spanning_trees(topo)
    tables = {node: RoutingTable(node) for node in topo.active_nodes()}
    for tree in trees:
        members = sorted(tree.nodes())
        for src in members:
            for dst in members:
                if src == dst:
                    continue
                route = updown_route(topo, tree, src, dst)
                if route is not None:
                    tables[src].add_route(dst, route)
    if caching:
        _cache_put(key, tables)
    return tables
