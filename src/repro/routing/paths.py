"""Minimal-path enumeration over (irregular) topologies.

Minimal routes are the paper's default for escape-VC and Static Bubble
schemes: every packet follows a shortest path in the *current* topology
graph, chosen uniformly at random among the available minimal paths at
injection time (deadlock-prone by design — recovery handles the rest).

A route is a tuple of output ports: element ``i`` is the port taken at
the ``i``-th router on the path, and the final element is the topology's
local port (ejection at the destination) — ``Port.LOCAL`` on the 2D
mesh, ``topo.local_port`` in general.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.base import BaseTopology as Topology

Route = Tuple[int, ...]


def bfs_distances(topo: Topology, source: int) -> Dict[int, int]:
    """Hop distances from ``source`` over active links (same component)."""
    if not topo.node_is_active(source):
        return {}
    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for _, neighbor in topo.active_neighbors(node):
            if neighbor not in dist:
                dist[neighbor] = dist[node] + 1
                queue.append(neighbor)
    return dist


def minimal_node_paths(
    topo: Topology,
    src: int,
    dst: int,
    max_paths: int = 4,
    dist_to_dst: Optional[Dict[int, int]] = None,
) -> List[List[int]]:
    """Up to ``max_paths`` distinct shortest node-paths from src to dst.

    Enumerated by walking strictly "downhill" on BFS distances to the
    destination, depth-first; the cap bounds work on highly diverse
    meshes.  Returns ``[]`` when dst is unreachable.
    """
    if src == dst:
        return [[src]]
    if dist_to_dst is None:
        dist_to_dst = bfs_distances(topo, dst)
    if src not in dist_to_dst:
        return []
    paths: List[List[int]] = []
    stack: List[List[int]] = [[src]]
    while stack and len(paths) < max_paths:
        path = stack.pop()
        node = path[-1]
        if node == dst:
            paths.append(path)
            continue
        here = dist_to_dst[node]
        for _, neighbor in topo.active_neighbors(node):
            if dist_to_dst.get(neighbor, -1) == here - 1:
                stack.append(path + [neighbor])
    return paths


def node_path_to_route(topo: Topology, node_path: Sequence[int]) -> Route:
    """Convert a node path into a port route (ending with ejection)."""
    ports: List[int] = []
    for u, v in zip(node_path, node_path[1:]):
        ports.append(topo.port_between(u, v))
    ports.append(topo.local_port)
    return tuple(ports)


def minimal_routes(
    topo: Topology,
    src: int,
    dst: int,
    max_paths: int = 4,
    dist_to_dst: Optional[Dict[int, int]] = None,
) -> List[Route]:
    """Up to ``max_paths`` minimal port-routes from src to dst."""
    return [
        node_path_to_route(topo, path)
        for path in minimal_node_paths(topo, src, dst, max_paths, dist_to_dst)
    ]


def route_node_sequence(topo: Topology, src: int, route: Route) -> List[int]:
    """Nodes visited by ``route`` starting at ``src`` (inverse of above)."""
    nodes = [src]
    for port in route[:-1]:
        nxt = topo.neighbor(nodes[-1], port)
        if nxt is None:
            raise ValueError("route walks off the mesh")
        nodes.append(nxt)
    return nodes


def route_is_valid(topo: Topology, src: int, dst: int, route: Route) -> bool:
    """Check a route traverses only active links and ends at ``dst``."""
    local = topo.local_port
    if not route or route[-1] != local:
        return False
    node = src
    for port in route[:-1]:
        if port == local:
            return False
        nxt = topo.neighbor(node, port)
        if nxt is None or not topo.link_is_active(node, nxt):
            return False
        node = nxt
    return node == dst
