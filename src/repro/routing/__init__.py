"""Routing: minimal paths, XY, spanning-tree up*/down*, and NI tables."""

from repro.routing.paths import (
    Route,
    bfs_distances,
    minimal_node_paths,
    minimal_routes,
    node_path_to_route,
    route_is_valid,
    route_node_sequence,
)
from repro.routing.xy import xy_route, xy_route_is_usable
from repro.routing.spanning_tree import (
    SpanningTree,
    build_spanning_trees,
    choose_root,
    tree_next_hop_tables,
    updown_route,
)
from repro.routing.table import (
    RoutingTable,
    TABLE_CACHE_ENV_VAR,
    build_minimal_tables,
    build_updown_tables,
    clear_table_cache,
    table_cache_enabled,
)

__all__ = [
    "Route",
    "bfs_distances",
    "minimal_node_paths",
    "minimal_routes",
    "node_path_to_route",
    "route_is_valid",
    "route_node_sequence",
    "xy_route",
    "xy_route_is_usable",
    "SpanningTree",
    "build_spanning_trees",
    "choose_root",
    "tree_next_hop_tables",
    "updown_route",
    "RoutingTable",
    "TABLE_CACHE_ENV_VAR",
    "build_minimal_tables",
    "build_updown_tables",
    "clear_table_cache",
    "table_cache_enabled",
]
