"""Dimension-ordered (XYZ) routing on 3D grids.

The 3D analog of :mod:`repro.routing.xy`: resolve the X offset first,
then Y, then Z.  On a fault-free 3D *mesh* this is minimal and
deadlock-free (each dimension is an acyclic chain and transitions only
go X->Y->Z).  On a *torus* plain DOR is cyclic — the wraparound rings
deadlock without dateline VCs — so the torus generator relies on
minimal routing plus a recovery scheme instead; :func:`xyz_route`
therefore always steps the non-wrapping (mesh) way.
"""

from __future__ import annotations

from typing import Dict, List

from repro.routing.paths import Route
from repro.routing.table import RoutingTable
from repro.topology.generators import Grid3D


def xyz_route(topo: Grid3D, src: int, dst: int) -> Route:
    """The XYZ dimension-ordered route on the underlying full grid."""
    sx, sy, sz = topo.coords3(src)
    dx, dy, dz = topo.coords3(dst)
    ports: List[int] = []
    # Port pairs per dimension: 2*d steps +1, 2*d + 1 steps -1.
    for d, (here, there) in enumerate(((sx, dx), (sy, dy), (sz, dz))):
        step = 2 * d if there > here else 2 * d + 1
        ports.extend([step] * abs(there - here))
    ports.append(topo.local_port)
    return tuple(ports)


def xyz_route_is_usable(topo: Grid3D, src: int, dst: int) -> bool:
    """True iff the XYZ route only uses active links/routers."""
    node = src
    for port in xyz_route(topo, src, dst)[:-1]:
        nxt = topo.neighbor(node, port)
        if nxt is None or not topo.link_is_active(node, nxt):
            return False
        node = nxt
    return topo.node_is_active(dst)


def build_dor_tables(topo: Grid3D) -> Dict[int, RoutingTable]:
    """Single-route XYZ tables for every active pair whose route survives.

    Like XY on the 2D mesh, DOR is not applicable once the grid is
    irregular: pairs whose dimension-ordered route crosses a fault simply
    get no route (the tests demonstrate the resulting delivery loss,
    which is the paper's motivation for topology-agnostic schemes).
    """
    if topo.wrap:
        raise ValueError("dimension-ordered routing requires the 3D mesh, not a torus")
    tables = {node: RoutingTable(node) for node in topo.active_nodes()}
    for src in topo.active_nodes():
        for dst in topo.active_nodes():
            if src == dst:
                continue
            if xyz_route_is_usable(topo, src, dst):
                tables[src].add_route(dst, xyz_route(topo, src, dst))
    return tables
