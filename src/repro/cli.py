"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``placement WIDTH HEIGHT`` — print the static-bubble placement map and
  the Equation-1 count for a mesh.
* ``simulate`` — run one simulation (topology, faults, scheme, traffic)
  and print the measured statistics.
* ``experiment NAME`` — run one of the paper's experiments (``fig2`` ...
  ``fig13``, ``table1``) in quick or full mode and print its report;
  ``--obs`` aggregates the observability metrics registry across sweep
  workers and prints it after the report.
* ``trace`` — run a scenario or synthetic simulation with the tracing
  observer attached; export JSONL / Chrome ``trace_event`` files and
  print the stitched recovery transcripts.
* ``chaos`` — sweep random live-fault schedules (mid-run link/router
  failures and restores applied in place) across the schemes and check
  packet conservation; ``--check`` exits nonzero on any undrained run or
  unaccounted packet (the CI smoke gate).
* ``verify`` — machine-check a scheme's deadlock-freedom claim on a
  (possibly faulted) mesh: CDG certificate (acyclicity or static-bubble
  cycle cover) with a concrete counterexample cycle on failure, and
  optionally the exhaustive recovery-protocol model check
  (``--model-check ring2x2``).  Exits 1 on any failed claim.
* ``serve`` — run the HTTP campaign server (``repro.service``): submit
  simulation specs over ``POST /jobs``, get memoized results from the
  content-addressed store, scrape ``GET /metrics``.  ``--backend async``
  swaps in the event-loop front end; ``--shard``/``--shard-map`` swap in
  the consistent-hash sharded store (:mod:`repro.service.fabric`).
* ``worker`` — remote worker pool member: long-poll a campaign server
  for leased jobs, execute them locally, and report results with
  at-least-once delivery (heartbeats, idempotent completion).
* ``shards`` — inspect (``status``) or rebalance a sharded result store
  described by a shard-map JSON file.
* ``submit`` — client for ``serve``: post one simulation spec (the same
  knobs as ``simulate``) and optionally wait for the result;
  ``--mode surrogate|auto`` rides the calibrated analytical fast lane.
* ``predict`` — answer one spec from the local surrogate
  (:mod:`repro.surrogate`) without a server: calibrated prediction,
  explicit error bound, and provenance in milliseconds.
* ``schemes`` — list the available deadlock-freedom schemes.

``simulate``, ``experiment``, ``verify``, and ``submit`` all take
``--json`` for structured output through the shared serializer
(:mod:`repro.utils.serialize`) — the same encoding the service store
persists.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from typing import List, Optional

from repro.core.placement import bubble_count, placement_map
from repro.experiments import ALL_EXPERIMENTS
from repro.obs import (
    OBS_ENV_VAR,
    Observer,
    proc_registry,
    write_chrome_trace,
    write_jsonl,
)
from repro.protocols import SCHEMES, make_scheme
from repro.sim.config import SimConfig
from repro.sim.deadlock import DeadlockMonitor
from repro.sim.engine import run_with_window
from repro.sim.network import Network
from repro.sim.scenarios import SCENARIOS, build_scenario
from repro.topology.faults import inject_link_faults, inject_router_faults
from repro.topology.mesh import mesh
from repro.traffic.synthetic import make_pattern
from repro.utils.reporting import format_table


def _cmd_placement(args: argparse.Namespace) -> int:
    print(placement_map(args.width, args.height))
    print(
        f"\n{bubble_count(args.width, args.height)} static bubbles in a "
        f"{args.width}x{args.height} mesh "
        f"({args.width * args.height} routers)."
    )
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    rows = [
        ["minimal-unprotected", "random-minimal routes, no protection (Fig. 2/3)"],
        ["xy", "dimension-ordered XY (healthy meshes only)"],
        ["spanning-tree", "up*/down* avoidance over a spanning tree (baseline 1)"],
        ["escape-vc", "minimal + reserved escape VCs on a tree (baseline 2)"],
        ["static-bubble", "the paper's contribution: minimal + bubble recovery"],
        ["adaptive", "congestion-aware minimal selection + bubble recovery"],
        ["adaptive-escape", "congestion-aware minimal selection + escape VCs"],
    ]
    print(format_table(["scheme", "description"], rows))
    return 0


def _simulate_spec_from_args(args: argparse.Namespace) -> "SimSpec":
    from repro.service.spec import SimSpec

    return SimSpec(
        width=args.width,
        height=args.height,
        topology=getattr(args, "topology", None),
        link_faults=args.link_faults,
        router_faults=args.router_faults,
        scheme=args.scheme,
        pattern=args.pattern,
        rate=args.rate,
        warmup=args.warmup,
        measure=args.cycles,
        vcs_per_vnet=args.vcs,
        sb_t_dd=args.t_dd,
        seed=args.seed,
        monitor=getattr(args, "monitor", False),
        engine=_resolve_engine_arg(args),
        mode=getattr(args, "mode", None) or "exact",
    )


def _resolve_engine_arg(args: argparse.Namespace) -> str:
    from repro.experiments.common import resolve_engine

    return resolve_engine(getattr(args, "engine", None))


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.topology:
        from repro.topology.generators import parse_topology

        try:
            topo = parse_topology(args.topology)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    else:
        topo = mesh(args.width, args.height)
    rng = random.Random(args.seed)
    if args.link_faults:
        topo = inject_link_faults(topo, args.link_faults, rng)
    if args.router_faults:
        topo = inject_router_faults(topo, args.router_faults, rng)
    config = SimConfig(
        width=args.width,
        height=args.height,
        vcs_per_vnet=args.vcs,
        sb_t_dd=args.t_dd,
    )
    traffic = make_pattern(args.pattern, topo, args.rate, seed=args.seed)
    scheme = make_scheme(args.scheme)
    if args.verify_first:
        cert = scheme.verify(topo, config)
        if not args.json:
            print(cert.describe())
        if not cert.ok:
            print(
                "certification failed; aborting simulation", file=sys.stderr
            )
            return 1
        if not args.json:
            print()
    network = Network(
        topo, config, scheme, traffic, seed=args.seed,
        engine=_resolve_engine_arg(args),
    )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    result = run_with_window(
        network,
        warmup=args.warmup,
        measure=args.cycles,
        monitor=DeadlockMonitor() if args.monitor else None,
    )
    if profiler is not None:
        import pstats

        profiler.disable()
        profile_stats = pstats.Stats(profiler, stream=sys.stderr)
        profile_stats.sort_stats("cumulative").print_stats(25)
        if args.profile_out:
            profile_stats.dump_stats(args.profile_out)
            print(f"profile written to {args.profile_out}", file=sys.stderr)
    stats = network.stats
    if args.json:
        import json

        from repro.service.spec import sim_result_payload

        payload = sim_result_payload(_simulate_spec_from_args(args), result, network)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        ["topology", repr(topo)],
        ["scheme", args.scheme],
        ["offered load (flits/node/cyc)", args.rate],
        ["avg latency (cycles)", f"{result.avg_latency:.2f}"],
        ["accepted thr (flits/node/cyc)", f"{result.throughput_flits_node_cycle:.4f}"],
        ["packets injected / ejected", f"{stats.packets_injected} / {stats.packets_ejected}"],
        ["probes sent", stats.probes_sent],
        ["bubble activations", stats.bubble_activations],
        ["recoveries completed", stats.recoveries_completed],
        ["escape diversions", stats.escape_diversions],
        ["deadlocks observed (oracle)", stats.deadlocks_observed],
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = ALL_EXPERIMENTS.get(args.name)
    if module is None:
        print(
            f"unknown experiment {args.name!r}; have {sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    params_cls = next(
        getattr(module, name) for name in dir(module) if name.endswith("Params")
    )
    params = params_cls.full() if args.full else params_cls.quick()
    if args.workers is not None:
        params.workers = args.workers
    if getattr(args, "obs", False):
        # The env var is inherited by pool workers, which then ship their
        # per-process registries home for merging (repro.parallel.pool).
        os.environ[OBS_ENV_VAR] = "1"
    if getattr(args, "cached", False):
        # Routes every fan_out sweep cell through the content-addressed
        # result store (repro.service.store) — warm reruns are pure hits.
        from repro.experiments.common import CACHE_ENV_VAR

        os.environ[CACHE_ENV_VAR] = "1"
    result = module.run(params)
    if getattr(args, "json", False):
        import json

        from repro.utils.serialize import to_jsonable

        print(
            json.dumps(
                {
                    "experiment": args.name,
                    "params": to_jsonable(params),
                    "result": to_jsonable(result),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(module.report(result))
    if getattr(args, "obs", False):
        registry = proc_registry()
        if not registry.is_empty:
            print("\nobservability metrics (merged across workers):")
            for line in registry.summary_lines():
                print("  " + line)
    return 0


def _resolve_store_arg(args: argparse.Namespace):
    """Build the store a server should own from --store/--shard/--shard-map."""
    from pathlib import Path

    from repro.service.store import ResultStore

    shard_map_path = getattr(args, "shard_map", None)
    shard_roots = getattr(args, "shard", None) or []
    if shard_map_path or len(shard_roots) > 1:
        from repro.service.fabric import ShardMap, ShardedResultStore

        if shard_map_path:
            shard_map = ShardMap.load(shard_map_path)
        else:
            shard_map = ShardMap.local(
                shard_roots, replicas=getattr(args, "replicas", 2)
            )
        return ShardedResultStore(shard_map)
    if shard_roots:
        return ResultStore(root=Path(shard_roots[0]))
    return ResultStore(root=Path(args.store) if args.store else None)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.fabric import make_server

    store = _resolve_store_arg(args)
    server = make_server(
        backend=args.backend,
        host=args.host,
        port=args.port,
        store=store,
        workers=args.workers,
        max_depth=args.max_depth,
        timeout=args.timeout,
        retries=args.retries,
        quiet=args.quiet,
        record_ttl=args.record_ttl if args.record_ttl > 0 else None,
        surrogate=not args.no_surrogate,
        lease_ttl=args.lease_ttl,
        local_exec=not args.no_local_exec,
    )
    server.start()
    print(f"repro service listening on {server.url} ({args.backend} front end)")
    shard_map = getattr(store, "map", None)
    if shard_map is not None:
        for shard in shard_map.shards:
            print(f"  shard {shard.name}: {shard.root} (weight {shard.weight})")
        print(f"  replicas: {shard_map.replicas}")
    else:
        print(f"result store: {store.root} (cap {store.max_bytes} bytes)")
    if args.no_local_exec:
        print("local execution off: jobs wait for `repro worker` claims")
    try:
        # start() already runs the front end; block until interrupted.
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down (draining)")
    finally:
        server.stop()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.fabric import run_worker

    try:
        stats = run_worker(
            args.url,
            worker_id=args.id,
            max_jobs=args.max_jobs,
            poll_wait=args.wait,
            exec_workers=args.workers,
            max_idle_polls=args.max_idle if args.max_idle > 0 else None,
            quiet=args.quiet,
        )
    except OSError as exc:
        print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"worker done: {stats.summary()}")
    return 0


def _cmd_shards(args: argparse.Namespace) -> int:
    import json

    from repro.service.fabric import ShardMap, ShardedResultStore, rebalance

    try:
        shard_map = ShardMap.load(args.map)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot load shard map {args.map!r}: {exc}", file=sys.stderr)
        return 2
    store = ShardedResultStore(shard_map)
    if args.action == "status":
        health = store.health()
        rows = []
        for shard in shard_map.shards:
            sub = store.shard_store(shard.name)
            ok = health["shards"].get(shard.name, False)
            blobs = sum(1 for _ in sub.iter_fingerprints()) if ok else "-"
            size = sub.size_bytes() if ok else "-"
            rows.append([shard.name, shard.root, shard.weight, ok, blobs, size])
        print(format_table(
            ["shard", "root", "weight", "reachable", "blobs", "bytes"], rows
        ))
        print(f"\nreplicas: {shard_map.replicas}  distinct results: {len(store)}")
        return 0 if health["ok"] else 1
    # rebalance
    report = rebalance(store, prune=args.prune)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            "rebalance: scanned {scanned}  copied {copied}  "
            "pruned {pruned}  skipped {skipped}".format(**report)
        )
    return 0 if report["skipped"] == 0 else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient, ServiceError

    spec = _simulate_spec_from_args(args)
    client = ServiceClient(args.url)
    try:
        if args.wait:
            payload = client.run(spec, priority=args.priority, timeout=args.timeout)
        else:
            payload = client.submit(spec, priority=args.priority)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        ["job id", payload.get("job_id", "")],
        ["status", payload.get("status", "")],
        ["cached", payload.get("cached", False)],
    ]
    result = payload.get("result")
    if result:
        rows += [
            ["avg latency (cycles)", f"{result['result']['avg_latency']:.2f}"],
            [
                "accepted thr (flits/node/cyc)",
                f"{result['result']['throughput_flits_node_cycle']:.4f}",
            ],
            [
                "packets injected / ejected",
                f"{result['stats']['packets_injected']} / "
                f"{result['stats']['packets_ejected']}",
            ],
        ]
    print(format_table(["field", "value"], rows))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    import json
    import time
    from pathlib import Path

    from repro.service.store import ResultStore
    from repro.surrogate import SurrogateOracle

    store = ResultStore(root=Path(args.store) if args.store else None)
    oracle = SurrogateOracle(store=store)
    if args.refresh:
        oracle.refresh()
    spec = _simulate_spec_from_args(args)
    started = time.perf_counter()
    try:
        prediction = oracle.predict(spec)
    except (ValueError, KeyError) as exc:
        print(f"surrogate cannot model this spec: {exc}", file=sys.stderr)
        return 1
    elapsed_ms = (time.perf_counter() - started) * 1e3
    if args.json:
        payload = prediction.payload(spec)
        payload["surrogate"]["predict_ms"] = elapsed_ms
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    bound = prediction.error_bound
    rows = [
        ["scheme / pattern", f"{spec.scheme} / {spec.pattern}"],
        ["offered load (flits/node/cyc)", spec.rate],
        ["predicted latency (cycles)", f"{prediction.latency:.2f}"],
        ["predicted thr (flits/node/cyc)", f"{prediction.throughput:.4f}"],
        ["saturation rate (flits/node/cyc)", f"{prediction.raw.saturation_rate:.4f}"],
        ["error bound (relative)", f"{bound:.3f}" if bound is not None else "uncalibrated"],
        ["calibration cell", prediction.provenance["cell"]],
        ["calibration samples", prediction.provenance["samples"]],
        ["calibration fingerprint", prediction.provenance["calibration_fingerprint"][:16]],
        ["prediction time", f"{elapsed_ms:.2f} ms"],
    ]
    print(format_table(["field", "value"], rows))
    if bound is None:
        print(
            "\nno calibration support for this cell yet — run exact cells "
            "into the store (e.g. `repro submit` or `experiment --cached`) "
            "and retry, or trust nothing."
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    if args.topology:
        from repro.topology.generators import parse_topology

        try:
            topo = parse_topology(args.topology)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        width = getattr(topo, "width", 8)
        height = getattr(topo, "height", 8)
    else:
        try:
            width, height = (int(v) for v in args.mesh.lower().split("x"))
        except ValueError:
            print(
                f"bad --mesh {args.mesh!r}; expected WxH (e.g. 8x8)",
                file=sys.stderr,
            )
            return 2
        topo = mesh(width, height)
    rng = random.Random(args.seed)
    if args.link_faults:
        topo = inject_link_faults(topo, args.link_faults, rng)
    if args.router_faults:
        topo = inject_router_faults(topo, args.router_faults, rng)
    config = SimConfig(width=width, height=height)

    kwargs = {}
    if args.drop_bubble:
        if args.topology:
            # The X,Y addressing (and the closed-form placement it edits)
            # only exists on the 2D mesh.
            print("--drop-bubble requires a 2D mesh (--mesh)", file=sys.stderr)
            return 2
        if args.scheme not in ("static-bubble", "adaptive"):
            # Both run the Static Bubble placement; every other scheme
            # has no bubbles to drop.
            print(
                "--drop-bubble only applies to static-bubble/adaptive",
                file=sys.stderr,
            )
            return 2
        from repro.core.placement import placement_node_ids

        placed = set(placement_node_ids(width, height))
        for spec in args.drop_bubble:
            try:
                x, y = (int(v) for v in spec.split(","))
            except ValueError:
                print(f"bad --drop-bubble {spec!r}; expected X,Y", file=sys.stderr)
                return 2
            node = y * width + x
            if node not in placed:
                print(
                    f"({x},{y}) is not a static-bubble router of the "
                    f"{width}x{height} placement",
                    file=sys.stderr,
                )
                return 2
            placed.discard(node)
        kwargs["placement_override"] = placed

    scheme = make_scheme(args.scheme, **kwargs)
    cert = scheme.verify(topo, config)

    mc_result = None
    if args.model_check:
        from repro.verify.model import check_scenario

        mc_result = check_scenario(args.model_check)

    if args.json:
        payload = {"certificate": cert.to_dict()}
        if mc_result is not None:
            payload["model_check"] = mc_result.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    else:
        print(cert.describe())
        if mc_result is not None:
            print()
            print(mc_result.describe())
    ok = cert.ok and (mc_result is None or mc_result.ok)
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments import chaos

    params = chaos.ChaosParams.full() if args.full else chaos.ChaosParams.quick()
    if args.campaigns is not None:
        params.campaigns = args.campaigns
    if args.events is not None:
        params.events = args.events
    if args.width is not None:
        params.width = args.width
    if args.height is not None:
        params.height = args.height
    params.seed = args.seed
    params.workers = args.workers
    params.verify_reconfig = args.verify_reconfig
    if args.verify_first:
        topo = mesh(params.width, params.height)
        config = SimConfig(
            width=params.width,
            height=params.height,
            vcs_per_vnet=params.vcs_per_vnet,
        )
        for name in params.schemes:
            cert = make_scheme(name).verify(topo, config)
            if not cert.ok:
                print(cert.describe())
                print(
                    f"certification failed for {name}; aborting chaos campaign",
                    file=sys.stderr,
                )
                return 1
    result = chaos.run(params)
    print(chaos.report(result))
    if args.check and not result.ok:
        return 1
    return 0


def _scheme_in_recovery(scheme) -> bool:
    states = getattr(scheme, "states", None)
    if not states:
        return False
    return any(
        state.fsm.in_recovery() or state.fsm.counting() for state in states.values()
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.scenario:
        net, scheme = build_scenario(args.scenario, t_dd=args.t_dd)
    else:
        topo = mesh(args.width, args.height)
        rng = random.Random(args.seed)
        if args.link_faults:
            topo = inject_link_faults(topo, args.link_faults, rng)
        config = SimConfig(
            width=args.width, height=args.height, sb_t_dd=args.t_dd or 34
        )
        traffic = make_pattern(args.pattern, topo, args.rate, seed=args.seed)
        scheme = make_scheme(args.scheme)
        net = Network(topo, config, scheme, traffic, seed=args.seed)
    obs = Observer(ring_capacity=args.ring, sample_every=args.sample_every)
    net.attach_obs(obs)
    for _ in range(args.cycles):
        net.step()
        if (
            args.scenario
            and net.is_drained()
            and not _scheme_in_recovery(scheme)
        ):
            break  # scenario fully drained and every recovery closed out
    obs.finalize(net)
    events = obs.events
    print(f"{len(events)} events buffered over {net.cycle} cycles")
    if args.jsonl:
        write_jsonl(events, args.jsonl)
        print(f"wrote JSONL trace: {args.jsonl}")
    if args.chrome:
        write_chrome_trace(events, args.chrome)
        print(f"wrote Chrome trace (chrome://tracing / Perfetto): {args.chrome}")
    transcripts = obs.transcripts()
    if transcripts:
        print(f"\n{len(transcripts)} recovery transcript(s):")
        for transcript in transcripts:
            print(transcript.describe(with_events=args.events))
    else:
        print("\nno recoveries observed")
    if obs.metrics is not None and not obs.metrics.is_empty:
        print("\nmetrics:")
        for line in obs.metrics.summary_lines():
            print("  " + line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Static Bubble (HPCA 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("placement", help="print a static-bubble placement map")
    p.add_argument("width", type=int)
    p.add_argument("height", type=int)
    p.set_defaults(func=_cmd_placement)

    p = sub.add_parser("schemes", help="list deadlock-freedom schemes")
    p.set_defaults(func=_cmd_schemes)

    p = sub.add_parser("simulate", help="run one simulation")
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help="non-mesh topology (mesh3d:XxYxZ, torus3d:XxYxZ, "
        "circulant:N,S1,S2, fullmesh:N); overrides --width/--height",
    )
    p.add_argument("--link-faults", type=int, default=0)
    p.add_argument("--router-faults", type=int, default=0)
    p.add_argument("--scheme", choices=sorted(SCHEMES), default="static-bubble")
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--rate", type=float, default=0.05)
    p.add_argument("--warmup", type=int, default=500)
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--vcs", type=int, default=4, help="VCs per vnet per port")
    p.add_argument("--t-dd", type=int, default=34, help="SB detection threshold")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--monitor", action="store_true", help="run the deadlock oracle alongside"
    )
    p.add_argument(
        "--verify-first",
        action="store_true",
        help="certify the scheme's deadlock-freedom claim before simulating; "
        "abort with exit code 1 (and the counterexample) on failure",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the result/stats payload as JSON (the same shape the "
        "service store persists)",
    )
    p.add_argument(
        "--engine",
        choices=("reference", "fast"),
        default=None,
        help="simulation engine (default: REPRO_ENGINE or 'reference'; "
        "results are bit-identical either way)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="profile the measured run with cProfile and print the top 25 "
        "functions by cumulative time to stderr",
    )
    p.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="with --profile: also dump the raw pstats data to PATH "
        "(inspect with `python -m pstats PATH`)",
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "verify",
        help="machine-check a scheme's deadlock-freedom claim (CDG "
        "certificate; optionally the protocol model check)",
    )
    p.add_argument("--mesh", default="8x8", help="mesh dimensions, WxH")
    p.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help="non-mesh topology (mesh3d:XxYxZ, torus3d:XxYxZ, "
        "circulant:N,S1,S2, fullmesh:N); overrides --mesh",
    )
    p.add_argument("--scheme", choices=sorted(SCHEMES), default="static-bubble")
    p.add_argument("--link-faults", type=int, default=0)
    p.add_argument("--router-faults", type=int, default=0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--drop-bubble",
        action="append",
        default=None,
        metavar="X,Y",
        help="remove the static bubble at (X,Y) from the placement "
        "(repeatable; static-bubble only) — mutation testing the cover",
    )
    p.add_argument(
        "--model-check",
        choices=sorted(SCENARIOS),
        default=None,
        help="additionally run the exhaustive recovery-protocol model "
        "check on this scenario",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the certificate(s) as JSON"
    )
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("name", help="fig2|fig3|fig8|fig9|fig10|fig11|fig12|fig13|table1")
    p.add_argument(
        "--full",
        action="store_true",
        help="paper-scale parameters (hours) instead of quick mode",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sweep "
        "(default: $REPRO_WORKERS, else cpu_count()-1; 1 = serial)",
    )
    p.add_argument(
        "--obs",
        action="store_true",
        help="collect observability metrics (merged across workers) "
        "and print them after the report",
    )
    p.add_argument(
        "--cached",
        action="store_true",
        help="memoize every sweep cell through the content-addressed "
        "result store ($REPRO_STORE); warm reruns become cache hits",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the params + result dataclasses as JSON via the "
        "shared serializer instead of the report table",
    )
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "serve",
        help="run the HTTP campaign server (content-addressed result "
        "store + deduplicating job queue)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument(
        "--store", default=None, help="result store root (default: $REPRO_STORE or ~/.cache/repro)"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="simulation worker processes (default: $REPRO_WORKERS, else cpu_count()-1)",
    )
    p.add_argument(
        "--max-depth",
        type=int,
        default=256,
        help="bound on pending+running jobs; past it POST /jobs returns 429",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock timeout in seconds (enforced in pool workers)",
    )
    p.add_argument(
        "--retries", type=int, default=1, help="retries per failed job (with backoff)"
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs"
    )
    p.add_argument(
        "--record-ttl",
        type=float,
        default=3600.0,
        help="seconds a finished job record stays queryable via GET /jobs "
        "before pruning (results persist in the store regardless); "
        "<= 0 keeps records forever",
    )
    p.add_argument(
        "--no-surrogate",
        action="store_true",
        help="disable the surrogate fast lane (mode surrogate/auto "
        "submissions then always simulate)",
    )
    p.add_argument(
        "--backend",
        choices=("threaded", "async"),
        default="threaded",
        help="HTTP front end: threaded = thread-per-connection "
        "(ThreadingHTTPServer), async = single event loop with "
        "streaming bodies and graceful drain",
    )
    p.add_argument(
        "--shard",
        action="append",
        metavar="DIR",
        help="result-store shard root; repeat for a consistent-hash "
        "sharded store (one occurrence behaves like --store)",
    )
    p.add_argument(
        "--shard-map",
        default=None,
        metavar="FILE",
        help="declarative shard map JSON (see `repro shards`); "
        "overrides --shard/--store",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="replica count for an ad-hoc --shard map (ignored with "
        "--shard-map, which carries its own)",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds a claimed job's lease lasts without a heartbeat "
        "before it is requeued",
    )
    p.add_argument(
        "--no-local-exec",
        action="store_true",
        help="do not execute jobs in this process; jobs wait for "
        "`repro worker` claims",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "worker",
        help="pull-execute-report worker against a campaign server "
        "(at-least-once leases, idempotent completion)",
    )
    p.add_argument("--url", default="http://127.0.0.1:8765")
    p.add_argument(
        "--id", default=None, help="worker identity (default: host-pid-nonce)"
    )
    p.add_argument(
        "--max-jobs",
        type=int,
        default=4,
        help="jobs to claim per long-poll cycle",
    )
    p.add_argument(
        "--wait",
        type=float,
        default=15.0,
        help="long-poll window per claim request in seconds",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="local processes fanned over each claimed batch "
        "(1 = execute in-process)",
    )
    p.add_argument(
        "--max-idle",
        type=int,
        default=0,
        help="exit after this many consecutive empty claims "
        "(<= 0 pulls forever)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-batch stats lines"
    )
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "shards",
        help="inspect or rebalance a sharded result store",
    )
    p.add_argument(
        "action",
        choices=("status", "rebalance"),
        help="status = per-shard reachability/blob counts; rebalance = "
        "move blobs to their consistent-hash owners after a map change",
    )
    p.add_argument(
        "--map", required=True, metavar="FILE", help="shard map JSON file"
    )
    p.add_argument(
        "--prune",
        action="store_true",
        help="rebalance only: delete blobs from shards that no longer "
        "own them (after copying)",
    )
    p.add_argument("--json", action="store_true", help="print the raw report")
    p.set_defaults(func=_cmd_shards)

    p = sub.add_parser(
        "submit",
        help="submit one simulation spec to a running campaign server",
    )
    p.add_argument("--url", default="http://127.0.0.1:8765")
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help="non-mesh topology (mesh3d:XxYxZ, torus3d:XxYxZ, "
        "circulant:N,S1,S2, fullmesh:N); overrides --width/--height",
    )
    p.add_argument("--link-faults", type=int, default=0)
    p.add_argument("--router-faults", type=int, default=0)
    p.add_argument("--scheme", choices=sorted(SCHEMES), default="static-bubble")
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--rate", type=float, default=0.05)
    p.add_argument("--warmup", type=int, default=500)
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--vcs", type=int, default=4, help="VCs per vnet per port")
    p.add_argument("--t-dd", type=int, default=34, help="SB detection threshold")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--engine",
        choices=("reference", "fast"),
        default=None,
        help="engine the server should run this spec on (excluded from "
        "the spec's cache identity)",
    )
    p.add_argument(
        "--mode",
        choices=("exact", "surrogate", "auto"),
        default="exact",
        help="answer lane: exact = always simulate; surrogate = always "
        "answer from the calibrated analytical model; auto = surrogate "
        "when its error bound clears the gate, else simulate",
    )
    p.add_argument("--priority", type=int, default=0)
    p.add_argument(
        "--wait",
        action="store_true",
        help="poll the job to completion and print the result",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="--wait polling deadline in seconds",
    )
    p.add_argument("--json", action="store_true", help="print the raw JSON payload")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "predict",
        help="answer one spec from the local calibrated surrogate "
        "(microsecond analytical model; no server, no simulation)",
    )
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help="non-mesh topology (mesh3d:XxYxZ, torus3d:XxYxZ, "
        "circulant:N,S1,S2, fullmesh:N); overrides --width/--height",
    )
    p.add_argument("--link-faults", type=int, default=0)
    p.add_argument("--router-faults", type=int, default=0)
    p.add_argument("--scheme", choices=sorted(SCHEMES), default="static-bubble")
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--rate", type=float, default=0.05)
    p.add_argument("--warmup", type=int, default=500)
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--vcs", type=int, default=4, help="VCs per vnet per port")
    p.add_argument("--t-dd", type=int, default=34, help="SB detection threshold")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--store",
        default=None,
        help="result store to calibrate from (default: $REPRO_STORE or "
        "~/.cache/repro)",
    )
    p.add_argument(
        "--refresh",
        action="store_true",
        help="re-harvest the store and refit the calibration table first",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the full surrogate payload (result + error bound + "
        "provenance) as JSON",
    )
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser(
        "chaos",
        help="random live-fault campaigns with packet-conservation checks",
    )
    p.add_argument(
        "--full",
        action="store_true",
        help="8x8 mesh, more/longer campaigns instead of the quick smoke",
    )
    p.add_argument("--campaigns", type=int, default=None, help="schedules per scheme")
    p.add_argument("--events", type=int, default=None, help="fault events per schedule")
    p.add_argument("--width", type=int, default=None)
    p.add_argument("--height", type=int, default=None)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_WORKERS, else cpu_count()-1)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every campaign drained with zero unaccounted packets",
    )
    p.add_argument(
        "--verify-first",
        action="store_true",
        help="certify every scheme's deadlock-freedom claim on the healthy "
        "mesh before the campaigns; abort with exit code 1 on failure",
    )
    p.add_argument(
        "--verify-reconfig",
        action="store_true",
        help="re-certify after every mid-run reconfiguration; failed "
        "certificates fail the campaign verdict",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "trace", help="run with the tracing observer and export traces"
    )
    p.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default=None,
        help="hand-constructed deadlock scenario (default: synthetic traffic)",
    )
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument("--link-faults", type=int, default=0)
    p.add_argument("--scheme", choices=sorted(SCHEMES), default="static-bubble")
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--rate", type=float, default=0.05)
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument(
        "--t-dd", type=int, default=None, help="SB detection threshold override"
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--ring", type=int, default=65536, help="event ring-buffer capacity"
    )
    p.add_argument(
        "--sample-every", type=int, default=64, help="metrics sampling cadence"
    )
    p.add_argument("--jsonl", default=None, help="write the event log as JSONL")
    p.add_argument(
        "--chrome",
        default=None,
        help="write a Chrome trace_event file (chrome://tracing, Perfetto)",
    )
    p.add_argument(
        "--events",
        action="store_true",
        help="print every event of each recovery transcript",
    )
    p.set_defaults(func=_cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
