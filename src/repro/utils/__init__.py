"""Shared utilities: deterministic RNG helpers and plain-text reporting."""

from repro.utils.rng import spawn_rng, derive_seed
from repro.utils.reporting import format_table, format_series, Reporter

__all__ = ["spawn_rng", "derive_seed", "format_table", "format_series", "Reporter"]
