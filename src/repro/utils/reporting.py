"""Plain-text reporting helpers used by experiments and benchmarks.

The paper reports its evaluation as figures; since this reproduction is
headless, each experiment prints the same data as aligned text tables or
``x: y`` series that can be diffed, plotted, or pasted into a notebook.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _fmt_cell(value: object, ndigits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    ndigits: int = 3,
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_fmt_cell(cell, ndigits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[object, object], ndigits: int = 3, title: str = ""
) -> str:
    """Render a mapping as ``key: value`` lines (one series of a figure)."""
    lines = [title] if title else []
    for key, value in series.items():
        lines.append(f"{_fmt_cell(key, ndigits)}: {_fmt_cell(value, ndigits)}")
    return "\n".join(lines)


class Reporter:
    """Collects experiment output so it can be both printed and asserted on.

    Experiments call :meth:`table` / :meth:`line`; the benchmark harness
    prints :meth:`text` and tests inspect the structured payloads.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._chunks: list[str] = []

    def line(self, text: str) -> None:
        self._chunks.append(text)

    def table(
        self,
        headers: Sequence[str],
        rows: Iterable[Sequence[object]],
        ndigits: int = 3,
        title: str = "",
    ) -> None:
        self._chunks.append(format_table(headers, rows, ndigits=ndigits, title=title))

    def text(self) -> str:
        header = f"== {self.name} =="
        return "\n".join([header] + self._chunks)
