"""Deterministic random-number utilities.

Every stochastic component in the library (fault injection, traffic
generation, route selection) draws from a ``random.Random`` instance that
is derived from an explicit seed, so that every experiment is exactly
reproducible from its parameter set.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is stable across runs and Python versions (it hashes the
    ``repr`` of the labels with SHA-256 rather than relying on ``hash()``,
    which is salted per-process for strings).
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode())
    for label in labels:
        digest.update(b"\x00")
        digest.update(repr(label).encode())
    return int.from_bytes(digest.digest()[:8], "big")


def spawn_rng(base_seed: int, *labels: object) -> random.Random:
    """Return a fresh ``random.Random`` seeded from ``base_seed`` + labels."""
    return random.Random(derive_seed(base_seed, *labels))
