"""Canonical JSON serialization for specs and result dataclasses.

One serializer shared by every structured-output surface: the CLI's
``--json`` flags, the content-addressed result store, and the sweep
cache in :func:`repro.experiments.common.fan_out`.  Two properties
matter and both are load-bearing:

* **Round-trip fidelity** — :func:`from_jsonable` inverts
  :func:`to_jsonable` *exactly*: tuples come back as tuples, dataclasses
  as the same dataclass type, dicts keep non-string keys.  A cached
  sweep cell must be indistinguishable from a freshly computed one, so
  plain ``json.dumps`` (which silently turns tuples into lists and
  tuple-keyed dicts into errors) is not enough.  Non-JSON shapes are
  encoded as tagged objects ``{"__repro__": <kind>, ...}``.
* **Canonical form** — :func:`canonical_json` emits a byte-stable
  encoding (sorted keys, fixed separators) so that
  :func:`fingerprint` is a pure function of the value: the same spec
  always hashes to the same content address, across processes and runs.

Dataclass reconstruction imports the recorded ``module:qualname`` and is
restricted to this package (``repro.``) plus the test trees — a stored
blob can name types to instantiate, and we only ever instantiate our
own result dataclasses, never arbitrary imports.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import math
from typing import Any, Dict, List, Tuple

#: Tag key marking an encoded non-JSON-native value.
TAG = "__repro__"

#: Module prefixes dataclass reconstruction is allowed to import from.
_ALLOWED_MODULE_PREFIXES = ("repro.", "tests.", "benchmarks.")


class SerializationError(TypeError):
    """Raised for values the canonical serializer does not cover."""


def _is_topology(obj: Any) -> bool:
    from repro.topology.base import BaseTopology

    return isinstance(obj, BaseTopology)


def to_jsonable(obj: Any) -> Any:
    """Encode ``obj`` into JSON-native structures, tagging what JSON lacks.

    Covers: JSON scalars, lists, tuples, sets/frozensets, dicts (any
    hashable encodable key), dataclass instances, and any
    :class:`repro.topology.base.BaseTopology` (via its kind-tagged
    spec).  Raises
    :class:`SerializationError` for anything else — silently guessing a
    representation would break fingerprint stability.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj) or math.isinf(obj):
            # JSON has no literal for these; a tagged string keeps the
            # canonical encoding portable across json parsers.
            return {TAG: "float", "value": repr(obj)}
        return obj
    if isinstance(obj, list):
        return [to_jsonable(item) for item in obj]
    if isinstance(obj, tuple):
        return {TAG: "tuple", "items": [to_jsonable(item) for item in obj]}
    if isinstance(obj, (set, frozenset)):
        items = sorted(
            (to_jsonable(item) for item in obj),
            key=lambda encoded: json.dumps(encoded, sort_keys=True, default=str),
        )
        kind = "set" if isinstance(obj, set) else "frozenset"
        return {TAG: kind, "items": items}
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and TAG not in obj:
            return {k: to_jsonable(v) for k, v in obj.items()}
        pairs = sorted(
            ([to_jsonable(k), to_jsonable(v)] for k, v in obj.items()),
            key=lambda pair: json.dumps(pair[0], sort_keys=True, default=str),
        )
        return {TAG: "dict", "items": pairs}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            TAG: "dataclass",
            "type": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: to_jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if _is_topology(obj):
        return {TAG: "topology", "spec": obj.to_spec()}
    raise SerializationError(
        f"cannot canonically serialize {type(obj).__module__}."
        f"{type(obj).__qualname__}"
    )


def _load_dataclass(type_path: str) -> type:
    module_name, _, qualname = type_path.partition(":")
    if not module_name.startswith(_ALLOWED_MODULE_PREFIXES):
        raise SerializationError(
            f"refusing to import dataclass from {module_name!r}"
        )
    module = importlib.import_module(module_name)
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
        raise SerializationError(f"{type_path!r} is not a dataclass")
    return obj


def from_jsonable(obj: Any) -> Any:
    """Invert :func:`to_jsonable`."""
    if isinstance(obj, list):
        return [from_jsonable(item) for item in obj]
    if not isinstance(obj, dict):
        return obj
    kind = obj.get(TAG)
    if kind is None:
        return {k: from_jsonable(v) for k, v in obj.items()}
    if kind == "float":
        return float(obj["value"])
    if kind == "tuple":
        return tuple(from_jsonable(item) for item in obj["items"])
    if kind == "set":
        return set(from_jsonable(item) for item in obj["items"])
    if kind == "frozenset":
        return frozenset(from_jsonable(item) for item in obj["items"])
    if kind == "dict":
        return {
            from_jsonable(k): from_jsonable(v) for k, v in obj["items"]
        }
    if kind == "dataclass":
        cls = _load_dataclass(obj["type"])
        fields = {k: from_jsonable(v) for k, v in obj["fields"].items()}
        return cls(**fields)
    if kind == "topology":
        from repro.topology import topology_from_spec

        return topology_from_spec(obj["spec"])
    raise SerializationError(f"unknown tag {kind!r}")


def canonical_json(obj: Any) -> str:
    """Byte-stable canonical encoding (sorted keys, minimal separators)."""
    return json.dumps(
        to_jsonable(obj),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def fingerprint(obj: Any, salt: str = "") -> str:
    """Content address of ``obj``: SHA-256 hex of its canonical encoding.

    ``salt`` folds in anything that changes the *meaning* of equal specs
    — the result store salts with the code version so stale blobs from
    an older simulator never shadow fresh results.
    """
    digest = hashlib.sha256()
    if salt:
        digest.update(salt.encode())
        digest.update(b"\x00")
    digest.update(canonical_json(obj).encode())
    return digest.hexdigest()
