"""Traffic generator interface.

A traffic source is asked once per cycle for the packets created at that
cycle: ``packets_at(now) -> iterable of (src, dst, vnet, size_flits)``.
Finite sources (traces) also implement ``exhausted(now)`` so run-to-drain
experiments know when the workload is done.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

PacketSpec = Tuple[int, int, int, int]  # (src, dst, vnet, size_flits)


class TrafficGenerator:
    """Base class: an infinite, silent source."""

    def packets_at(self, now: int) -> Iterable[PacketSpec]:
        return ()

    def exhausted(self, now: int) -> bool:
        """True when a finite source has emitted everything it will."""
        return False


class CompositeTraffic(TrafficGenerator):
    """Union of several sources (e.g. app traffic + background)."""

    def __init__(self, sources: List[TrafficGenerator]) -> None:
        self.sources = list(sources)

    def packets_at(self, now: int) -> Iterable[PacketSpec]:
        for source in self.sources:
            yield from source.packets_at(now)

    def exhausted(self, now: int) -> bool:
        return all(source.exhausted(now) for source in self.sources)
