"""Trace-driven traffic: replay a finite list of timed packet injections.

Used by the application workload models (PARSEC / Rodinia substitutes):
a workload is a fixed amount of communication work; "application
runtime" is the cycle at which the network drains the whole trace, and
"application throughput" is work over runtime.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.traffic.base import PacketSpec, TrafficGenerator

TraceEvent = Tuple[int, int, int, int, int]  # (cycle, src, dst, vnet, size)


class TraceTraffic(TrafficGenerator):
    """Replays ``(cycle, src, dst, vnet, size)`` events in cycle order."""

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self.events: List[TraceEvent] = sorted(events, key=lambda e: e[0])
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.events)

    def total_flits(self) -> int:
        return sum(e[4] for e in self.events)

    def last_cycle(self) -> int:
        return self.events[-1][0] if self.events else 0

    def packets_at(self, now: int) -> Iterable[PacketSpec]:
        while self._cursor < len(self.events) and self.events[self._cursor][0] <= now:
            _, src, dst, vnet, size = self.events[self._cursor]
            self._cursor += 1
            yield (src, dst, vnet, size)

    def exhausted(self, now: int) -> bool:
        return self._cursor >= len(self.events)

    def reset(self) -> "TraceTraffic":
        """Rewind (traces are replayed across schemes for fair comparison)."""
        self._cursor = 0
        return self
