"""Trace-driven traffic: replay a finite list of timed packet injections.

Used by the application workload models (PARSEC / Rodinia substitutes):
a workload is a fixed amount of communication work; "application
runtime" is the cycle at which the network drains the whole trace, and
"application throughput" is work over runtime.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Sequence, Tuple, Union

from repro.traffic.base import PacketSpec, TrafficGenerator

TraceEvent = Tuple[int, int, int, int, int]  # (cycle, src, dst, vnet, size)

#: On-disk trace format version (bump on incompatible layout changes).
TRACE_FORMAT_VERSION = 1


class TraceTraffic(TrafficGenerator):
    """Replays ``(cycle, src, dst, vnet, size)`` events in cycle order."""

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self.events: List[TraceEvent] = sorted(events, key=lambda e: e[0])
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.events)

    def total_flits(self) -> int:
        return sum(e[4] for e in self.events)

    def last_cycle(self) -> int:
        return self.events[-1][0] if self.events else 0

    def packets_at(self, now: int) -> Iterable[PacketSpec]:
        while self._cursor < len(self.events) and self.events[self._cursor][0] <= now:
            _, src, dst, vnet, size = self.events[self._cursor]
            self._cursor += 1
            yield (src, dst, vnet, size)

    def exhausted(self, now: int) -> bool:
        return self._cursor >= len(self.events)

    def reset(self) -> "TraceTraffic":
        """Rewind (traces are replayed across schemes for fair comparison)."""
        self._cursor = 0
        return self

    def save(self, path: Union[str, os.PathLike]) -> None:
        return save_trace(self, path)

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "TraceTraffic":
        return load_trace(path)


def save_trace(trace: TraceTraffic, path: Union[str, os.PathLike]) -> None:
    """Persist a trace as JSON: ``{"version", "events": [[c,s,d,v,size]..]}``.

    Events are written in the trace's (cycle-sorted) replay order, so a
    loaded trace injects the *identical* sequence — same cycles, same
    destinations, same sizes — which is what makes recorded workloads a
    sound cache/service payload.  Atomic write (temp + rename): a killed
    recorder never leaves a torn trace.
    """
    payload = {
        "version": TRACE_FORMAT_VERSION,
        "events": [list(event) for event in trace.events],
    }
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    os.replace(tmp, path)


def load_trace(path: Union[str, os.PathLike]) -> TraceTraffic:
    """Inverse of :func:`save_trace`."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    events = []
    for event in payload["events"]:
        if len(event) != 5:
            raise ValueError(f"malformed trace event: {event!r}")
        events.append(tuple(int(v) for v in event))
    return TraceTraffic(events)
