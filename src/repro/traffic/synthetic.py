"""Synthetic traffic patterns (Table II: uniform random, bit-complement).

Injection ``rate`` is expressed in flits/node/cycle, the unit used
throughout the paper's figures.  Packets are a mix of 1-flit control and
5-flit data packets (Table II); a Bernoulli draw per node per cycle
converts the flit rate into packet injections with the right expectation.

Destinations falling outside the source's connected component are still
generated — the NI drops them, matching the paper ("if the destination
is not reachable, the packet is simply dropped").
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.traffic.base import PacketSpec, TrafficGenerator
from repro.topology.base import BaseTopology as Topology
from repro.utils.rng import spawn_rng


class SyntheticTraffic(TrafficGenerator):
    """Bernoulli per-node injection with a pattern-defined destination."""

    def __init__(
        self,
        topo: Topology,
        rate: float,
        seed: int = 1,
        vnets: int = 1,
        data_flits: int = 5,
        ctrl_flits: int = 1,
        data_fraction: float = 0.5,
        sources: Optional[Sequence[int]] = None,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if not 0 <= data_fraction <= 1:
            raise ValueError("data_fraction must be in [0, 1]")
        self.topo = topo
        self.rate = rate
        self.vnets = vnets
        self.data_flits = data_flits
        self.ctrl_flits = ctrl_flits
        self.data_fraction = data_fraction
        self.rng = spawn_rng(seed, "traffic", type(self).__name__)
        self.nodes: List[int] = list(sources) if sources is not None else topo.active_nodes()
        #: Expected flits per packet under the configured mix.
        self.mean_flits = (
            data_fraction * data_flits + (1 - data_fraction) * ctrl_flits
        )
        #: Per-node per-cycle packet-injection probability.
        self.packet_prob = min(1.0, rate / self.mean_flits) if rate else 0.0

    def destination(self, src: int) -> Optional[int]:
        raise NotImplementedError

    def _size(self) -> int:
        if self.rng.random() < self.data_fraction:
            return self.data_flits
        return self.ctrl_flits

    def packets_at(self, now: int) -> Iterable[PacketSpec]:
        rng = self.rng
        prob = self.packet_prob
        if prob == 0.0:
            return
        for src in self.nodes:
            if rng.random() < prob:
                dst = self.destination(src)
                if dst is None or dst == src:
                    continue
                vnet = rng.randrange(self.vnets) if self.vnets > 1 else 0
                yield (src, dst, vnet, self._size())


class UniformRandomTraffic(SyntheticTraffic):
    """Each packet targets a uniformly random other node."""

    def destination(self, src: int) -> Optional[int]:
        if len(self.nodes) < 2:
            return None
        while True:
            dst = self.nodes[self.rng.randrange(len(self.nodes))]
            if dst != src:
                return dst


class BitComplementTraffic(SyntheticTraffic):
    """Node (x, y) sends to (W-1-x, H-1-y)."""

    def destination(self, src: int) -> Optional[int]:
        x, y = self.topo.coords(src)
        return self.topo.node_id(self.topo.width - 1 - x, self.topo.height - 1 - y)


class TransposeTraffic(SyntheticTraffic):
    """Node (x, y) sends to (y, x); needs a square mesh."""

    def destination(self, src: int) -> Optional[int]:
        if self.topo.width != self.topo.height:
            raise ValueError("transpose requires a square mesh")
        x, y = self.topo.coords(src)
        if x == y:
            return None
        return self.topo.node_id(y, x)


class HotspotTraffic(SyntheticTraffic):
    """A fraction of packets target a small hot set; rest uniform random."""

    def __init__(
        self,
        topo: Topology,
        rate: float,
        hotspots: Sequence[int],
        hot_fraction: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(topo, rate, **kwargs)
        if not hotspots:
            raise ValueError("need at least one hotspot node")
        self.hotspots = list(hotspots)
        self.hot_fraction = hot_fraction

    def destination(self, src: int) -> Optional[int]:
        if self.rng.random() < self.hot_fraction:
            choices = [h for h in self.hotspots if h != src]
            if choices:
                return choices[self.rng.randrange(len(choices))]
        if len(self.nodes) < 2:
            return None
        while True:
            dst = self.nodes[self.rng.randrange(len(self.nodes))]
            if dst != src:
                return dst


PATTERNS = {
    "uniform_random": UniformRandomTraffic,
    "bit_complement": BitComplementTraffic,
    "transpose": TransposeTraffic,
}


def make_pattern(
    name: str, topo: Topology, rate: float, seed: int = 1, **kwargs
) -> SyntheticTraffic:
    """Factory over the named synthetic patterns."""
    try:
        cls = PATTERNS[name]
    except KeyError:
        raise ValueError(f"unknown pattern {name!r}; have {sorted(PATTERNS)}")
    return cls(topo, rate, seed=seed, **kwargs)
