"""Synthetic application workload models (PARSEC / Rodinia substitutes).

The paper drives its application studies with gem5 full-system PARSEC
traffic and Rodinia GPU traces, neither of which is reproducible offline.
Per DESIGN.md §5 we substitute parameterized trace models that preserve
the properties the results depend on:

* **PARSEC-like** (Fig. 13): very low injection (~0.01 flits/node/cycle;
  the paper observes PARSEC never deadlocks), request/reply flows between
  cores and memory controllers (1-flit read requests, 5-flit data
  replies).  The workload is a fixed number of transactions, so the
  "application runtime" is the drain time — longer routes (spanning
  tree) directly inflate it.
* **Rodinia-like** (Fig. 12): per-benchmark intensity and pattern.
  ``hadoop`` is dominated by high-rate collective/hotspot traffic that
  saturates every network (the paper sees all schemes perform alike);
  ``bplus``/``kmeans``/``bfs`` are moderate-rate random/irregular;
  ``srad`` is stencil-heavy (near-neighbour).  "Application throughput"
  is total flits over drain cycles.

The application is always mapped onto the largest connected component
(the paper only considers topologies that keep the memory controllers
connected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.topology.graph import largest_component
from repro.topology.mesh import Topology
from repro.traffic.trace import TraceEvent, TraceTraffic
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class WorkloadSpec:
    """Tunable shape of one application model."""

    name: str
    #: Mean packets injected per core per cycle (before size weighting).
    packet_rate: float
    #: Fraction of traffic that is core<->memory-controller request/reply.
    mc_fraction: float
    #: Fraction of core-to-core traffic constrained to mesh neighbours.
    stencil_fraction: float
    #: Fraction of traffic aimed at a small hot set (collectives).
    hotspot_fraction: float
    #: Memory-controller service delay in cycles (request -> reply).
    mc_delay: int = 20


PARSEC_SPECS: Dict[str, WorkloadSpec] = {
    "blackscholes": WorkloadSpec("blackscholes", 0.0030, 0.9, 0.0, 0.0),
    "bodytrack": WorkloadSpec("bodytrack", 0.0045, 0.8, 0.1, 0.0),
    "canneal": WorkloadSpec("canneal", 0.0060, 0.7, 0.0, 0.1),
    "fluidanimate": WorkloadSpec("fluidanimate", 0.0040, 0.6, 0.3, 0.0),
}

RODINIA_SPECS: Dict[str, WorkloadSpec] = {
    # Hadoop: heavy collective traffic -> saturates every design.
    "hadoop": WorkloadSpec("hadoop", 0.12, 0.2, 0.0, 0.7),
    "bplus": WorkloadSpec("bplus", 0.035, 0.5, 0.0, 0.1),
    "kmeans": WorkloadSpec("kmeans", 0.030, 0.4, 0.0, 0.3),
    "srad": WorkloadSpec("srad", 0.030, 0.3, 0.6, 0.0),
    "bfs": WorkloadSpec("bfs", 0.040, 0.4, 0.0, 0.2),
}


def _mesh_neighbors(topo: Topology, node: int, members: set) -> List[int]:
    return [n for _, n in topo.active_neighbors(node) if n in members]


def build_workload_trace(
    spec: WorkloadSpec,
    topo: Topology,
    memory_controllers: Sequence[int],
    duration: int,
    seed: int = 1,
    data_flits: int = 5,
    ctrl_flits: int = 1,
) -> TraceTraffic:
    """Generate the injection trace of one application run.

    ``duration`` is the injection window in cycles; total work scales
    with it, so comparing schemes on the same trace compares how fast
    each network moves a fixed amount of communication.
    """
    rng = spawn_rng(seed, "workload", spec.name)
    component = largest_component(topo)
    cores = sorted(component)
    if len(cores) < 2:
        raise ValueError("workload needs at least two connected nodes")
    mcs = [mc for mc in memory_controllers if mc in component]
    if not mcs:
        mcs = cores[:1]
    hotspots = mcs + cores[: max(1, len(cores) // 16)]
    events: List[TraceEvent] = []
    for cycle in range(duration):
        for src in cores:
            if rng.random() >= spec.packet_rate:
                continue
            draw = rng.random()
            if draw < spec.mc_fraction:
                mc = mcs[rng.randrange(len(mcs))]
                if mc == src:
                    continue
                # 1-flit read request now; 5-flit reply after service.
                events.append((cycle, src, mc, 0, ctrl_flits))
                events.append((cycle + spec.mc_delay, mc, src, 0, data_flits))
            elif draw < spec.mc_fraction + spec.stencil_fraction:
                neighbors = _mesh_neighbors(topo, src, component)
                if not neighbors:
                    continue
                dst = neighbors[rng.randrange(len(neighbors))]
                events.append((cycle, src, dst, 0, data_flits))
            elif draw < spec.mc_fraction + spec.stencil_fraction + spec.hotspot_fraction:
                dst = hotspots[rng.randrange(len(hotspots))]
                if dst == src:
                    continue
                events.append((cycle, src, dst, 0, data_flits))
            else:
                dst = cores[rng.randrange(len(cores))]
                if dst == src:
                    continue
                size = data_flits if rng.random() < 0.5 else ctrl_flits
                events.append((cycle, src, dst, 0, size))
    return TraceTraffic(events)


def parsec_trace(
    name: str,
    topo: Topology,
    memory_controllers: Sequence[int],
    duration: int = 4000,
    seed: int = 1,
) -> TraceTraffic:
    """PARSEC-like open-loop trace (for latency/energy studies)."""
    try:
        spec = PARSEC_SPECS[name]
    except KeyError:
        raise ValueError(f"unknown PARSEC workload {name!r}; have {sorted(PARSEC_SPECS)}")
    return build_workload_trace(spec, topo, memory_controllers, duration, seed)


@dataclass(frozen=True)
class ClosedLoopSpec:
    """Shape of a closed-loop (request/reply) application model."""

    name: str
    transactions_per_core: int
    #: Core compute time between receiving a reply and the next request.
    think_time: int
    #: Memory-controller service latency (request arrival -> reply issue).
    mc_delay: int = 12


#: Closed-loop PARSEC models for the Fig. 13 runtime study.  Think times
#: are calibrated so the network round-trip is a significant share of a
#: transaction (memory-bound phases), which is where the paper's ~15%
#: full-system runtime sensitivity to NoC latency comes from.
PARSEC_CLOSED_SPECS: Dict[str, ClosedLoopSpec] = {
    "blackscholes": ClosedLoopSpec("blackscholes", 8, 60),
    "bodytrack": ClosedLoopSpec("bodytrack", 8, 40),
    "canneal": ClosedLoopSpec("canneal", 10, 20),
    "fluidanimate": ClosedLoopSpec("fluidanimate", 8, 30),
}


class ClosedLoopWorkload:
    """Request/reply traffic driven by deliveries (full-system substitute).

    Every core in the largest component runs a fixed number of memory
    transactions against random memory controllers: a 1-flit read request;
    the MC answers with a 5-flit data reply ``mc_delay`` cycles after the
    request is *delivered*; the core issues its next request ``think_time``
    cycles after the reply arrives.  Application runtime is the drain time
    of the whole workload, so it responds directly to network latency —
    the property the paper's Fig. 13 measures.

    Wire-up: :class:`repro.sim.network.Network` detects the
    ``on_packet_ejected`` method and calls it on every delivery.
    """

    def __init__(
        self,
        spec: ClosedLoopSpec,
        topo: Topology,
        memory_controllers: Sequence[int],
        seed: int = 1,
        data_flits: int = 5,
        ctrl_flits: int = 1,
    ) -> None:
        self.spec = spec
        self.data_flits = data_flits
        self.ctrl_flits = ctrl_flits
        rng = spawn_rng(seed, "closed-loop", spec.name)
        component = largest_component(topo)
        self.mcs = [mc for mc in memory_controllers if mc in component]
        if not self.mcs:
            raise ValueError("no memory controller is connected")
        self.cores = sorted(component - set(self.mcs))
        if not self.cores:
            raise ValueError("no cores in the connected component")
        #: Requests still to issue per core (decremented at issue time).
        self.remaining = {core: spec.transactions_per_core for core in self.cores}
        self.completed = 0
        self.total = spec.transactions_per_core * len(self.cores)
        self._pending: Dict[int, List] = {}
        self._rng = rng
        # Stagger the initial requests over one think window.
        for core in self.cores:
            self._schedule_request(core, rng.randrange(1, spec.think_time + 2))

    # -- scheduling -------------------------------------------------------

    def _schedule_request(self, core: int, when: int) -> None:
        if self.remaining[core] <= 0:
            return
        self.remaining[core] -= 1
        mc = self.mcs[self._rng.randrange(len(self.mcs))]
        self._pending.setdefault(when, []).append((core, mc, 0, self.ctrl_flits))

    def packets_at(self, now: int):
        return self._pending.pop(now, ())

    def exhausted(self, now: int) -> bool:
        return self.completed >= self.total and not self._pending

    # -- delivery hook -----------------------------------------------------

    def on_packet_ejected(self, packet, now: int) -> None:
        if packet.size == self.ctrl_flits and packet.dst in set(self.mcs):
            # Request reached the MC: reply after the service delay.
            self._pending.setdefault(now + self.spec.mc_delay, []).append(
                (packet.dst, packet.src, 0, self.data_flits)
            )
        elif packet.size == self.data_flits and packet.dst in self.remaining:
            # Reply reached the core: transaction complete; think, reissue.
            self.completed += 1
            self._schedule_request(packet.dst, now + self.spec.think_time)


def parsec_closed_loop(
    name: str,
    topo: Topology,
    memory_controllers: Sequence[int],
    seed: int = 1,
    transactions_per_core: Optional[int] = None,
) -> ClosedLoopWorkload:
    """Closed-loop PARSEC model for the Fig. 13 runtime study."""
    try:
        spec = PARSEC_CLOSED_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown PARSEC workload {name!r}; have {sorted(PARSEC_CLOSED_SPECS)}"
        )
    if transactions_per_core is not None:
        spec = ClosedLoopSpec(
            spec.name, transactions_per_core, spec.think_time, spec.mc_delay
        )
    return ClosedLoopWorkload(spec, topo, memory_controllers, seed=seed)


def rodinia_trace(
    name: str,
    topo: Topology,
    memory_controllers: Sequence[int],
    duration: int = 2000,
    seed: int = 1,
) -> TraceTraffic:
    """Rodinia-like trace for Fig. 12 (heterogeneous intensities)."""
    try:
        spec = RODINIA_SPECS[name]
    except KeyError:
        raise ValueError(f"unknown Rodinia workload {name!r}; have {sorted(RODINIA_SPECS)}")
    return build_workload_trace(spec, topo, memory_controllers, duration, seed)
