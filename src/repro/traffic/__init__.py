"""Traffic: synthetic patterns, traces, and application workload models."""

from repro.traffic.base import CompositeTraffic, PacketSpec, TrafficGenerator
from repro.traffic.synthetic import (
    BitComplementTraffic,
    HotspotTraffic,
    SyntheticTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
    make_pattern,
)
from repro.traffic.trace import TraceEvent, TraceTraffic, load_trace, save_trace
from repro.traffic.workloads import (
    PARSEC_SPECS,
    RODINIA_SPECS,
    WorkloadSpec,
    build_workload_trace,
    parsec_trace,
    rodinia_trace,
)

__all__ = [
    "CompositeTraffic",
    "PacketSpec",
    "TrafficGenerator",
    "BitComplementTraffic",
    "HotspotTraffic",
    "SyntheticTraffic",
    "TransposeTraffic",
    "UniformRandomTraffic",
    "make_pattern",
    "TraceEvent",
    "TraceTraffic",
    "load_trace",
    "save_trace",
    "PARSEC_SPECS",
    "RODINIA_SPECS",
    "WorkloadSpec",
    "build_workload_trace",
    "parsec_trace",
    "rodinia_trace",
]
