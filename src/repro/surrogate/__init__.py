"""``repro.surrogate`` — calibrated analytical fast lane for campaign cells.

The oracle answers a :class:`~repro.service.spec.SimSpec` in microseconds
(warm profile) instead of the seconds a cycle-accurate run costs:

* :mod:`repro.surrogate.model` — per-hop queueing model over the
  installed routing tables (serialization + pipeline + contention from
  path-overlap channel loads);
* :mod:`repro.surrogate.calibrate` — per-(topology family, scheme)
  least-squares corrections against ResultStore ground truth, persisted
  with fingerprinted provenance;
* :mod:`repro.surrogate.uncertainty` — the reported error bound
  (fit residual + distance-to-support) and the ``auto``-mode gate.

:class:`SurrogateOracle` is the facade the service, the CLI, and the
sweep fast lane all share.  Every answer carries an explicit
``error_bound`` and ``provenance`` field; every escalated exact result
feeds back through :meth:`SurrogateOracle.observe`, so the surrogate
self-improves as campaigns run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, proc_registry
from repro.service.spec import SimSpec
from repro.service.store import CODE_SALT, ResultStore
from repro.surrogate.calibrate import (
    CalibrationTable,
    calibrate_from_store,
    cell_key,
    sample_from_payload,
)
from repro.surrogate.model import AnalyticalModel, ModelParams, RawPrediction
from repro.surrogate.uncertainty import Uncertainty, UncertaintyGate

#: Campaign-job execution modes (``SimSpec.mode``).
MODES = ("exact", "surrogate", "auto")

#: Model identity recorded in every prediction's provenance.
MODEL_NAME = "queueing-v1"

#: Calibration table filename inside the result-store root.
CALIBRATION_FILENAME = "surrogate-calibration.json"


@dataclass
class Prediction:
    """One calibrated surrogate answer (with its honesty attached)."""

    latency: float
    throughput: float
    energy_dynamic: Optional[float]
    window_packets: float
    error_bound: Optional[float]
    uncertainty: Uncertainty
    raw: RawPrediction
    provenance: Dict[str, Any]

    def payload(self, spec: SimSpec) -> Dict[str, Any]:
        """Service-shaped result blob (mirrors ``sim_result_payload``).

        ``result`` carries the same keys a :class:`WindowResult` would,
        so clients read surrogate and exact answers identically; the
        ``surrogate`` block is the explicit marker — no ``stats`` key
        means no cycle-accurate run happened.
        """
        return {
            "spec": spec.to_dict(),
            "result": {
                "avg_latency": self.latency,
                "throughput_flits_node_cycle": self.throughput,
                "packets_ejected": int(round(self.window_packets)),
                "deadlocked": False,
                "cycles": spec.warmup + spec.measure,
            },
            "surrogate": {
                "error_bound": self.error_bound,
                "uncertainty": self.uncertainty.to_dict(),
                "metrics": {
                    "latency": self.latency,
                    "throughput": self.throughput,
                    "energy_dynamic": self.energy_dynamic,
                },
                "raw": self.raw.metrics(),
                "saturation_rate": self.raw.saturation_rate,
                "hop_bound": self.raw.hop_bound,
                "provenance": self.provenance,
            },
        }


class SurrogateOracle:
    """Calibrated predictor + uncertainty gate + feedback loop."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        model: Optional[AnalyticalModel] = None,
        gate: Optional[UncertaintyGate] = None,
        path: Optional[Path] = None,
        registry: Optional[MetricsRegistry] = None,
        save_every: int = 1,
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.model = model if model is not None else AnalyticalModel()
        self.gate = gate if gate is not None else UncertaintyGate()
        self.path = Path(path) if path is not None else self.store.root / CALIBRATION_FILENAME
        self.registry = registry if registry is not None else proc_registry()
        #: Persist the table every N observations (1 = write-through).
        #: A fleet of workers feeding calibration through the queue hook
        #: would otherwise rewrite the table on every completion; batch
        #: writers must call :meth:`flush` on drain.
        self.save_every = max(1, save_every)
        self._dirty = 0
        self._table: Optional[CalibrationTable] = None
        self._lock = threading.Lock()

    # -- calibration lifecycle -------------------------------------------

    @property
    def calibration(self) -> CalibrationTable:
        """Lazy: load the persisted table, else harvest the store."""
        with self._lock:
            if self._table is None:
                loaded = CalibrationTable.load(self.path)
                if loaded is None:
                    loaded = calibrate_from_store(self.store, self.model)
                    if loaded.sample_count:
                        loaded.save(self.path)
                self._table = loaded
            return self._table

    def refresh(self) -> CalibrationTable:
        """Re-harvest the store from scratch and persist the new fit."""
        table = calibrate_from_store(self.store, self.model)
        with self._lock:
            self._table = table
            self._dirty = 0
        table.save(self.path)
        self.registry.counter("surrogate.recalibrated").inc()
        return table

    def flush(self) -> bool:
        """Persist pending observations; True if a write happened.

        Cheap no-op when nothing is dirty — safe to call on every drain.
        """
        with self._lock:
            if self._dirty == 0 or self._table is None:
                return False
            self._table.save(self.path)
            self._dirty = 0
        self.registry.counter("surrogate.calibration_flushed").inc()
        return True

    def observe(self, spec_dict: Dict[str, Any], payload: Dict[str, Any]) -> bool:
        """Feed one escalated/executed exact result back into the fit.

        Never raises — feedback is best-effort by design (a result that
        cannot calibrate, e.g. an unsupported pattern, is just skipped).
        """
        try:
            from repro.service.spec import spec_identity
            from repro.service.store import spec_fingerprint

            fp = spec_fingerprint(spec_identity(dict(spec_dict)))
            parsed = sample_from_payload(self.model, payload, fp)
            if parsed is None:
                return False
            key, sample = parsed
            table = self.calibration
            with self._lock:
                family, scheme = key.split("/", 1)
                table.ensure_cell(family, scheme).add(sample)
                self._dirty += 1
                if self._dirty >= self.save_every:
                    table.save(self.path)
                    self._dirty = 0
            self.registry.counter("surrogate.observed").inc()
            return True
        except Exception:
            self.registry.counter("surrogate.observe_error").inc()
            return False

    def status(self) -> Dict[str, Any]:
        """Introspection blob for ``GET /surrogate`` and the CLI."""
        table = self.calibration
        return {
            "model": MODEL_NAME,
            "code_salt": CODE_SALT,
            "calibration_fingerprint": table.fingerprint(),
            "calibration_path": str(self.path),
            "max_bound": self.gate.max_bound,
            "samples": table.sample_count,
            "cells": {
                key: {
                    "samples": len(cell.samples),
                    "residual_bound": cell.residual_bound(),
                }
                for key, cell in sorted(table.cells.items())
            },
        }

    # -- prediction ------------------------------------------------------

    def _calibrated(self, raw: RawPrediction) -> Prediction:
        table = self.calibration
        cell = table.cell(raw.family, raw.scheme)
        uncertainty = self.gate.assess(cell, raw.features)
        latency = raw.latency
        throughput = raw.throughput
        energy: Optional[float] = None
        if cell is not None and cell.fits:
            lat_fit = cell.fits.get("latency")
            thr_fit = cell.fits.get("throughput")
            if lat_fit is not None and lat_fit.samples:
                latency = lat_fit.apply(raw.latency)
            if thr_fit is not None and thr_fit.samples:
                throughput = thr_fit.apply(raw.throughput)
            energy_fit = cell.fits.get("energy")
            if energy_fit is not None and energy_fit.samples:
                energy = energy_fit.apply(raw.energy_dynamic)
        # Physics floors survive calibration: latency can never beat the
        # zero-load hop+serialization bound, throughput is non-negative.
        latency = max(latency, raw.hop_bound)
        throughput = max(throughput, 0.0)
        provenance = {
            "model": MODEL_NAME,
            "code_salt": CODE_SALT,
            "calibration_fingerprint": table.fingerprint(),
            "cell": cell_key(raw.family, raw.scheme),
            "samples": uncertainty.samples,
        }
        self.registry.counter("surrogate.predictions").inc()
        return Prediction(
            latency=latency,
            throughput=throughput,
            energy_dynamic=energy,
            window_packets=raw.window_packets,
            error_bound=uncertainty.bound,
            uncertainty=uncertainty,
            raw=raw,
            provenance=provenance,
        )

    def predict(self, spec: SimSpec) -> Prediction:
        return self._calibrated(self.model.predict_spec(spec))

    def predict_cell(
        self, topo, scheme: str, pattern: str, rate: float, config, warmup: int, measure: int
    ) -> Prediction:
        return self._calibrated(
            self.model.predict_cell(topo, scheme, pattern, rate, config, warmup, measure)
        )

    # -- the fast-lane decision ------------------------------------------

    def answer(self, spec: SimSpec, mode: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """Surrogate payload for ``spec``, or None to escalate.

        ``mode="surrogate"`` always answers (uncalibrated answers carry
        ``error_bound: null`` — honest, if useless); ``mode="auto"``
        answers only when the uncertainty gate passes.  Model failures
        (unsupported pattern/topology) escalate in auto mode and raise
        in forced mode.
        """
        mode = mode if mode is not None else spec.mode
        if mode not in ("surrogate", "auto"):
            return None
        try:
            prediction = self.predict(spec)
        except (ValueError, KeyError):
            self.registry.counter("surrogate.model_error").inc()
            if mode == "surrogate":
                raise
            self.registry.counter("surrogate.escalated").inc()
            return None
        if mode == "surrogate" or self.gate.answers(prediction.uncertainty):
            self.registry.counter("surrogate.answered").inc()
            return prediction.payload(spec)
        self.registry.counter("surrogate.escalated").inc()
        return None


def synthetic_cell_predictor(oracle: SurrogateOracle, mode: str = "auto"):
    """``fan_out`` fast-lane adapter for fig8/fig9-shaped sweep cells.

    The figure sweeps fan out module-level functions whose args tuple is
    ``(topo, scheme, pattern, rate, config, warmup, measure, seed)`` and
    whose return value is ``(avg_latency, packets_ejected)``.  This
    predictor answers such cells from the oracle when the uncertainty
    gate allows it, and returns None (escalate to simulation) otherwise.
    """

    def predict(args: Tuple, lane_mode: Optional[str] = None):
        effective = lane_mode if lane_mode is not None else mode
        if len(args) != 8:
            return None
        topo, scheme, pattern, rate, config, warmup, measure, _seed = args
        try:
            prediction = oracle.predict_cell(
                topo, scheme, pattern, rate, config, warmup, measure
            )
        except (ValueError, KeyError, AttributeError):
            return None
        if effective == "surrogate" or oracle.gate.answers(prediction.uncertainty):
            return (prediction.latency, int(round(prediction.window_packets)))
        return None

    return predict


__all__ = [
    "AnalyticalModel",
    "CalibrationTable",
    "MODES",
    "ModelParams",
    "Prediction",
    "SurrogateOracle",
    "Uncertainty",
    "UncertaintyGate",
    "synthetic_cell_predictor",
]
