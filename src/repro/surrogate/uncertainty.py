"""Uncertainty model: when may the surrogate answer instead of simulating?

Every prediction carries an explicit relative error bound assembled from
two halves:

* the **held-in residual** of the calibration fit for the prediction's
  (topology family, scheme) cell — how wrong the corrected model was on
  the cycle-accurate samples it has seen (floored, so small fits never
  claim certainty they have not earned); and
* the **distance to calibration support** — how far the queried cell's
  feature point (load fraction, mean hops, node count) sits from the
  nearest calibrated sample, in per-dimension-normalized units.  Close
  to support the bound is the residual; extrapolation inflates it
  linearly until the gate escalates to full simulation.

``mode="auto"`` answers from the surrogate iff the bound exists and is
below :data:`UncertaintyGate.max_bound` (``REPRO_SURROGATE_MAX_BOUND``
overrides the default); ``mode="surrogate"`` always answers but still
reports the (possibly absent) bound honestly.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.surrogate.calibrate import CalibrationCell

#: Environment override of the auto-mode answer threshold.
MAX_BOUND_ENV_VAR = "REPRO_SURROGATE_MAX_BOUND"
#: Default relative-error bound below which ``auto`` answers.
DEFAULT_MAX_BOUND = 0.25
#: Relative-error inflation per unit of normalized support distance.
DEFAULT_DISTANCE_WEIGHT = 0.25


@dataclass
class Uncertainty:
    """The bound and its decomposition, attached to every prediction."""

    #: Relative error bound (None = uncalibrated cell, unbounded).
    bound: Optional[float]
    residual: Optional[float]
    distance: float
    samples: int

    def to_dict(self) -> dict:
        return {
            "bound": self.bound,
            "residual": self.residual,
            "distance": self.distance,
            "samples": self.samples,
        }


def _support_scales(support: Sequence[Tuple[float, ...]]) -> Tuple[float, ...]:
    """Per-dimension normalization: spread of the support, sanely floored.

    The floor (a quarter of the dimension's mean magnitude, or an
    absolute epsilon) keeps a single-sample or degenerate support from
    collapsing a dimension and declaring everything "at distance 0".
    """
    dims = len(support[0])
    scales = []
    for d in range(dims):
        values = [f[d] for f in support]
        spread = max(values) - min(values)
        mean_mag = sum(abs(v) for v in values) / len(values)
        scales.append(max(spread, 0.25 * mean_mag, 1e-3))
    return tuple(scales)


def support_distance(
    features: Tuple[float, ...], support: Sequence[Tuple[float, ...]]
) -> float:
    """Normalized L2 distance from ``features`` to the nearest sample."""
    if not support:
        return float("inf")
    scales = _support_scales(list(support))
    best = float("inf")
    for point in support:
        acc = 0.0
        for f, p, s in zip(features, point, scales):
            delta = (f - p) / s
            acc += delta * delta
        best = min(best, math.sqrt(acc))
    return best


def _env_max_bound() -> float:
    env = os.environ.get(MAX_BOUND_ENV_VAR, "").strip()
    if env:
        try:
            value = float(env)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_MAX_BOUND


class UncertaintyGate:
    """Assembles bounds and decides surrogate-vs-simulate."""

    def __init__(
        self,
        max_bound: Optional[float] = None,
        distance_weight: float = DEFAULT_DISTANCE_WEIGHT,
    ) -> None:
        self.max_bound = max_bound if max_bound is not None else _env_max_bound()
        self.distance_weight = distance_weight

    def assess(
        self, cell: Optional[CalibrationCell], features: Tuple[float, ...]
    ) -> Uncertainty:
        if cell is None or not cell.samples:
            return Uncertainty(
                bound=None, residual=None, distance=float("inf"), samples=0
            )
        residual = cell.residual_bound()
        distance = support_distance(features, cell.support())
        if residual is None or math.isinf(distance):
            bound = None
        else:
            bound = residual + self.distance_weight * distance
        return Uncertainty(
            bound=bound,
            residual=residual,
            distance=distance,
            samples=len(cell.samples),
        )

    def answers(self, uncertainty: Uncertainty) -> bool:
        """True when ``auto`` mode may answer from the surrogate."""
        return uncertainty.bound is not None and uncertainty.bound <= self.max_bound
